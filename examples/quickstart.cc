// Quickstart: the paper's Example 1 end to end.
//
// Declares web-service-style sources with access patterns, asks whether a
// query over them is executable / orderable / feasible, compiles the PLAN*
// plans, and runs them against sample data.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/source.h"
#include "feasibility/feasible.h"
#include "schema/adornment.h"

int main() {
  using namespace ucqn;

  // 1. Sources: a book-search service callable by ISBN or by author, a
  //    scannable catalog, and a library lookup.
  Catalog catalog = Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");

  // 2. The query: books sold by B, listed in catalog C, not in library L.
  UnionQuery query = MustParseUnionQuery(
      "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");

  std::printf("schema:\n%s\n\nquery:\n%s\n\n", catalog.ToString().c_str(),
              query.ToString().c_str());

  // 3. Compile-time analysis.
  std::printf("executable as written? %s\n",
              IsExecutable(query, catalog) ? "yes" : "no");
  FeasibleResult feasible = Feasible(query, catalog);
  std::printf("feasible? %s (decided by: %s)\n\n",
              feasible.feasible ? "yes" : "no",
              ToString(feasible.path).c_str());
  std::printf("%s\n\n", feasible.plans.ToString().c_str());

  // Show the adorned executable form of the plan.
  for (const ConjunctiveQuery& rule : feasible.plans.over.disjuncts()) {
    if (auto adornments = ComputeAdornments(rule, catalog)) {
      std::printf("adorned plan: %s\n", AdornedToString(rule, *adornments).c_str());
    }
  }

  // 4. Runtime: execute against sample data through the limited interface.
  Database db = Database::MustParseFacts(R"(
    B(1, "Knuth", "TAOCP").
    B(2, "Date", "Database Systems").
    B(3, "Knuth", "Concrete Mathematics").
    C(1, "Knuth").
    C(2, "Date").
    L(2).
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(query, catalog, &source);
  std::printf("\nanswers:\n%s\n", report.Summary().c_str());
  std::printf("\nsource calls: %llu, tuples transferred: %llu\n",
              static_cast<unsigned long long>(source.stats().calls),
              static_cast<unsigned long long>(source.stats().tuples_returned));
  return 0;
}
