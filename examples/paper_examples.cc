// Reproduces the paper's worked Examples 1-10 and narrates each verdict:
// executability, orderability, feasibility, the PLAN* plans, and — where
// the example discusses runtime behaviour — the ANSWER* report on the
// example's instance.
//
// Build & run:  ./build/examples/paper_examples

#include <cstdio>

#include "eval/answer_star.h"
#include "eval/domain_enum.h"
#include "eval/oracle.h"
#include "feasibility/answerable.h"
#include "feasibility/feasible.h"
#include "gen/scenarios.h"
#include "schema/adornment.h"

int main() {
  using namespace ucqn;

  for (const Scenario& s : AllScenarios()) {
    std::printf("=== %s ===\n%s\n\n", s.name.c_str(), s.description.c_str());
    std::printf("schema:\n%s\n\nquery:\n%s\n\n", s.catalog.ToString().c_str(),
                s.query.ToString().c_str());

    FeasibleResult feasible = Feasible(s.query, s.catalog);
    std::printf("executable: %s | orderable: %s | feasible: %s (%s)\n",
                IsExecutable(s.query, s.catalog) ? "yes" : "no",
                IsOrderable(s.query, s.catalog) ? "yes" : "no",
                feasible.feasible ? "yes" : "no",
                ToString(feasible.path).c_str());
    std::printf("\n%s\n", feasible.plans.ToString().c_str());

    if (s.database.TotalTuples() > 0) {
      DatabaseSource source(&s.database, &s.catalog);
      AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
      std::printf("\nANSWER* on the example instance:\n%s\n",
                  report.Summary().c_str());
      std::set<Tuple> truth = OracleEvaluate(s.query, s.database);
      std::printf("(reference answer has %zu tuple(s))\n", truth.size());

      if (!report.complete) {
        ImprovedUnderestimate improved =
            ImproveUnderestimate(s.query, s.catalog, &source);
        std::printf(
            "domain enumeration: %zu answer(s) total, %zu gained, "
            "%llu enumeration call(s)\n",
            improved.tuples.size(), improved.gained.size(),
            static_cast<unsigned long long>(improved.domain.source_calls));
      }
    }
    std::printf("\n");
  }
  return 0;
}
