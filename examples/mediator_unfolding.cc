// The full global-as-view mediator pipeline (Section 4.2's BIRN setting):
// integrated views over remote sources are defined declaratively; a client
// query over the views is unfolded into a UCQ¬ plan over the sources,
// compiled against the sources' access patterns, and answered with
// ANSWER*'s completeness reporting — including the unsatisfiable-disjunct
// situations that arise naturally from unfolding.
//
// Build & run:  ./build/examples/mediator_unfolding

#include <cstdio>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "feasibility/compile.h"
#include "mediator/unfold.h"

int main() {
  using namespace ucqn;

  // Remote sources (two subject registries, a consent service keyed by
  // subject, an image service keyed by subject).
  Catalog catalog = Catalog::MustParse(R"(
    relation SubjectA/2: oo
    relation SubjectB/2: oo
    relation Withdrawn/1: i
    relation Image/2: io
  )");

  // The mediator's integrated views.
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Subjects(s, d)  :- SubjectA(s, d).
    Subjects(s, d)  :- SubjectB(s, d).
    Excluded(s)     :- Withdrawn(s).
  )");
  std::printf("views:\n%s\n\nsources:\n%s\n\n", views.ToString().c_str(),
              catalog.ToString().c_str());

  // Client query AGAINST THE VIEWS: consentable subjects with an image.
  UnionQuery client = MustParseUnionQuery(
      "Q(s, d, i) :- Subjects(s, d), not Excluded(s), Image(s, i).");
  std::printf("client query:\n%s\n\n", client.ToString().c_str());

  // 1. Unfold into a UCQ¬ plan over the sources.
  UnfoldResult unfolded = Unfold(client, views);
  if (!unfolded.ok) {
    std::printf("unfolding failed: %s\n", unfolded.error.c_str());
    return 1;
  }
  std::printf("unfolded plan (%zu expansion(s)):\n%s\n\n",
              unfolded.expansions, unfolded.query.ToString().c_str());

  // 2. Compile against the access patterns.
  CompileResult compiled = Compile(unfolded.query, catalog);
  std::printf("%s\n", compiled.Report().c_str());

  // 3. Answer at runtime.
  Database db = Database::MustParseFacts(R"(
    SubjectA("s1", "1999").
    SubjectA("s2", "2001").
    SubjectB("s3", "2003").
    Withdrawn("s2").
    Image("s1", "img-101").
    Image("s3", "img-301").
    Image("s3", "img-302").
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(unfolded.query, catalog, &source);
  std::printf("ANSWER*:\n%s\n", report.Summary().c_str());
  std::printf("\nsource calls: %llu, tuples transferred: %llu\n",
              static_cast<unsigned long long>(source.stats().calls),
              static_cast<unsigned long long>(source.stats().tuples_returned));
  return 0;
}
