// Declarative web-service composition (Section 1): a family of service
// operations is modeled as relations with access patterns; a UCQ¬ query is
// the composition spec. The planner finds a call order satisfying every
// operation's input requirements, and the executor reports the per-service
// call counts — the observable cost of the composition.
//
// Build & run:  ./build/examples/web_service_composition

#include <cstdio>

#include "ast/parser.h"
#include "eval/executor.h"
#include "feasibility/feasible.h"
#include "schema/adornment.h"

int main() {
  using namespace ucqn;

  // Operations (WSDL-style, one relation per operation family):
  //   Geo:     city -> region           Geo^io
  //   Hotels:  region -> {hotel}        Hotels^io
  //   Rates:   hotel -> price           Rates^io
  //   Blocked: hotel -> ()              Blocked^i (membership probe)
  //   Cities:  {} -> {city}             Cities^o  (scannable seed list)
  Catalog catalog = Catalog::MustParse(R"(
    relation Cities/1: o
    relation Geo/2: io
    relation Hotels/2: io
    relation Rates/2: io
    relation Blocked/1: i
  )");

  // Composition: for every city, the rates of its unblocked hotels.
  UnionQuery query = MustParseUnionQuery(R"(
    Offer(city, hotel, price) :- Rates(hotel, price), Hotels(region, hotel),
                                 Geo(city, region), Cities(city),
                                 not Blocked(hotel).
  )");
  std::printf("composition spec (written 'backwards' on purpose):\n%s\n\n",
              query.ToString().c_str());

  FeasibleResult feasible = Feasible(query, catalog);
  std::printf("executable as written: no — every operation needs inputs.\n");
  std::printf("feasible: %s (decided by %s)\n\n",
              feasible.feasible ? "yes" : "no",
              ToString(feasible.path).c_str());

  for (const ConjunctiveQuery& rule : feasible.plans.over.disjuncts()) {
    if (auto adornments = ComputeAdornments(rule, catalog)) {
      std::printf("call plan: %s\n\n",
                  AdornedToString(rule, *adornments).c_str());
    }
  }

  Database db = Database::MustParseFacts(R"(
    Cities("SanDiego").
    Cities("Delphi").
    Geo("SanDiego", "US-West").
    Geo("Delphi", "Greece").
    Hotels("US-West", "HotelDelCoronado").
    Hotels("US-West", "Motel6").
    Hotels("Greece", "OracleInn").
    Rates("HotelDelCoronado", "450").
    Rates("Motel6", "80").
    Rates("OracleInn", "120").
    Blocked("Motel6").
  )");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(feasible.plans.over, catalog, &source);
  if (!result.ok) {
    std::printf("execution failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("offers:\n%s\n\n", TupleSetToString(result.tuples).c_str());

  std::printf("service call accounting:\n");
  for (const auto& [relation, stats] : source.per_relation_stats()) {
    std::printf("  %-8s calls=%llu tuples=%llu\n", relation.c_str(),
                static_cast<unsigned long long>(stats.calls),
                static_cast<unsigned long long>(stats.tuples_returned));
  }
  return 0;
}
