// A small mediator session over limited sources: an infeasible query is
// answered anyway, with runtime completeness reporting (ANSWER*) and
// optional domain enumeration — the Section 4.2 workflow, including the
// foreign-key situation of Example 6 where an infeasible query still gets
// a certified-complete answer.
//
// Build & run:  ./build/examples/bookstore_mediator

#include <cstdio>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/domain_enum.h"
#include "eval/explain.h"
#include "feasibility/feasible.h"

namespace {

void RunSession(const char* title, const ucqn::Catalog& catalog,
                const ucqn::UnionQuery& query, const ucqn::Database& db) {
  using namespace ucqn;
  std::printf("--- %s ---\n", title);
  FeasibleResult feasible = Feasible(query, catalog);
  std::printf("feasible: %s (%s)\n", feasible.feasible ? "yes" : "no",
              ToString(feasible.path).c_str());

  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(query, catalog, &source);
  std::printf("%s\n", report.Summary().c_str());

  if (!report.complete) {
    // Explain what each "maybe" tuple means (Example 7's reading).
    for (const DeltaExplanation& e :
         ExplainDelta(query, catalog, &source, report)) {
      std::printf("  maybe %s\n", e.ToString().c_str());
    }
    // The user decides the possibly costly domain enumeration is worth it.
    std::printf("... engaging domain enumeration views ...\n");
    ImprovedUnderestimate improved =
        ImproveUnderestimate(query, catalog, &source);
    std::printf("improved underestimate (%zu tuples, %zu gained):\n%s\n",
                improved.tuples.size(), improved.gained.size(),
                TupleSetToString(improved.tuples).c_str());
    std::printf("domain size %zu, %llu + %llu extra source calls\n",
                improved.domain.domain.size(),
                static_cast<unsigned long long>(improved.domain.source_calls),
                static_cast<unsigned long long>(improved.evaluation_calls));
  }
  std::printf("total source calls this session: %llu\n\n",
              static_cast<unsigned long long>(source.stats().calls));
}

}  // namespace

int main() {
  using namespace ucqn;

  // The running example of Section 4: S^o, R^oo, B^ii, T^oo. Q1's B(x,y)
  // is unanswerable, so the query is infeasible.
  Catalog catalog = Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
  UnionQuery query = MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
  std::printf("query:\n%s\n\n", query.ToString().c_str());

  // Session 1 (Example 5): the answerable part yields nothing, so the
  // answer is COMPLETE although the query is infeasible.
  RunSession("session 1: unanswerable part irrelevant (Example 5)", catalog,
             query, Database::MustParseFacts(R"(
               R("a", "b").
               S("b").
               T("t1", "t2").
               B("a", "y1").
             )"));

  // Session 2 (Example 6): a foreign key R.z ⊆ S.z guarantees emptiness of
  // the dangerous disjunct on every legal instance.
  RunSession("session 2: foreign key forces completeness (Example 6)",
             catalog, query, Database::MustParseFacts(R"(
               R("r1", "k1").
               R("r2", "k2").
               S("k1").
               S("k2").
               T("t1", "t2").
               B("r1", "w").
             )"));

  // Session 3 (Examples 7/8): R(a,b) with no S(b) — the overestimate shows
  // (a, null); domain enumeration then recovers the concrete answer.
  RunSession("session 3: nulls, then domain enumeration (Examples 7-8)",
             catalog, query, Database::MustParseFacts(R"(
               R("a", "b").
               T("t1", "t2").
               B("a", "t2").
             )"));
  return 0;
}
