// View design & debugging (Section 4.1): at view-definition time, a
// mediator designer batch-checks a library of integrated views against the
// sources' access patterns. For each view the tool reports the verdict,
// the decision path (quadratic shortcut vs. the Π₂ᴾ containment test),
// and — for infeasible views — which literals are unanswerable, so the
// designer knows exactly what to fix.
//
// Build & run:  ./build/examples/view_debugging

#include <cstdio>

#include "ast/parser.h"
#include "feasibility/compile.h"
#include "feasibility/feasible.h"
#include "feasibility/view_patterns.h"

int main() {
  using namespace ucqn;

  // A data-integration schema in the BIRN mold: subject registries,
  // experiment metadata, and per-subject image services.
  Catalog catalog = Catalog::MustParse(R"(
    relation SubjectA/2: oo
    relation SubjectB/2: oo
    relation Consent/1: i
    relation Experiment/3: ioo ooo
    relation Image/2: io
    relation Annotation/2: ii
  )");
  std::printf("sources:\n%s\n\n", catalog.ToString().c_str());

  std::vector<UnionQuery> views = MustParseProgram(R"(
    # All consented subjects from either registry.
    Consented(s, d)    :- SubjectA(s, d), Consent(s).
    Consented(s, d)    :- SubjectB(s, d), Consent(s).

    # Experiments with their subject's images. Image^io needs the subject
    # first, which Experiment provides: orderable.
    ExpImages(e, s, i) :- Image(s, i), Experiment(e, s, d).

    # Annotated images: Annotation^ii can never produce the annotation
    # value a -> infeasible, a is lost.
    Annotated(i, a)    :- Image(s, i), SubjectA(s, d), Annotation(i, a).

    # Unconsented subjects: negated Consent works (s is bound first).
    Unconsented(s)     :- SubjectA(s, d), not Consent(s).

    # A redundant-union view: the infeasible disjunct is absorbed by the
    # broader one, so the union is feasible even though its first rule is
    # not.
    AnySubject(s)      :- SubjectA(s, d), Annotation(i, a).
    AnySubject(s)      :- SubjectA(s, d).
  )");

  int feasible_count = 0;
  for (const UnionQuery& view : views) {
    CompileResult result = Compile(view, catalog);
    std::printf("view %-12s : %-12s (decided by %s)\n",
                view.head_name().c_str(),
                result.feasible ? "FEASIBLE" : "INFEASIBLE",
                ToString(result.path).c_str());
    if (result.feasible) ++feasible_count;
    // Per-literal diagnosis: what is blocked and which source capability
    // would fix it.
    for (const UnanswerableDiagnosis& diag : result.diagnostics) {
      std::printf("    %s\n", diag.ToString().c_str());
    }
    if (!result.feasible) {
      std::printf("    best executable overestimate:\n");
      for (const CompiledRule& rule : result.over) {
        std::printf("      %s\n", rule.ToString().c_str());
      }
    }
    // Which access patterns can this view itself advertise upstream?
    std::vector<AccessPattern> advertised =
        MinimalSupportedHeadPatterns(view, catalog);
    if (advertised.empty()) {
      std::printf("    derived patterns: none — unusable even with every "
                  "head column supplied\n");
    } else {
      std::printf("    derived patterns:");
      for (const AccessPattern& p : advertised) {
        std::printf(" %s^%s", view.head_name().c_str(), p.word().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n%d/%zu views feasible\n", feasible_count, views.size());
  return 0;
}
