// ucqnc — the UCQ¬ limited-access-pattern query compiler, as a command
// line tool. Reads a schema (relations + access patterns), a query
// (Datalog rules, one head), optionally integrity constraints and facts,
// and reports:
//
//   * executability / orderability / feasibility with the decision path,
//   * the adorned PLAN* under-/over-estimate plans,
//   * per-literal diagnostics for unanswerable parts,
//   * with --facts: the ANSWER* runtime report, and (on request) the
//     domain-enumeration-improved underestimate.
//
// Run `ucqnc --help` for the flag reference.
//
// The runtime flags configure the source-access stack (src/runtime/) that
// ANSWER* runs against: --cache deduplicates repeated source calls (LRU,
// unbounded unless --cache-capacity is given), --shared-cache upgrades the
// cache to a process-wide SharedCacheStore that persists across the
// queries of a --queries session (with --cache-ttl-ms expiry and a
// --cache-budget resident-byte bound), --retry N retries transient
// failures up to N attempts with backoff, --max-calls N caps the total
// calls per run, --parallelism N overlaps each literal's batched wave of
// source calls on N worker threads, --no-batch reverts the executor to
// the per-binding reference loop (--batch restores the default),
// --no-dictionary runs the string-path oracle instead of the
// dictionary-encoded columnar executor, and --metrics prints the
// per-relation call/tuple/latency table (text) or its JSON export.
//
// --queries FILE runs a multi-query session: the file holds one query per
// block, blocks separated by lines containing only `---`, executed in
// order against one shared runtime. With --shared-cache the later queries
// run warm — the paper's premise is that the physical calls are the cost,
// and overlapping queries re-derive the same accesses (see
// docs/RUNTIME.md and EXPERIMENTS.md E16). Metering is forced on in this
// mode so each query's observed stats feed the adaptive cost model of the
// queries after it.
//
// A --queries block starting with `!` is a directive instead of a query:
// `!invalidate R` drops relation R from the shared cache and the session
// stats catalog; `!delta` followed by signed fact lines (`+R(1, 2).` /
// `-R(1, 2).`) updates the session database in place, scoping cache
// invalidation to the changed tuples. With --standing, each query block
// additionally registers a standing query whose maintained answers are
// re-emitted after every `!delta` block without re-running the query
// (src/eval/delta.h). A malformed directive block is diagnosed and
// skipped like a malformed query block: nonzero exit, later blocks run.
//
// The cost-model flags configure the plan-quality layer (src/cost/):
// --cost-model adaptive scores every (literal, access pattern) candidate
// as expected_calls x observed p50 latency + expected tuples x tuple
// cost, seeded from the --stats-in JSON snapshot (a previous run's
// --stats-out); the default static model reproduces the classic
// input-slot-count preference. With --shared-cache the adaptive model
// also scales each relation's expected physical calls by its observed
// cache miss rate. --explain prints, per plan literal, the chosen
// pattern, the rejected candidates, and the cost the model gave each.
// --stats-out FILE writes the observed per-(relation, pattern) metrics of
// this run as a stats snapshot for the next one (forces metering).
//
// With --views, the query may reference global-as-view definitions; it is
// unfolded into a plan over the sources before analysis (Section 4.2's
// mediator pipeline). File formats are the library's textual formats (see
// README.md).

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ast/parser.h"
#include "constraints/inclusion.h"
#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "eval/answer_star.h"
#include "eval/delta.h"
#include "eval/domain_enum.h"
#include "eval/explain.h"
#include "eval/op/lowering.h"
#include "feasibility/answerable.h"
#include "feasibility/compile.h"
#include "feasibility/plan_star.h"
#include "mediator/unfold.h"
#include "runtime/shared_cache.h"
#include "runtime/source_stack.h"
#include "schema/adornment.h"

namespace {

std::optional<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr char kUsage[] =
    "usage: ucqnc --schema FILE --query FILE [options]\n"
    "       ucqnc --schema FILE --queries FILE --facts FILE [options]\n"
    "\n"
    "input:\n"
    "  --schema FILE        relations + access patterns (required)\n"
    "  --query FILE         one UCQ-with-negation query\n"
    "  --queries FILE       multi-query session: query blocks separated by\n"
    "                       lines containing only ---, run in order against\n"
    "                       one shared runtime (requires --facts); blocks\n"
    "                       starting with ! are directives (!invalidate R,\n"
    "                       !delta with signed +R(...)./-R(...). fact lines)\n"
    "  --standing           with --queries: register each query as a\n"
    "                       standing query and re-emit its maintained\n"
    "                       answers after every !delta block\n"
    "  --views FILE         global-as-view definitions to unfold against\n"
    "  --constraints FILE   inclusion dependencies\n"
    "  --facts FILE         database instance; runs ANSWER*\n"
    "  --improve            also compute the domain-enumeration-improved\n"
    "                       underestimate when the answer is incomplete\n"
    "\n"
    "runtime stack (src/runtime/, see docs/RUNTIME.md):\n"
    "  --cache              per-run source-call cache (LRU, input-slot keys)\n"
    "  --cache-capacity N   bound the per-run cache to N call results\n"
    "  --shared-cache       process-wide cache store shared across the\n"
    "                       queries of a --queries session, single-flighting\n"
    "                       concurrent misses\n"
    "  --cache-ttl-ms N     expire shared-cache entries N ms after insert\n"
    "                       (implies --shared-cache)\n"
    "  --cache-negative-ttl-ms N\n"
    "                       expire *empty* shared-cache results after N ms\n"
    "                       instead of the relation/default TTL (implies\n"
    "                       --shared-cache)\n"
    "  --cache-budget N     bound the shared cache to N resident bytes\n"
    "                       (exact entry+tuple footprint), LRU eviction\n"
    "                       (implies --shared-cache)\n"
    "  --retry N            retry transient source failures up to N attempts\n"
    "  --max-calls N        per-run physical source-call budget\n"
    "  --parallelism N      overlap each batched wave on N worker threads\n"
    "  --pipeline-depth N   keep up to N different literals' waves in\n"
    "                       flight at once (1 = classic one-wave-at-a-time)\n"
    "  --batch | --no-batch batched waves (default) or the per-binding\n"
    "                       reference loop\n"
    "  --no-dictionary      run the string-path executor instead of the\n"
    "                       dictionary-encoded columnar default (answers\n"
    "                       and witness order are identical either way)\n"
    "  --legacy-executor    run the pre-DAG encoded loop instead of the\n"
    "                       operator-DAG executor (kept as the\n"
    "                       byte-compatibility oracle)\n"
    "  --disjunct-concurrency N\n"
    "                       overlap up to N disjunct chains' waves per\n"
    "                       round (operator DAG; 1 = sequential disjuncts,\n"
    "                       identical answers at every setting)\n"
    "  --morsel-rows N      split frontiers into morsels of at most N rows\n"
    "                       before pushing them through the operator DAG\n"
    "  --metrics text|json  print the per-relation metrics table after runs\n"
    "\n"
    "cost model (src/cost/):\n"
    "  --cost-model static|adaptive\n"
    "                       model behind pattern choice + literal ordering\n"
    "  --stats-in FILE      stats snapshot feeding the adaptive model\n"
    "  --stats-out FILE     write this run's observed stats snapshot\n"
    "  --no-fanout-feedback with the adaptive model, price unknown relations\n"
    "                       at the fallback cardinality instead of observed\n"
    "                       result fanouts (see docs/WORKLOADS.md)\n"
    "  --explain            print per-literal pattern decisions with costs\n"
    "\n"
    "  --help               print this text and exit\n";

int Usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

// Splits a --queries file into its query blocks: separator lines contain
// only `---` (surrounding whitespace allowed); blank blocks are dropped.
std::vector<std::string> SplitQueryBlocks(const std::string& text) {
  std::vector<std::string> blocks;
  std::string current;
  auto flush = [&] {
    if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
      blocks.push_back(current);
    }
    current.clear();
  };
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string trimmed = line;
    const std::size_t first = trimmed.find_first_not_of(" \t\r");
    const std::size_t last = trimmed.find_last_not_of(" \t\r");
    trimmed = first == std::string::npos
                  ? ""
                  : trimmed.substr(first, last - first + 1);
    if (trimmed == "---") {
      flush();
    } else {
      current += line + "\n";
    }
  }
  flush();
  return blocks;
}

// The per-relation ledgers live in the (outer) source stack, but the
// executor-side scheduling counters (pipelining rounds, operator-DAG
// disjunct/morsel/anti-join work) live in the execution report — the
// stack cannot see executor scheduling. Merge both for the printed
// runtime line.
ucqn::RuntimeStats WithExecutorCounters(ucqn::RuntimeStats stats,
                                        const ucqn::RuntimeStats& report) {
  stats.pipeline_rounds = report.pipeline_rounds;
  stats.pipeline_overlaps = report.pipeline_overlaps;
  stats.disjuncts_executed = report.disjuncts_executed;
  stats.morsels = report.morsels;
  stats.antijoin_build_tuples = report.antijoin_build_tuples;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucqn;
  const char* schema_path = nullptr;
  const char* query_path = nullptr;
  const char* queries_path = nullptr;
  const char* views_path = nullptr;
  const char* constraints_path = nullptr;
  const char* facts_path = nullptr;
  bool improve = false;
  bool standing_mode = false;
  RuntimeOptions runtime;
  ExecutionOptions exec;
  bool shared_cache = false;
  std::size_t cache_ttl_ms = 0;
  std::size_t cache_negative_ttl_ms = 0;
  std::size_t cache_budget = 0;
  const char* metrics_format = nullptr;
  const char* cost_model_name = "static";
  bool cost_model_explicit = false;
  const char* stats_in_path = nullptr;
  const char* stats_out_path = nullptr;
  bool fanout_feedback = true;
  bool explain_plans = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char*& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    // Strict numeric flag values: the whole token must be a positive
    // decimal integer in range. Garbage ("banana"), trailing junk
    // ("10x"), zero/negative values, overflow, and a missing value each
    // get a one-line diagnostic naming the flag, then the usage text.
    auto next_count = [&](std::size_t& slot) {
      const char* flag = argv[i];
      const char* text = nullptr;
      if (!next(text)) {
        std::fprintf(stderr, "%s expects a positive integer value\n", flag);
        return false;
      }
      char* end = nullptr;
      errno = 0;
      const long long value = std::strtoll(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || value <= 0 ||
          value == LLONG_MAX) {
        std::fprintf(stderr, "%s expects a positive integer, got \"%s\"\n",
                     flag, text);
        return false;
      }
      slot = static_cast<std::size_t>(value);
      return true;
    };
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strcmp(argv[i], "--schema") == 0) {
      if (!next(schema_path)) return Usage();
    } else if (std::strcmp(argv[i], "--query") == 0) {
      if (!next(query_path)) return Usage();
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      if (!next(queries_path)) return Usage();
    } else if (std::strcmp(argv[i], "--views") == 0) {
      if (!next(views_path)) return Usage();
    } else if (std::strcmp(argv[i], "--constraints") == 0) {
      if (!next(constraints_path)) return Usage();
    } else if (std::strcmp(argv[i], "--facts") == 0) {
      if (!next(facts_path)) return Usage();
    } else if (std::strcmp(argv[i], "--improve") == 0) {
      improve = true;
    } else if (std::strcmp(argv[i], "--standing") == 0) {
      standing_mode = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      runtime.cache = true;
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      std::size_t capacity = 0;
      if (!next_count(capacity)) return Usage();
      runtime.cache = true;
      runtime.cache_capacity = capacity;
    } else if (std::strcmp(argv[i], "--shared-cache") == 0) {
      shared_cache = true;
    } else if (std::strcmp(argv[i], "--cache-ttl-ms") == 0) {
      if (!next_count(cache_ttl_ms)) return Usage();
      shared_cache = true;
    } else if (std::strcmp(argv[i], "--cache-negative-ttl-ms") == 0) {
      if (!next_count(cache_negative_ttl_ms)) return Usage();
      shared_cache = true;
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      if (!next_count(cache_budget)) return Usage();
      shared_cache = true;
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      std::size_t attempts = 0;
      if (!next_count(attempts)) return Usage();
      runtime.retry = true;
      runtime.retry_policy.max_attempts = static_cast<int>(attempts);
    } else if (std::strcmp(argv[i], "--max-calls") == 0) {
      std::size_t max_calls = 0;
      if (!next_count(max_calls)) return Usage();
      runtime.budget.max_calls = max_calls;
    } else if (std::strcmp(argv[i], "--parallelism") == 0) {
      if (!next_count(runtime.parallelism)) return Usage();
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0) {
      if (!next_count(exec.runtime.pipeline_depth)) return Usage();
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      exec.batch = true;
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      exec.batch = false;
    } else if (std::strcmp(argv[i], "--no-dictionary") == 0) {
      exec.dictionary = false;
    } else if (std::strcmp(argv[i], "--legacy-executor") == 0) {
      exec.dag = false;
    } else if (std::strcmp(argv[i], "--disjunct-concurrency") == 0) {
      if (!next_count(exec.disjunct_concurrency)) return Usage();
    } else if (std::strcmp(argv[i], "--morsel-rows") == 0) {
      if (!next_count(exec.morsel_rows)) return Usage();
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (!next(metrics_format)) return Usage();
      if (std::strcmp(metrics_format, "text") != 0 &&
          std::strcmp(metrics_format, "json") != 0) {
        return Usage();
      }
      runtime.metering = true;
    } else if (std::strcmp(argv[i], "--cost-model") == 0) {
      if (!next(cost_model_name)) return Usage();
      if (std::strcmp(cost_model_name, "static") != 0 &&
          std::strcmp(cost_model_name, "adaptive") != 0) {
        return Usage();
      }
      cost_model_explicit = true;
    } else if (std::strcmp(argv[i], "--stats-in") == 0) {
      if (!next(stats_in_path)) return Usage();
    } else if (std::strcmp(argv[i], "--stats-out") == 0) {
      if (!next(stats_out_path)) return Usage();
      runtime.metering = true;  // the snapshot is read off the meter
    } else if (std::strcmp(argv[i], "--no-fanout-feedback") == 0) {
      fanout_feedback = false;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain_plans = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage();
    }
  }
  if (schema_path == nullptr ||
      (query_path == nullptr && queries_path == nullptr)) {
    return Usage();
  }
  if (queries_path != nullptr) {
    if (query_path != nullptr) {
      std::fprintf(stderr, "--query and --queries are mutually exclusive\n");
      return Usage();
    }
    if (facts_path == nullptr) {
      std::fprintf(stderr, "--queries requires --facts\n");
      return Usage();
    }
    if (views_path != nullptr) {
      std::fprintf(stderr, "--views is not supported with --queries\n");
      return Usage();
    }
    // Each query's observed stats feed the adaptive model (and the
    // session summary) of the queries after it.
    runtime.metering = true;
  }
  if (standing_mode && queries_path == nullptr) {
    std::fprintf(stderr, "--standing requires --queries\n");
    return Usage();
  }

  // The process-wide cache store. Constructed unconditionally (it is
  // cheap when unused) so its lifetime spans every execution below; wired
  // into the runtime stack and the adaptive model only when requested.
  SharedCacheStore::Options store_options;
  store_options.default_ttl_micros =
      static_cast<std::uint64_t>(cache_ttl_ms) * 1000;
  store_options.negative_ttl_micros =
      static_cast<std::uint64_t>(cache_negative_ttl_ms) * 1000;
  store_options.budget_bytes = cache_budget;
  SharedCacheStore shared_store(store_options);
  if (shared_cache) runtime.shared_cache = &shared_store;

  std::string error;

  std::optional<std::string> schema_text = ReadFile(schema_path);
  if (!schema_text) {
    std::fprintf(stderr, "cannot read %s\n", schema_path);
    return 1;
  }
  std::optional<Catalog> catalog = Catalog::Parse(*schema_text, &error);
  if (!catalog) {
    std::fprintf(stderr, "schema error: %s\n", error.c_str());
    return 1;
  }

  std::optional<UnionQuery> query;
  if (query_path != nullptr) {
    std::optional<std::string> query_text = ReadFile(query_path);
    if (!query_text) {
      std::fprintf(stderr, "cannot read %s\n", query_path);
      return 1;
    }
    query = ParseUnionQuery(*query_text, &error);
    if (!query) {
      std::fprintf(stderr, "query error: %s\n", error.c_str());
      return 1;
    }
    if (views_path != nullptr) {
      std::optional<std::string> text = ReadFile(views_path);
      if (!text) {
        std::fprintf(stderr, "cannot read %s\n", views_path);
        return 1;
      }
      std::optional<ViewRegistry> views = ViewRegistry::Parse(*text, &error);
      if (!views) {
        std::fprintf(stderr, "views error: %s\n", error.c_str());
        return 1;
      }
      UnfoldResult unfolded = Unfold(*query, *views);
      if (!unfolded.ok) {
        std::fprintf(stderr, "unfolding error: %s\n", unfolded.error.c_str());
        return 1;
      }
      std::printf("unfolded against %zu view(s), %zu expansion(s):\n%s\n\n",
                  views->size(), unfolded.expansions,
                  unfolded.query.ToString().c_str());
      *query = std::move(unfolded.query);
    }
    if (!catalog->CoversQuery(*query, &error)) {
      std::fprintf(stderr, "schema/query mismatch: %s\n", error.c_str());
      return 1;
    }
  }

  ConstraintSet constraints;
  if (constraints_path != nullptr) {
    std::optional<std::string> text = ReadFile(constraints_path);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", constraints_path);
      return 1;
    }
    std::optional<ConstraintSet> parsed = ConstraintSet::Parse(*text, &error);
    if (!parsed) {
      std::fprintf(stderr, "constraints error: %s\n", error.c_str());
      return 1;
    }
    constraints = std::move(*parsed);
  }

  CompileOptions options;
  if (!constraints.empty()) options.constraints = &constraints;

  // Plan-quality layer (src/cost/): the model every pattern and ordering
  // decision flows through. The static model is also used for --explain
  // when no model was requested; exec.cost_model is only set when
  // --cost-model was passed, so default runs keep the classic plans.
  StatsCatalog stats;
  if (stats_in_path != nullptr) {
    std::optional<std::string> text = ReadFile(stats_in_path);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", stats_in_path);
      return 1;
    }
    std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(*text, &error);
    if (!parsed) {
      std::fprintf(stderr, "stats error in %s: %s\n", stats_in_path,
                   error.c_str());
      return 1;
    }
    stats = std::move(*parsed);
    std::printf("loaded stats for %zu relation(s) from %s\n", stats.size(),
                stats_in_path);
  }
  StaticCostModel static_model(exec.pattern_preference);
  AdaptiveCostOptions adaptive_options;
  if (shared_cache) adaptive_options.shared_cache = &shared_store;
  adaptive_options.use_observed_fanouts = fanout_feedback;
  // With feedback on (the default), a --stats-in snapshot's observed scan
  // fanouts fill the estimate gaps the catalog's @N annotations leave, so
  // relations the fallback would price at 1000 tuples are priced at their
  // measured size (docs/WORKLOADS.md, "Fanout feedback").
  CardinalityEstimates estimates = CardinalityEstimates::FromCatalog(*catalog);
  if (fanout_feedback) estimates.ApplyObservedFanouts(stats);
  AdaptiveCostModel adaptive_model(&stats, std::move(estimates),
                                   adaptive_options);
  const bool adaptive = std::strcmp(cost_model_name, "adaptive") == 0;
  const CostModel* model =
      adaptive ? static_cast<const CostModel*>(&adaptive_model)
               : static_cast<const CostModel*>(&static_model);
  if (cost_model_explicit) exec.cost_model = model;

  const auto write_stats_out = [&](const StatsCatalog& snapshot) {
    if (stats_out_path == nullptr) return;
    std::ofstream out(stats_out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", stats_out_path);
      return;
    }
    out << snapshot.ToJson() << "\n";
    std::printf("wrote stats snapshot (%zu relation(s)) to %s\n",
                snapshot.size(), stats_out_path);
  };

  // -------------------------------------------------------------------
  // Multi-query session: every block runs against the same backend and —
  // with --shared-cache — the same cache store, so later queries reuse
  // earlier queries' physical calls. Each query gets a fresh SourceStack
  // view (per-query metrics, budgets, and hit/miss ledger).
  if (queries_path != nullptr) {
    std::optional<std::string> text = ReadFile(queries_path);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", queries_path);
      return 1;
    }
    std::vector<std::string> blocks = SplitQueryBlocks(*text);
    if (blocks.empty()) {
      std::fprintf(stderr, "no queries in %s\n", queries_path);
      return 1;
    }
    std::optional<std::string> facts_text = ReadFile(facts_path);
    if (!facts_text) {
      std::fprintf(stderr, "cannot read %s\n", facts_path);
      return 1;
    }
    std::optional<Database> db = Database::ParseFacts(*facts_text, &error);
    if (!db) {
      std::fprintf(stderr, "facts error: %s\n", error.c_str());
      return 1;
    }
    if (!constraints.empty() && !constraints.HoldsIn(*db)) {
      std::fprintf(stderr,
                   "warning: facts violate the declared constraints\n");
    }
    DatabaseSource backend(&*db, &*catalog);
    std::printf("session: %zu queries from %s\n", blocks.size(), queries_path);
    int status = 0;
    std::uint64_t calls_before = 0;
    // --standing: the session's registered standing queries, maintained
    // in place by !delta blocks instead of being re-run.
    struct SessionStanding {
      std::size_t query_number = 0;
      std::unique_ptr<StandingQuery> query;
    };
    std::vector<SessionStanding> standing;
    const auto emit_standing = [&]() {
      for (const SessionStanding& entry : standing) {
        const StandingAnswers answers = entry.query->Answers();
        std::printf("  standing %zu: %zu under, %zu over, %s\n",
                    entry.query_number, answers.under.size(),
                    answers.over.size(),
                    answers.complete ? "complete" : "incomplete");
      }
    };
    for (std::size_t qi = 0; qi < blocks.size(); ++qi) {
      // A malformed block poisons only itself: diagnose it by number,
      // mark the session failed, and keep serving the blocks after it —
      // one typo must not cost the rest of the session its warm cache.
      const std::size_t first_char =
          blocks[qi].find_first_not_of(" \t\r\n");
      if (first_char != std::string::npos && blocks[qi][first_char] == '!') {
        // Directive block. Same recovery contract as a malformed query:
        // diagnose by number, mark the session failed, keep going.
        std::istringstream directive(blocks[qi].substr(first_char));
        std::string head;
        std::getline(directive, head);
        while (!head.empty() &&
               (head.back() == '\r' || head.back() == ' ' ||
                head.back() == '\t')) {
          head.pop_back();
        }
        if (head.rfind("!invalidate", 0) == 0) {
          std::string relation = head.substr(std::strlen("!invalidate"));
          const std::size_t start = relation.find_first_not_of(" \t");
          relation = start == std::string::npos ? "" : relation.substr(start);
          if (relation.empty() || !catalog->Contains(relation)) {
            std::fprintf(stderr,
                         "query %zu error: !invalidate needs a declared "
                         "relation, got \"%s\"\n",
                         qi + 1, relation.c_str());
            std::printf("\nquery %zu: skipped (bad directive)\n", qi + 1);
            status = 1;
            continue;
          }
          // Both staleness ledgers go together: the cached call results
          // AND the observed stats the planner prices from.
          std::size_t dropped = 0;
          if (shared_cache) {
            const std::size_t before = shared_store.size();
            shared_store.InvalidateRelation(relation);
            dropped = before - shared_store.size();
          }
          const std::size_t stats_dropped = stats.InvalidateRelation(relation);
          std::printf(
              "\nquery %zu: invalidated \"%s\" (%zu cache entries, "
              "%zu stats rows)\n",
              qi + 1, relation.c_str(), dropped, stats_dropped);
          continue;
        }
        if (head == "!delta") {
          // Signed fact lines, grouped per relation into one batch.
          std::vector<RelationDelta> batch;
          std::string delta_line;
          bool bad = false;
          while (std::getline(directive, delta_line)) {
            const std::size_t begin =
                delta_line.find_first_not_of(" \t\r");
            if (begin == std::string::npos) continue;
            const std::size_t end = delta_line.find_last_not_of(" \t\r");
            delta_line = delta_line.substr(begin, end - begin + 1);
            const char sign = delta_line.front();
            std::string fact_error;
            std::optional<Database> fact =
                sign == '+' || sign == '-'
                    ? Database::ParseFacts(delta_line.substr(1), &fact_error)
                    : std::nullopt;
            if (!fact || fact->TotalTuples() != 1) {
              std::fprintf(stderr,
                           "query %zu error: bad !delta line \"%s\"%s%s\n",
                           qi + 1, delta_line.c_str(),
                           fact_error.empty() ? "" : ": ",
                           fact_error.c_str());
              bad = true;
              break;
            }
            const std::string relation = fact->RelationNames().front();
            if (!catalog->Contains(relation)) {
              std::fprintf(stderr,
                           "query %zu error: !delta touches undeclared "
                           "relation \"%s\"\n",
                           qi + 1, relation.c_str());
              bad = true;
              break;
            }
            RelationDelta* group = nullptr;
            for (RelationDelta& candidate : batch) {
              if (candidate.relation == relation) {
                group = &candidate;
                break;
              }
            }
            if (group == nullptr) {
              batch.push_back(RelationDelta{relation, {}, {}});
              group = &batch.back();
            }
            (sign == '+' ? group->inserts : group->deletes)
                .push_back(*fact->Find(relation)->begin());
          }
          if (bad || batch.empty()) {
            if (batch.empty() && !bad) {
              std::fprintf(stderr, "query %zu error: empty !delta block\n",
                           qi + 1);
            }
            std::printf("\nquery %zu: skipped (bad directive)\n", qi + 1);
            status = 1;
            continue;
          }
          // Update the database first — every relation of the batch —
          // then invalidate and maintain against the post-update state.
          std::vector<AppliedDelta> applied;
          bool apply_failed = false;
          for (const RelationDelta& group : batch) {
            std::optional<AppliedDelta> one = ApplyDelta(&*db, group, &error);
            if (!one) {
              std::fprintf(stderr, "query %zu error: %s\n", qi + 1,
                           error.c_str());
              apply_failed = true;
              break;
            }
            if (!one->empty()) applied.push_back(std::move(*one));
          }
          std::size_t cache_dropped = 0;
          if (shared_cache) {
            for (const AppliedDelta& one : applied) {
              cache_dropped +=
                  shared_store.InvalidateDelta(one.relation,
                                               one.ChangedTuples());
            }
          }
          if (!applied.empty() && !standing.empty()) {
            for (SessionStanding& entry : standing) {
              bool affected = false;
              for (const AppliedDelta& one : applied) {
                if (entry.query->relations().count(one.relation) > 0) {
                  affected = true;
                  break;
                }
              }
              if (!affected) continue;
              SourceStack maintain_stack(&backend, runtime);
              std::string maintain_error;
              if (!entry.query->ApplyDeltas(applied, maintain_stack.source(),
                                            &maintain_error)) {
                std::fprintf(stderr,
                             "query %zu error: standing %zu maintenance "
                             "failed: %s\n",
                             qi + 1, entry.query_number,
                             maintain_error.c_str());
                status = 1;
              }
            }
          }
          std::size_t inserted = 0;
          std::size_t deleted = 0;
          for (const AppliedDelta& one : applied) {
            inserted += one.inserted.size();
            deleted += one.deleted.size();
          }
          std::printf(
              "\nquery %zu: delta applied (%zu inserted, %zu deleted, "
              "%zu cache entries dropped)\n",
              qi + 1, inserted, deleted, cache_dropped);
          if (standing_mode) emit_standing();
          if (apply_failed) {
            std::printf("query %zu: skipped remainder (bad delta)\n", qi + 1);
            status = 1;
          }
          continue;
        }
        std::fprintf(stderr, "query %zu error: unknown directive \"%s\"\n",
                     qi + 1, head.c_str());
        std::printf("\nquery %zu: skipped (bad directive)\n", qi + 1);
        status = 1;
        continue;
      }
      std::optional<UnionQuery> q = ParseUnionQuery(blocks[qi], &error);
      if (!q) {
        std::fprintf(stderr, "query %zu error: %s\n", qi + 1, error.c_str());
        std::printf("\nquery %zu: skipped (parse error)\n", qi + 1);
        status = 1;
        continue;
      }
      if (!catalog->CoversQuery(*q, &error)) {
        std::fprintf(stderr, "query %zu schema mismatch: %s\n", qi + 1,
                     error.c_str());
        std::printf("\nquery %zu: skipped (schema mismatch)\n", qi + 1);
        status = 1;
        continue;
      }
      CompileResult compiled = Compile(*q, *catalog, options);
      SourceStack stack(&backend, runtime);
      // --pipeline-depth rides through exec.runtime (it is an executor
      // decision, not a stack layer); share this stack's clock so
      // overlapped waves are charged on the session timeline.
      exec.runtime.clock = stack.clock();
      AnswerStarReport report =
          AnswerStar(compiled.analyzed_query, *catalog, stack.source(), exec);
      const std::uint64_t physical = backend.stats().calls - calls_before;
      calls_before = backend.stats().calls;
      std::printf("\nquery %zu: %s\n", qi + 1, q->ToString().c_str());
      if (!report.ok) {
        std::printf("  failed: %s\n", report.error.c_str());
        status = 1;
      } else {
        std::printf("  answers: %zu under, %zu over, %s\n",
                    report.under.size(), report.over.size(),
                    report.complete ? "complete" : "incomplete");
        if (standing_mode) {
          // Materialize the chains off the same (warm) stack the run just
          // used; later !delta blocks maintain them in place.
          std::unique_ptr<StandingQuery> sq = StandingQuery::Build(
              compiled.analyzed_query, *catalog, stack.source(), &error);
          if (sq == nullptr) {
            std::fprintf(stderr,
                         "query %zu error: standing registration failed: "
                         "%s\n",
                         qi + 1, error.c_str());
            status = 1;
          } else {
            standing.push_back(SessionStanding{qi + 1, std::move(sq)});
            std::printf("  standing: registered\n");
          }
        }
      }
      std::printf("  physical calls: %llu\n",
                  static_cast<unsigned long long>(physical));
      std::printf("  runtime: %s\n",
                  WithExecutorCounters(stack.stats(), report.runtime)
                      .ToString()
                      .c_str());
      if (metrics_format != nullptr) {
        std::printf("  metrics:\n%s\n",
                    std::strcmp(metrics_format, "json") == 0
                        ? stack.meter()->ToJson().c_str()
                        : stack.meter()->ToText().c_str());
      }
      // Feed this query's observations to the next one's adaptive model.
      if (stack.meter() != nullptr) stats.Observe(*stack.meter());
    }
    if (shared_cache) {
      std::printf("\n%s\n", shared_store.ToText().c_str());
    }
    write_stats_out(stats);
    return status;
  }

  std::printf("schema:\n%s\n\nquery:\n%s\n\n", catalog->ToString().c_str(),
              query->ToString().c_str());
  if (!constraints.empty()) {
    std::printf("constraints:\n%s\n\n", constraints.ToString().c_str());
  }

  std::printf("executable: %s\norderable:  %s\n",
              IsExecutable(*query, *catalog) ? "yes" : "no",
              IsOrderable(*query, *catalog) ? "yes" : "no");

  CompileResult compiled = Compile(*query, *catalog, options);
  std::printf("%s\n", compiled.Report().c_str());

  if (explain_plans) {
    PlanStarResult plans = PlanStar(compiled.analyzed_query, *catalog);
    const auto print_decisions = [&](const char* title,
                                     const UnionQuery& plan) {
      std::printf("\n%s plan decisions:\n", title);
      for (const PlanExplanation& e : ExplainPlan(plan, *catalog, *model)) {
        std::printf("%s", e.ToString().c_str());
      }
    };
    // The compiled operator chain per disjunct (eval/op/lowering.h):
    // operator kind, access pattern, and the chosen candidate's cost
    // under the planner's running live-binding estimate.
    const auto print_operators = [&](const char* title,
                                     const UnionQuery& plan) {
      std::printf("\n%s operator DAG:\n", title);
      std::size_t d = 0;
      for (const ConjunctiveQuery& disjunct : plan.disjuncts()) {
        std::printf("disjunct %zu: %s\n%s", ++d,
                    disjunct.ToString().c_str(),
                    LowerDisjunct(disjunct, *catalog, *model)
                        .ToString()
                        .c_str());
      }
    };
    print_decisions("underestimate", plans.under);
    print_operators("underestimate", plans.under);
    print_decisions("overestimate", plans.over);
    print_operators("overestimate", plans.over);
  }

  if (facts_path != nullptr) {
    std::optional<std::string> text = ReadFile(facts_path);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", facts_path);
      return 1;
    }
    std::optional<Database> db = Database::ParseFacts(*text, &error);
    if (!db) {
      std::fprintf(stderr, "facts error: %s\n", error.c_str());
      return 1;
    }
    if (!constraints.empty() && !constraints.HoldsIn(*db)) {
      std::fprintf(stderr,
                   "warning: facts violate the declared constraints\n");
    }
    DatabaseSource backend(&*db, &*catalog);
    // The runtime flags build the source stack here (rather than through
    // ExecutionOptions) so the whole run — ANSWER*, Δ explanations, the
    // improved underestimate — shares one cache/budget/worker pool, and
    // the meter can be printed at the end. `exec.runtime` carries only
    // the executor-side pipelining knob (--pipeline-depth) and this
    // stack's clock; the layered stack is this one, not a per-Execute
    // one.
    SourceStack stack(&backend, runtime);
    exec.runtime.clock = stack.clock();
    Source* source = stack.source();
    AnswerStarReport report =
        AnswerStar(compiled.analyzed_query, *catalog, source, exec);
    std::printf("\nANSWER*:\n%s\n", report.Summary().c_str());
    std::printf("source calls: %llu, tuples: %llu\n",
                static_cast<unsigned long long>(backend.stats().calls),
                static_cast<unsigned long long>(
                    backend.stats().tuples_returned));
    if (runtime.Enabled()) {
      std::printf("runtime: %s\n",
                  WithExecutorCounters(stack.stats(), report.runtime)
                      .ToString()
                      .c_str());
    }
    if (shared_cache) {
      std::printf("%s\n", shared_store.ToText().c_str());
    }
    const auto snapshot_and_write = [&]() {
      if (stats_out_path == nullptr || stack.meter() == nullptr) return;
      StatsCatalog snapshot;
      snapshot.Observe(*stack.meter());
      write_stats_out(snapshot);
    };
    if (!report.ok) {
      if (metrics_format != nullptr) {
        std::printf("\nmetrics:\n%s\n",
                    std::strcmp(metrics_format, "json") == 0
                        ? stack.meter()->ToJson().c_str()
                        : stack.meter()->ToText().c_str());
      }
      snapshot_and_write();
      return 1;
    }

    if (!report.complete) {
      for (const DeltaExplanation& e : ExplainDelta(
               compiled.analyzed_query, *catalog, source, report)) {
        std::printf("  maybe %s\n", e.ToString().c_str());
      }
    }
    if (improve && !report.complete) {
      ImprovedUnderestimate improved =
          ImproveUnderestimate(compiled.analyzed_query, *catalog, source);
      std::printf("\nimproved underestimate (%zu tuples, %zu gained):\n%s\n",
                  improved.tuples.size(), improved.gained.size(),
                  TupleSetToString(improved.tuples).c_str());
    }
    if (metrics_format != nullptr) {
      std::printf("\nmetrics:\n%s\n",
                  std::strcmp(metrics_format, "json") == 0
                      ? stack.meter()->ToJson().c_str()
                      : stack.meter()->ToText().c_str());
    }
    snapshot_and_write();
  }
  return 0;
}
