# check_workload_stdio.cmake — tier-1 smoke for the workload harness.
#
# Run as a script:
#   cmake -DUCQN_WORKLOAD=<ucqn_workload> -DUCQND=<ucqnd> \
#       -DWORK_DIR=<scratch dir> -P check_workload_stdio.cmake
#
# Generates a small seeded workload, then replays it twice:
#   1. through a child `ucqnd --stdio` (the wire path — a few hundred
#      protocol lines, every request must come back ok);
#   2. in-process on the simulated clock with --report-json, checking the
#      report lands and carries a percentile field.
#
# Wired as the `workload_stdio_check` ctest (labels: tier1;workload;server).

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED UCQN_WORKLOAD OR NOT DEFINED UCQND OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "usage: cmake -DUCQN_WORKLOAD=<bin> -DUCQND=<bin> -DWORK_DIR=<dir> -P check_workload_stdio.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(workload_file "${WORK_DIR}/smoke_workload.txt")

# Small but non-trivial: 120 templates over a 4-link chain, 300 requests.
# No injected failures — every request must succeed on both paths.
execute_process(
    COMMAND "${UCQN_WORKLOAD}" --generate --out "${workload_file}"
        --seed 11 --chain-length 4 --enumerable 2 --decoys 2
        --domain-size 16 --tuples 32 --queries 120
        --requests 300 --tenants 3
    OUTPUT_VARIABLE gen_out
    ERROR_VARIABLE gen_err
    RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${gen_rc}): ${gen_out}${gen_err}")
endif()
if(NOT EXISTS "${workload_file}")
  message(FATAL_ERROR "generate reported success but wrote no file")
endif()

# Path 1: the wire. Every request travels as a protocol line through a
# child `ucqnd --stdio`.
execute_process(
    COMMAND "${UCQN_WORKLOAD}" --replay "${workload_file}"
        --via-daemon "${UCQND}" --workdir "${WORK_DIR}" --expect-all-ok
    OUTPUT_VARIABLE wire_out
    ERROR_VARIABLE wire_err
    RESULT_VARIABLE wire_rc)
if(NOT wire_rc EQUAL 0)
  message(FATAL_ERROR "via-daemon replay failed (${wire_rc}): ${wire_out}${wire_err}")
endif()
if(NOT wire_out MATCHES "300 requests, 300 ok")
  message(FATAL_ERROR "via-daemon replay did not answer all 300 requests ok: ${wire_out}")
endif()

# Path 2: in-process on the simulated clock, with the JSON report.
set(report_file "${WORK_DIR}/smoke_report.json")
execute_process(
    COMMAND "${UCQN_WORKLOAD}" --replay "${workload_file}"
        --expect-all-ok --cache-ttl-ms 1000 --report-json "${report_file}"
    OUTPUT_VARIABLE proc_out
    ERROR_VARIABLE proc_err
    RESULT_VARIABLE proc_rc)
if(NOT proc_rc EQUAL 0)
  message(FATAL_ERROR "in-process replay failed (${proc_rc}): ${proc_out}${proc_err}")
endif()
if(NOT EXISTS "${report_file}")
  message(FATAL_ERROR "in-process replay wrote no --report-json file")
endif()
file(READ "${report_file}" report_text)
foreach(field "\"p99_us\"" "\"hit_curve\"" "\"answers_hash\"")
  if(NOT report_text MATCHES "${field}")
    message(FATAL_ERROR "replay report is missing ${field}: ${report_text}")
  endif()
endforeach()

message(STATUS "workload smoke ok: 300 requests over the wire and in-process")
