# check_session_errors.cmake — a malformed block in a `ucqnc --queries`
# session must poison only itself: the session diagnoses it by number,
# keeps running the blocks after it, and exits nonzero at the end.
#
# Run as a script:
#   cmake -DUCQNC=<path-to-ucqnc> -DWORK_DIR=<scratch dir> \
#       -P check_session_errors.cmake
#
# Wired as the `session_error_check` ctest (labels: tier1;docs).

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED UCQNC OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "usage: cmake -DUCQNC=<ucqnc> -DWORK_DIR=<dir> -P check_session_errors.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(WRITE "${WORK_DIR}/schema.txt" "L/1: o\nB/2: io\n")
file(WRITE "${WORK_DIR}/facts.txt"
    "L(\"a\").\nL(\"b\").\nB(\"a\", \"x\").\nB(\"b\", \"y\").\n")
# Block 2 fails to parse; block 3 references a relation the schema lacks;
# blocks 1 and 4 are fine. The session must run 1 and 4 regardless.
file(WRITE "${WORK_DIR}/queries.txt"
    "Q(x) :- L(x).\n"
    "---\n"
    "Q(x) :- L(x\n"
    "---\n"
    "Q(x) :- Missing(x).\n"
    "---\n"
    "Q(x, y) :- L(x), B(x, y).\n")

execute_process(
    COMMAND "${UCQNC}"
        --schema "${WORK_DIR}/schema.txt"
        --queries "${WORK_DIR}/queries.txt"
        --facts "${WORK_DIR}/facts.txt"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)

# The session saw failures, so it must exit nonzero — but it must not die
# on block 2: the queries after the bad ones still have to run.
if(rc EQUAL 0)
  message(FATAL_ERROR "session with malformed blocks exited 0:\n${out}")
endif()

function(expect_contains haystack_name haystack needle)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
        "${haystack_name} lacks \"${needle}\"; got:\n${haystack}")
  endif()
endfunction()

expect_contains(stderr "${err}" "query 2 error:")
expect_contains(stderr "${err}" "query 3 schema mismatch:")
expect_contains(stdout "${out}" "query 2: skipped (parse error)")
expect_contains(stdout "${out}" "query 3: skipped (schema mismatch)")
# The good blocks around the bad ones both produced answers.
expect_contains(stdout "${out}" "query 1: Q(x) :- L(x).")
expect_contains(stdout "${out}" "query 4: Q(x, y) :- L(x), B(x, y).")
string(REGEX MATCHALL "answers: [0-9]+ under" answered "${out}")
list(LENGTH answered n_answered)
if(NOT n_answered EQUAL 2)
  message(FATAL_ERROR
      "expected 2 answered queries around the malformed blocks, saw ${n_answered}:\n${out}")
endif()

message(STATUS "malformed --queries blocks are diagnosed and skipped; the session continues")
