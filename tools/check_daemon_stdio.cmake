# check_daemon_stdio.cmake — end-to-end exercise of the ucqnd binary over
# its --stdio transport, including the warm-restart contract: a daemon
# started from the previous run's snapshots must serve a previously seen
# query with ZERO physical source calls.
#
# Run as a script:
#   cmake -DUCQND=<path-to-ucqnd> -DWORK_DIR=<scratch dir> \
#       -P check_daemon_stdio.cmake
#
# Wired as the `daemon_stdio_check` ctest (labels: tier1;server).

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED UCQND OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "usage: cmake -DUCQND=<ucqnd> -DWORK_DIR=<dir> -P check_daemon_stdio.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(WRITE "${WORK_DIR}/schema.txt" "L/1: o\nB/2: io\n")
file(WRITE "${WORK_DIR}/facts.txt"
    "L(\"a\").\nL(\"b\").\nB(\"a\", \"x\").\nB(\"b\", \"y\").\n")

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${label} lacks \"${needle}\"; got:\n${haystack}")
  endif()
endfunction()

function(run_daemon out_var requests)
  file(WRITE "${WORK_DIR}/requests.jsonl" "${requests}")
  execute_process(
      COMMAND "${UCQND}"
          --schema "${WORK_DIR}/schema.txt"
          --facts "${WORK_DIR}/facts.txt"
          --stdio
          --snapshot-dir "${WORK_DIR}/snap"
      INPUT_FILE "${WORK_DIR}/requests.jsonl"
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ucqnd exited ${rc}:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Cold run: the query pays physical calls, a malformed line and a bad
# query poison only themselves, and EOF drains (spilling the snapshots).
run_daemon(cold
    "{\"op\": \"query\", \"id\": \"q1\", \"tenant\": \"alice\", \"query\": \"Q(x, y) :- L(x), B(x, y).\"}\nthis is not json\n{\"op\": \"query\", \"id\": \"q2\", \"query\": \"Q(x) :- L(x\"}\n{\"op\": \"stats\", \"id\": \"s1\"}\n")
expect_contains("cold q1" "${cold}" "\"id\": \"q1\"")
expect_contains("cold q1" "${cold}" "\"status\": \"ok\"")
expect_contains("cold q1" "${cold}" "[\"a\", \"x\"]")
expect_contains("cold bad line" "${cold}" "bad request:")
expect_contains("cold q2" "${cold}" "\"id\": \"q2\"")
expect_contains("cold q2" "${cold}" "query error:")
expect_contains("cold stats" "${cold}" "\"queries_served\": 2")
string(FIND "${cold}" "\"physical_calls\": 0" cold_zero)
if(NOT cold_zero EQUAL -1)
  message(FATAL_ERROR "cold run claims zero physical calls:\n${cold}")
endif()
if(NOT EXISTS "${WORK_DIR}/snap/cache.json" OR
   NOT EXISTS "${WORK_DIR}/snap/stats.json")
  message(FATAL_ERROR "drain did not spill snapshots into ${WORK_DIR}/snap")
endif()

# Warm run: a fresh process, same snapshot dir, same query — served
# entirely from the restored cache, zero physical source calls.
run_daemon(warm
    "{\"op\": \"query\", \"id\": \"w1\", \"tenant\": \"bob\", \"query\": \"Q(x, y) :- L(x), B(x, y).\"}\n")
expect_contains("warm w1" "${warm}" "\"status\": \"ok\"")
expect_contains("warm w1" "${warm}" "[\"a\", \"x\"]")
expect_contains("warm w1" "${warm}" "\"physical_calls\": 0")

# Delta feed: register a standing query, push a delta through the real
# binary, and re-read the maintained answers without re-running the query.
# The insert must appear in the `answers` op's result; the scoped
# invalidation and maintenance counters must surface in the delta payload.
run_daemon(delta
    "{\"op\": \"query\", \"id\": \"s1\", \"tenant\": \"alice\", \"standing\": true, \"query\": \"Q(x, y) :- L(x), B(x, y).\"}\n{\"op\": \"delta\", \"id\": \"d1\", \"tenant\": \"alice\", \"relation\": \"B\", \"insert\": [[\"a\", \"x2\"]], \"delete\": [[\"b\", \"y\"]]}\n{\"op\": \"answers\", \"id\": \"s1\", \"tenant\": \"alice\"}\n{\"op\": \"answers\", \"id\": \"s1\", \"tenant\": \"mallory\"}\n")
expect_contains("standing s1" "${delta}" "\"id\": \"s1\"")
expect_contains("delta d1" "${delta}" "\"id\": \"d1\"")
expect_contains("delta d1" "${delta}" "\"inserted\": 1")
expect_contains("delta d1" "${delta}" "\"deleted\": 1")
expect_contains("delta d1" "${delta}" "\"standing_updated\": 1")
expect_contains("maintained answers" "${delta}" "[\"a\", \"x2\"]")
string(FIND "${delta}" "[\"b\", \"y\"]" deleted_at)
# The deleted derivation must be gone from the *last* answers response;
# it still appears in the standing registration's own answer echo, so
# check the maintained section (everything after the delta response).
string(FIND "${delta}" "\"id\": \"d1\"" delta_at)
string(SUBSTRING "${delta}" ${delta_at} -1 after_delta)
string(FIND "${after_delta}" "[\"b\", \"y\"]" stale_at)
if(NOT stale_at EQUAL -1)
  message(FATAL_ERROR "maintained answers still carry the deleted tuple:\n${after_delta}")
endif()
# Standing registrations are tenant-scoped.
expect_contains("foreign tenant" "${delta}" "no standing query")

message(STATUS
    "ucqnd --stdio serves, recovers per-line, restarts warm, and maintains standing queries under deltas")
