// selfcheck — scaled-up randomized differential validation. The gtest
// property suites run a few hundred random cases to stay fast in CI; this
// tool runs the same cross-checks for as many seeds as you like, e.g.
//
//   selfcheck --seeds 5000
//
// Checks per seed (all must hold):
//   1. containment engine vs. brute-force completion search (small CQ¬),
//   2. PLAN* sandwich soundness + ANSWER* completeness-signal correctness
//      on a random instance,
//   3. executor vs. oracle on orderable queries,
//   4. Li-Chang baselines vs. FEASIBLE on CQ and UCQ,
//   5. Theorem 18 reduction equivalence,
//   6. witness extraction agrees with the boolean containment engine,
//   7. the constraint chase preserves answers on legal instances.
//
// Exit status 0 iff every check passed; failures print a reproducer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "constraints/inclusion.h"
#include "containment/brute_force.h"
#include "containment/ucqn_containment.h"
#include "eval/answer_star.h"
#include "eval/oracle.h"
#include "feasibility/feasible.h"
#include "feasibility/li_chang.h"
#include "feasibility/reduction.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

int failures = 0;

void Fail(const char* check, unsigned seed, const std::string& detail) {
  ++failures;
  std::fprintf(stderr, "FAIL [%s] seed=%u\n%s\n", check, seed,
               detail.c_str());
}

void CheckContainment(unsigned seed) {
  std::mt19937 rng(seed);
  Catalog catalog = Catalog::MustParse("A/1: o\nB/1: o\nE/2: oo\n");
  RandomQueryOptions options;
  options.num_literals = 2;
  options.num_variables = 2;
  options.negation_prob = 0.35;
  options.constant_prob = 0.0;
  options.head_arity = 1;
  ConjunctiveQuery P = RandomCq(&rng, catalog, options, "Q");
  UnionQuery Q = RandomUcq(&rng, catalog, options, 1 + (seed % 2), "Q");
  if (P.head_arity() != Q.head_arity()) return;
  std::optional<bool> brute = BruteForceContained(P, Q, catalog);
  if (!brute.has_value()) return;
  if (Contained(P, Q) != *brute) {
    Fail("containment", seed, "P: " + P.ToString() + "\nQ:\n" + Q.ToString());
  }
}

void CheckRuntime(unsigned seed) {
  std::mt19937 rng(seed + 1000000);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.45;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  UnionQuery q = RandomUcq(&rng, catalog, options, 2);
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  Database db = RandomDatabase(&rng, catalog, instance_options);
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  std::set<Tuple> truth = OracleEvaluate(q, db);
  for (const Tuple& t : report.under) {
    if (truth.count(t) == 0) {
      Fail("under-sound", seed, q.ToString() + "\n" + TupleToString(t));
      return;
    }
  }
  if (report.complete && report.under != truth) {
    Fail("complete-signal", seed, q.ToString());
  }
}

void CheckBaselines(unsigned seed) {
  std::mt19937 rng(seed + 2000000);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.head_arity = 1;
  ConjunctiveQuery cq = RandomCq(&rng, catalog, options);
  const bool s = CqStable(cq, catalog);
  const bool ss = CqStableStar(cq, catalog);
  const bool f = IsFeasible(UnionQuery(cq), catalog);
  if (s != ss || ss != f) Fail("cq-baselines", seed, cq.ToString());
  UnionQuery ucq = RandomUcq(&rng, catalog, options, 3);
  const bool us = UcqStable(ucq, catalog);
  const bool uss = UcqStableStar(ucq, catalog);
  const bool uf = IsFeasible(ucq, catalog);
  if (us != uss || uss != uf) Fail("ucq-baselines", seed, ucq.ToString());
}

void CheckReduction(unsigned seed) {
  std::mt19937 rng(seed + 3000000);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.head_arity = 1;
  UnionQuery P = RandomUcq(&rng, catalog, options, 2);
  UnionQuery Q = RandomUcq(&rng, catalog, options, 2);
  FeasibilityInstance instance = ReduceContainmentToFeasibility(P, Q);
  if (Contained(P, Q) != IsFeasible(instance.query, instance.catalog)) {
    Fail("theorem18", seed, "P:\n" + P.ToString() + "\nQ:\n" + Q.ToString());
  }
}

void CheckWitness(unsigned seed) {
  std::mt19937 rng(seed + 4000000);
  Catalog catalog = Catalog::MustParse("A/1: o\nB/1: o\nE/2: oo\n");
  RandomQueryOptions options;
  options.num_literals = 2;
  options.num_variables = 2;
  options.negation_prob = 0.35;
  options.constant_prob = 0.0;
  options.head_arity = 1;
  ConjunctiveQuery P = RandomCq(&rng, catalog, options, "Q");
  UnionQuery Q = RandomUcq(&rng, catalog, options, 2, "Q");
  const bool contained = Contained(P, Q);
  const bool has_witness = ContainedWithWitness(P, Q).has_value();
  if (contained != has_witness) {
    Fail("witness", seed, "P: " + P.ToString() + "\nQ:\n" + Q.ToString());
  }
}

void CheckChase(unsigned seed) {
  std::mt19937 rng(seed + 5000000);
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/2: oo\n");
  ConstraintSet constraints = ConstraintSet::MustParse("R[1] c= S[0]");
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  ConjunctiveQuery q = RandomCq(&rng, catalog, options);
  ConjunctiveQuery chased = ChaseQuery(q, constraints);
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  Database db =
      RandomDatabaseWithInclusion(&rng, catalog, instance_options, "R", 1,
                                  "S", 0);
  if (OracleEvaluate(chased, db) != OracleEvaluate(q, db)) {
    Fail("chase", seed, q.ToString() + "\nchased: " + chased.ToString());
  }
}

}  // namespace
}  // namespace ucqn

int main(int argc, char** argv) {
  unsigned seeds = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--seeds N]\n", argv[0]);
      return 2;
    }
  }
  for (unsigned seed = 0; seed < seeds; ++seed) {
    ucqn::CheckContainment(seed);
    ucqn::CheckRuntime(seed);
    ucqn::CheckBaselines(seed);
    ucqn::CheckReduction(seed);
    ucqn::CheckWitness(seed);
    ucqn::CheckChase(seed);
    if ((seed + 1) % 100 == 0) {
      std::printf("... %u/%u seeds, %d failure(s)\n", seed + 1, seeds,
                  ucqn::failures);
    }
  }
  std::printf("selfcheck: %u seeds, %d failure(s)\n", seeds, ucqn::failures);
  return ucqn::failures == 0 ? 0 : 1;
}
