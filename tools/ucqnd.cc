// ucqnd — the UCQ¬ mediator as a long-lived, multi-tenant query service.
// Where ucqnc runs one session and exits, ucqnd loads the schema and
// facts once, then serves any number of concurrent query sessions over a
// line-delimited JSON protocol (see docs/RUNTIME.md, "The daemon"),
// multiplexing all of them onto one shared runtime: a process-wide
// SharedCacheStore (so tenants reuse each other's physical calls), one
// StatsCatalog feeding the adaptive cost model, and one backend
// transport.
//
// Transports: --socket PATH listens on a Unix-domain stream socket (one
// response line per request line, per-connection ordering); --stdio
// serves a single session on stdin/stdout — the form tests and shell
// pipes use. Protocol example:
//
//   {"op": "query", "id": "q1", "tenant": "alice", "query": "Q(x) :- L(x)."}
//
// Admission control (--max-in-flight / --max-queued) triages arrivals
// into run / wait / shed; per-tenant quotas (--tenant-*) ride the
// call/deadline budgets the runtime stack already enforces. On SIGINT,
// SIGTERM, or stdin EOF the daemon drains: new work is refused, in-flight
// sessions finish, and — with --snapshot-dir — the cache and stats spill
// to JSON so the next start serves warm (a previously seen query costs
// zero physical calls).
//
// Run `ucqnd --help` for the flag reference.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "ast/parser.h"
#include "eval/database.h"
#include "schema/catalog.h"
#include "server/daemon.h"
#include "server/listener.h"
#include "server/snapshot.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

std::optional<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr char kUsage[] =
    "usage: ucqnd --schema FILE --facts FILE (--socket PATH | --stdio)\n"
    "             [options]\n"
    "\n"
    "input:\n"
    "  --schema FILE        relations + access patterns (required)\n"
    "  --facts FILE         database instance backing the sources (required)\n"
    "\n"
    "transport (exactly one):\n"
    "  --socket PATH        listen on a Unix-domain socket; one JSON request\n"
    "                       per line in, one JSON response per line out\n"
    "  --stdio              serve a single session on stdin/stdout; drains\n"
    "                       and exits at EOF\n"
    "\n"
    "admission and quotas:\n"
    "  --max-in-flight N    sessions running concurrently; arrivals past\n"
    "                       this wait (default: unbounded)\n"
    "  --max-queued N       arrivals allowed to wait for a slot; the rest\n"
    "                       are shed with status \"shed\" (default: 0)\n"
    "  --tenant-max-concurrent N\n"
    "                       per-tenant concurrent-session cap; over-quota\n"
    "                       requests get status \"quota\"\n"
    "  --tenant-max-calls N per-tenant physical-call budget per query\n"
    "                       (a request's own max_calls is clamped to it)\n"
    "  --tenant-deadline-ms N\n"
    "                       per-tenant per-query deadline, virtual ms\n"
    "\n"
    "shared cache (the process-wide store every session runs against):\n"
    "  --cache-ttl-ms N     expire entries N ms after insert\n"
    "  --cache-negative-ttl-ms N\n"
    "                       expire *empty* results after N ms instead —\n"
    "                       negative answers go stale on the first insert\n"
    "                       at the source, so age them faster\n"
    "  --cache-budget N     bound the store to N resident bytes (exact\n"
    "                       entry+tuple footprint), LRU eviction\n"
    "\n"
    "warm restarts:\n"
    "  --snapshot-dir DIR   restore DIR/cache.json + DIR/stats.json at\n"
    "                       start, spill them on drain (and on the\n"
    "                       \"snapshot\" protocol op)\n"
    "\n"
    "runtime and cost model (as in ucqnc):\n"
    "  --retry N            retry transient source failures up to N attempts\n"
    "  --parallelism N      overlap each batched wave on N worker threads\n"
    "  --pipeline-depth N   keep up to N literals' waves in flight at once\n"
    "  --disjunct-concurrency N\n"
    "                       overlap up to N disjunct chains' waves per\n"
    "                       round (operator DAG; 1 = sequential disjuncts)\n"
    "  --cost-model static|adaptive\n"
    "                       plan from heuristics or from the observed stats\n"
    "                       the sessions accumulate\n"
    "  --no-fanout-feedback with the adaptive model, keep pricing unknown\n"
    "                       relations at the fallback cardinality instead of\n"
    "                       their observed result fanouts (A/B baseline; see\n"
    "                       docs/WORKLOADS.md)\n"
    "\n"
    "  --help               print this text and exit\n";

int Usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucqn;
  const char* schema_path = nullptr;
  const char* facts_path = nullptr;
  const char* socket_path = nullptr;
  bool stdio = false;
  QueryDaemon::Options options;
  std::size_t cache_ttl_ms = 0;
  std::size_t cache_negative_ttl_ms = 0;
  std::size_t tenant_deadline_ms = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char*& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    // Strict numeric values, same contract as ucqnc: the whole token must
    // be a positive decimal integer in range, or the flag is named in a
    // one-line diagnostic followed by the usage text.
    auto next_count = [&](std::size_t& slot) {
      const char* flag = argv[i];
      const char* text = nullptr;
      if (!next(text)) {
        std::fprintf(stderr, "%s expects a positive integer value\n", flag);
        return false;
      }
      char* end = nullptr;
      errno = 0;
      const long long value = std::strtoll(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || value <= 0 ||
          value == LLONG_MAX) {
        std::fprintf(stderr, "%s expects a positive integer, got \"%s\"\n",
                     flag, text);
        return false;
      }
      slot = static_cast<std::size_t>(value);
      return true;
    };
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strcmp(argv[i], "--schema") == 0) {
      if (!next(schema_path)) return Usage();
    } else if (std::strcmp(argv[i], "--facts") == 0) {
      if (!next(facts_path)) return Usage();
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      if (!next(socket_path)) return Usage();
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
      if (!next_count(options.admission.max_in_flight)) return Usage();
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      if (!next_count(options.admission.max_queued)) return Usage();
    } else if (std::strcmp(argv[i], "--tenant-max-concurrent") == 0) {
      if (!next_count(options.default_quota.max_concurrent)) return Usage();
    } else if (std::strcmp(argv[i], "--tenant-max-calls") == 0) {
      std::size_t max_calls = 0;
      if (!next_count(max_calls)) return Usage();
      options.default_quota.max_calls_per_query = max_calls;
    } else if (std::strcmp(argv[i], "--tenant-deadline-ms") == 0) {
      if (!next_count(tenant_deadline_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--cache-ttl-ms") == 0) {
      if (!next_count(cache_ttl_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--cache-negative-ttl-ms") == 0) {
      if (!next_count(cache_negative_ttl_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      if (!next_count(options.cache.budget_bytes)) return Usage();
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0) {
      const char* dir = nullptr;
      if (!next(dir)) return Usage();
      options.snapshot_dir = dir;
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      std::size_t attempts = 0;
      if (!next_count(attempts)) return Usage();
      options.runtime.retry = true;
      options.runtime.retry_policy.max_attempts = static_cast<int>(attempts);
    } else if (std::strcmp(argv[i], "--parallelism") == 0) {
      if (!next_count(options.runtime.parallelism)) return Usage();
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0) {
      if (!next_count(options.runtime.pipeline_depth)) return Usage();
    } else if (std::strcmp(argv[i], "--disjunct-concurrency") == 0) {
      if (!next_count(options.disjunct_concurrency)) return Usage();
    } else if (std::strcmp(argv[i], "--cost-model") == 0) {
      const char* name = nullptr;
      if (!next(name)) return Usage();
      if (std::strcmp(name, "static") != 0 &&
          std::strcmp(name, "adaptive") != 0) {
        return Usage();
      }
      options.adaptive_cost_model = std::strcmp(name, "adaptive") == 0;
    } else if (std::strcmp(argv[i], "--no-fanout-feedback") == 0) {
      options.fanout_feedback = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage();
    }
  }
  if (schema_path == nullptr || facts_path == nullptr) return Usage();
  if (stdio == (socket_path != nullptr)) {
    std::fprintf(stderr, "pick exactly one transport: --socket or --stdio\n");
    return Usage();
  }
  options.cache.default_ttl_micros =
      static_cast<std::uint64_t>(cache_ttl_ms) * 1000;
  options.cache.negative_ttl_micros =
      static_cast<std::uint64_t>(cache_negative_ttl_ms) * 1000;
  options.default_quota.deadline_micros =
      static_cast<std::uint64_t>(tenant_deadline_ms) * 1000;

  std::string error;
  std::optional<std::string> schema_text = ReadFile(schema_path);
  if (!schema_text) {
    std::fprintf(stderr, "cannot read %s\n", schema_path);
    return 1;
  }
  std::optional<Catalog> catalog = Catalog::Parse(*schema_text, &error);
  if (!catalog) {
    std::fprintf(stderr, "schema error: %s\n", error.c_str());
    return 1;
  }
  std::optional<std::string> facts_text = ReadFile(facts_path);
  if (!facts_text) {
    std::fprintf(stderr, "cannot read %s\n", facts_path);
    return 1;
  }
  std::optional<Database> db = Database::ParseFacts(*facts_text, &error);
  if (!db) {
    std::fprintf(stderr, "facts error: %s\n", error.c_str());
    return 1;
  }

  DatabaseSource backend(&*db, &*catalog);
  // The backend reads this in-process database, so delta ops can mutate
  // it directly and maintain standing queries against the same instance.
  options.database = &*db;
  QueryDaemon daemon(&*catalog, &backend, options);

  SnapshotLoadReport loaded;
  if (!daemon.LoadSnapshots(&loaded, &error)) {
    std::fprintf(stderr, "snapshot load failed: %s\n", error.c_str());
    return 1;
  }
  if (loaded.cache_loaded || loaded.stats_loaded) {
    std::fprintf(stderr,
                 "warm start: %zu cache entr%s, stats for %zu relation(s)\n",
                 loaded.cache_entries, loaded.cache_entries == 1 ? "y" : "ies",
                 loaded.stats_relations);
  }

  // Diagnostics go to stderr throughout so stdout stays pure protocol in
  // --stdio mode.
  if (stdio) {
    std::fprintf(stderr, "ucqnd: serving on stdio (EOF drains and exits)\n");
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::printf("%s\n", daemon.SubmitLine(line).c_str());
      std::fflush(stdout);
    }
    daemon.Drain();
    std::fprintf(stderr, "ucqnd: drained (%llu queries served)\n",
                 static_cast<unsigned long long>(daemon.queries_served()));
    return 0;
  }

  SocketListener listener(&daemon);
  if (!listener.Start(socket_path, &error)) {
    std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::fprintf(stderr, "ucqnd: listening on %s\n", socket_path);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "ucqnd: draining\n");
  daemon.Drain();     // refuse new work, finish in-flight, spill snapshots
  listener.Stop();    // then tear the transport down
  std::fprintf(stderr, "ucqnd: drained (%llu queries served)\n",
               static_cast<unsigned long long>(daemon.queries_served()));
  return 0;
}
