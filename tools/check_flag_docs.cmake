# check_flag_docs.cmake — keep flag documentation in sync with the binaries.
#
# Run as a script:
#   cmake -DUCQNC=<ucqnc> -DUCQND=<ucqnd> -DUCQN_WORKLOAD=<ucqn_workload> \
#       -DREPO_ROOT=<repo root> -P check_flag_docs.cmake
#
# Two directions:
#   1. every `--flag` token mentioned in README.md, docs/RUNTIME.md, or
#      docs/WORKLOADS.md must be a flag that `ucqnc --help`, `ucqnd --help`,
#      or `ucqn_workload --help` advertises (modulo an allowlist of foreign
#      tools' flags, e.g. ctest's --output-on-failure);
#   2. every flag any of the binaries advertises must be documented in
#      docs/RUNTIME.md or docs/WORKLOADS.md (the flag reference tables).
#
# Wired as the `docs_flag_check` ctest (labels: tier1;docs).

cmake_minimum_required(VERSION 3.16)  # script mode: enables IN_LIST (CMP0057)

if(NOT DEFINED UCQNC OR NOT DEFINED UCQND OR NOT DEFINED UCQN_WORKLOAD
   OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR
      "usage: cmake -DUCQNC=<ucqnc> -DUCQND=<ucqnd> -DUCQN_WORKLOAD=<ucqn_workload> -DREPO_ROOT=<repo> -P check_flag_docs.cmake")
endif()

# The authoritative flag set: every double-dash token in each help text.
set(help_flags "")
foreach(binary "${UCQNC}" "${UCQND}" "${UCQN_WORKLOAD}")
  execute_process(
      COMMAND "${binary}" --help
      OUTPUT_VARIABLE help_text
      ERROR_VARIABLE help_err
      RESULT_VARIABLE help_rc)
  if(NOT help_rc EQUAL 0)
    message(FATAL_ERROR "${binary} --help exited with ${help_rc}: ${help_err}")
  endif()
  string(REGEX MATCHALL "--[a-z][a-z0-9_-]*" binary_flags "${help_text}")
  list(LENGTH binary_flags n_binary_flags)
  if(n_binary_flags EQUAL 0)
    message(FATAL_ERROR "${binary} --help produced no --flag tokens; check the binary")
  endif()
  list(APPEND help_flags ${binary_flags})
endforeach()
list(REMOVE_DUPLICATES help_flags)
list(LENGTH help_flags n_help_flags)

# Flags that belong to other tools and legitimately appear in the docs.
set(foreign_flags
    --test-dir            # ctest
    --output-on-failure   # ctest
    --preset              # cmake workflow presets
    --build               # cmake --build
    --seeds               # bench harness knob
    --benchmark_filter    # google-benchmark
    --label-regex         # ctest -L
)

set(problems "")

# Direction 1: documented flags must exist in one of the binaries.
foreach(doc README.md docs/RUNTIME.md docs/WORKLOADS.md)
  file(READ "${REPO_ROOT}/${doc}" doc_text)
  string(REGEX MATCHALL "--[a-z][a-z0-9_-]*" doc_flags "${doc_text}")
  list(REMOVE_DUPLICATES doc_flags)
  foreach(flag IN LISTS doc_flags)
    if(flag IN_LIST foreign_flags)
      continue()
    endif()
    if(NOT flag IN_LIST help_flags)
      list(APPEND problems "${doc} documents ${flag}, which no binary's --help accepts")
    endif()
  endforeach()
endforeach()

# Direction 2: every binary flag must be documented in docs/RUNTIME.md or
# docs/WORKLOADS.md.
file(READ "${REPO_ROOT}/docs/RUNTIME.md" runtime_md)
file(READ "${REPO_ROOT}/docs/WORKLOADS.md" workloads_md)
string(REGEX MATCHALL "--[a-z][a-z0-9_-]*" runtime_flags
       "${runtime_md} ${workloads_md}")
list(REMOVE_DUPLICATES runtime_flags)
foreach(flag IN LISTS help_flags)
  if(NOT flag IN_LIST runtime_flags)
    list(APPEND problems "a binary's --help advertises ${flag}, but neither docs/RUNTIME.md nor docs/WORKLOADS.md mentions it")
  endif()
endforeach()

if(problems)
  list(JOIN problems "\n  " joined)
  message(FATAL_ERROR "flag docs out of sync:\n  ${joined}")
endif()

message(STATUS "flag docs in sync: ${n_help_flags} flags cross-checked against README.md and docs/RUNTIME.md")
