# tsan_gate.cmake — the tier-1 hook for the ThreadSanitizer preset: the
# `concurrency`- and `operator`-labeled tests (parallel waves, the shared
# cache's single-flight protocol, clock overlap accounting, pipelined
# execution, the operator-DAG executor's racing disjunct chains) must be
# race-clean, not just green.
#
# Run as a script:
#   cmake -DREPO_ROOT=<repo> -P tsan_gate.cmake
#
# Configures the repo's `tsan` preset into build-tsan (incremental across
# runs), builds exactly the binaries behind the gated labels — discovered
# from ctest itself so new tests are picked up automatically —
# and runs them under TSAN_OPTIONS=halt_on_error=1. Any data race fails
# the gate. Set UCQN_SKIP_TSAN_GATE=1 to skip (e.g. a toolchain without
# -fsanitize=thread).
#
# Wired as the `tsan_concurrency_gate` ctest (labels: tier1;tsan).

cmake_minimum_required(VERSION 3.21)

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DREPO_ROOT=<repo> -P tsan_gate.cmake")
endif()

if(DEFINED ENV{UCQN_SKIP_TSAN_GATE} AND NOT "$ENV{UCQN_SKIP_TSAN_GATE}" STREQUAL "")
  message(STATUS "tsan gate skipped (UCQN_SKIP_TSAN_GATE is set)")
  return()
endif()

set(tsan_dir "${REPO_ROOT}/build-tsan")

execute_process(
    COMMAND "${CMAKE_COMMAND}" --preset tsan
    WORKING_DIRECTORY "${REPO_ROOT}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan preset configure failed:\n${out}\n${err}")
endif()

# The gated test names double as their target names (ucqn_add_test
# registers `add_test(NAME name COMMAND name)`), so the labels are the
# single source of truth for what this gate builds.
execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}" -N -L "concurrency|operator|delta"
    WORKING_DIRECTORY "${tsan_dir}"
    OUTPUT_VARIABLE listing
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "listing concurrency/operator/delta tests failed:\n${err}")
endif()
string(REGEX MATCHALL "Test +#[0-9]+: +[A-Za-z0-9_]+" lines "${listing}")
set(targets "")
foreach(line IN LISTS lines)
  string(REGEX REPLACE ".*: +" "" name "${line}")
  list(APPEND targets "${name}")
endforeach()
list(REMOVE_DUPLICATES targets)
if(targets STREQUAL "")
  message(FATAL_ERROR
      "no concurrency/operator/delta-labeled tests found in ${tsan_dir}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${tsan_dir}"
        --target ${targets} -j 4
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan build failed:\n${out}\n${err}")
endif()

set(ENV{TSAN_OPTIONS} "halt_on_error=1 second_deadlock_stack=1")
execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}" -L "concurrency|operator|delta"
        --output-on-failure
    WORKING_DIRECTORY "${tsan_dir}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "concurrency/operator/delta tests failed under ThreadSanitizer")
endif()

message(STATUS
    "concurrency/operator/delta tests are race-clean under ThreadSanitizer")
