# check_flag_errors.cmake — bad numeric flag values must be rejected with
# a one-line diagnostic naming the flag, never crash or silently misparse.
#
# Run as a script:
#   cmake -DUCQNC=<path-to-ucqnc> -P check_flag_errors.cmake
#
# Covers the numeric flags (--parallelism, --cache-ttl-ms, --cache-budget,
# --max-calls, --pipeline-depth, ...) against garbage tokens, trailing
# junk, zero/negative values, overflow, and a missing value.
#
# Wired as the `flag_value_check` ctest (labels: tier1;docs).

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED UCQNC)
  message(FATAL_ERROR
      "usage: cmake -DUCQNC=<ucqnc> -P check_flag_errors.cmake")
endif()

# Runs ucqnc with the trailing arguments and requires a nonzero exit plus
# the given diagnostic fragment on stderr.
function(expect_rejects expected_fragment)
  execute_process(
      COMMAND "${UCQNC}" ${ARGN}
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err
      RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    message(FATAL_ERROR "ucqnc ${ARGN} exited 0; expected a usage error")
  endif()
  string(FIND "${err}" "${expected_fragment}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
        "ucqnc ${ARGN}: stderr lacks \"${expected_fragment}\"; got:\n${err}")
  endif()
endfunction()

expect_rejects("--parallelism expects a positive integer, got \"banana\""
    --parallelism banana)
expect_rejects("--cache-ttl-ms expects a positive integer, got \"0\""
    --cache-ttl-ms 0)
expect_rejects("--cache-budget expects a positive integer, got \"10x\""
    --cache-budget 10x)
expect_rejects("--max-calls expects a positive integer, got \"-3\""
    --max-calls -3)
expect_rejects("--retry expects a positive integer, got \"99999999999999999999\""
    --retry 99999999999999999999)
expect_rejects("--pipeline-depth expects a positive integer value"
    --pipeline-depth)
expect_rejects("--cache-capacity expects a positive integer, got \"3.5\""
    --cache-capacity 3.5)

message(STATUS "bad numeric flag values are rejected with diagnostics")
