# ubsan_gate.cmake — the tier-1 hook for the UndefinedBehaviorSanitizer
# preset: the `dictionary`- and `operator`-labeled tests (term dictionary,
# packed cache keys, columnar frontiers, the encoded executor corpus, the
# operator-DAG regression corpus) must be UB-clean, not just green — the
# id-packing code memcpys raw uint32s in and out of byte strings, exactly
# the kind of code UBSan exists for.
#
# Run as a script:
#   cmake -DREPO_ROOT=<repo> -P ubsan_gate.cmake
#
# Configures the repo's `ubsan` preset into build-ubsan (incremental
# across runs), builds exactly the binaries behind the gated labels
# — discovered from ctest itself so new tests are picked up automatically
# — and runs them under UBSAN_OPTIONS=halt_on_error=1. Any undefined
# behavior fails the gate. Set UCQN_SKIP_UBSAN_GATE=1 to skip (e.g. a
# toolchain without -fsanitize=undefined).
#
# Wired as the `ubsan_dictionary_gate` ctest (labels: tier1;ubsan).

cmake_minimum_required(VERSION 3.21)

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DREPO_ROOT=<repo> -P ubsan_gate.cmake")
endif()

if(DEFINED ENV{UCQN_SKIP_UBSAN_GATE} AND NOT "$ENV{UCQN_SKIP_UBSAN_GATE}" STREQUAL "")
  message(STATUS "ubsan gate skipped (UCQN_SKIP_UBSAN_GATE is set)")
  return()
endif()

set(ubsan_dir "${REPO_ROOT}/build-ubsan")

execute_process(
    COMMAND "${CMAKE_COMMAND}" --preset ubsan
    WORKING_DIRECTORY "${REPO_ROOT}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan preset configure failed:\n${out}\n${err}")
endif()

# The gated test names double as their target names (ucqn_add_test
# registers `add_test(NAME name COMMAND name)`), so the labels are the
# single source of truth for what this gate builds.
execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}" -N -L "dictionary|operator|delta"
    WORKING_DIRECTORY "${ubsan_dir}"
    OUTPUT_VARIABLE listing
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "listing dictionary/operator/delta tests failed:\n${err}")
endif()
string(REGEX MATCHALL "Test +#[0-9]+: +[A-Za-z0-9_]+" lines "${listing}")
set(targets "")
foreach(line IN LISTS lines)
  string(REGEX REPLACE ".*: +" "" name "${line}")
  list(APPEND targets "${name}")
endforeach()
list(REMOVE_DUPLICATES targets)
if(targets STREQUAL "")
  message(FATAL_ERROR
      "no dictionary/operator/delta-labeled tests found in ${ubsan_dir}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${ubsan_dir}"
        --target ${targets} -j 4
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan build failed:\n${out}\n${err}")
endif()

set(ENV{UBSAN_OPTIONS} "print_stacktrace=1 halt_on_error=1")
execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}" -L "dictionary|operator|delta"
        --output-on-failure
    WORKING_DIRECTORY "${ubsan_dir}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "dictionary/operator/delta tests failed under UndefinedBehaviorSanitizer")
endif()

message(STATUS
    "dictionary/operator/delta tests are UB-clean under UndefinedBehaviorSanitizer")
