// ucqn_workload — generate and replay workload-scale scenarios.
//
// Two modes (docs/WORKLOADS.md is the guide):
//
//   --generate --out FILE     emit a seeded workload file: an adversarial
//                             random schema (probe-only chain links,
//                             enumerable negation domains, decoy
//                             relations), its instance, a fault plan
//                             (slow/flaky services, correlated spikes),
//                             a Zipf replay plan, and the distinct UCQ¬
//                             templates. Same seed, same bytes.
//
//   --replay FILE             stream the replay plan's request sequence
//                             through a QueryDaemon. In-process by
//                             default: the daemon runs in this process
//                             behind a fault-injecting source on a
//                             SimulatedClock, and the report carries
//                             simulated p50/p95/p99 latencies, windowed
//                             cache-hit curves, and shed/quota counts.
//                             With --via-daemon UCQND the requests go as
//                             protocol lines through a child `ucqnd
//                             --stdio` instead — the end-to-end wire
//                             path, real time only.
//
// Run `ucqn_workload --help` for the flag reference.

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gen/workload.h"
#include "gen/workload_replay.h"
#include "server/protocol.h"
#include "util/json.h"

namespace {

constexpr char kUsage[] =
    "usage: ucqn_workload --generate --out FILE [generator flags]\n"
    "       ucqn_workload --replay FILE [replay flags]\n"
    "\n"
    "generator (see docs/WORKLOADS.md for the emitted format):\n"
    "  --out FILE           where to write the workload file (required)\n"
    "  --seed N             generator seed; same seed, same bytes\n"
    "  --chain-length N     probe-chained relations C0..C{N-1}\n"
    "  --enumerable N       unary all-output relations E0.. for negation\n"
    "  --decoys N           untouched noise relations D0..\n"
    "  --domain-size N      constants are 0..N-1\n"
    "  --tuples N           tuples drawn per chain relation\n"
    "  --queries N          distinct query templates\n"
    "  --max-literals N     longest chain walk per disjunct\n"
    "  --negation-prob F    chance of a `not E(x)` guard per disjunct\n"
    "  --constant-prob F    chance a C0 walk enters by constant probe\n"
    "  --union-prob F       chance a template is a 2-disjunct union\n"
    "  --zipf-s F           skew of the constants drawn into probes\n"
    "  --latency-us N       injected per-call latency\n"
    "  --latency-jitter-us N\n"
    "                       seeded U[0,N] on top of the base latency\n"
    "  --failure-prob F     per-call failure probability (all relations)\n"
    "  --slow-relations N   last N chain links get 10x latency\n"
    "  --flaky-relations N  first N enumerable relations get --flaky-prob\n"
    "  --flaky-prob F       failure probability of the flaky relations\n"
    "  --spike-period-us N  correlated latency spike window period\n"
    "  --spike-duration-us N\n"
    "                       spike length at the start of each period\n"
    "  --spike-extra-us N   latency every call pays inside a spike\n"
    "  --update-rate F      chance a request index carries an update batch\n"
    "                       (emits a [deltas] stream; makes the file v2)\n"
    "  --requests N         replay plan: requests to stream\n"
    "  --tenants N          replay plan: tenants t0..t{N-1}, round-robin\n"
    "  --replay-seed N      replay plan: request-sequence seed\n"
    "  --replay-zipf-s F    replay plan: template-popularity skew\n"
    "\n"
    "replay (in-process daemon on a simulated clock):\n"
    "  --cost-model static|adaptive\n"
    "                       planning model for the daemon (default adaptive)\n"
    "  --no-fanout-feedback keep the fallback cardinality instead of\n"
    "                       observed fanouts (adaptive A/B baseline)\n"
    "  --no-faults          run the raw backend: no injected latency,\n"
    "                       failures, or spikes\n"
    "  --threads N          concurrent client threads (1 = serial; only\n"
    "                       serial replays report sim percentiles)\n"
    "  --windows N          slices of the cache-hit curve (default 10)\n"
    "  --max-requests N     cap/override the plan's request count\n"
    "  --retry N            retry attempts per source call\n"
    "  --parallelism N      wave-fetch worker threads per session\n"
    "  --pipeline-depth N   literal waves in flight per session\n"
    "  --disjunct-concurrency N\n"
    "                       disjunct chains overlapped per round\n"
    "  --cache-ttl-ms N     shared-cache TTL (simulated ms)\n"
    "  --cache-budget N     shared-cache resident-byte budget\n"
    "  --max-in-flight N    admission: concurrent sessions\n"
    "  --max-queued N       admission: waiters before shedding\n"
    "  --tenant-max-concurrent N\n"
    "                       per-tenant concurrent-session quota\n"
    "  --report-json FILE   write the full replay report as JSON\n"
    "  --expect-all-ok      exit nonzero unless every request came back ok\n"
    "\n"
    "replay via the wire (daemon stdio path):\n"
    "  --via-daemon UCQND   spawn `UCQND --stdio` and stream protocol\n"
    "                       lines through it instead of running in-process\n"
    "  --workdir DIR        where --via-daemon writes its schema/facts\n"
    "                       files (default .)\n"
    "\n"
    "  --help               print this text and exit\n";

int Usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::optional<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Lockstep request/response exchange with a child `ucqnd --stdio`: write
// one line, read one line. The daemon answers strictly in order, so
// lockstep cannot deadlock on pipe buffers however large the stream.
struct ViaDaemonCounts {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t error = 0;
  std::uint64_t other = 0;
  std::uint64_t deltas = 0;
  std::uint64_t delta_errors = 0;
};

ucqn::JsonValue TupleToJsonArray(const ucqn::Tuple& tuple) {
  ucqn::JsonValue row = ucqn::JsonValue::Array();
  for (const ucqn::Term& term : tuple) {
    row.Append(term.IsNull() ? ucqn::JsonValue::Null()
                             : ucqn::JsonValue::String(term.name()));
  }
  return row;
}

// The workload's delta stream as protocol lines, grouped per (request
// index, relation) with deletes and inserts batched into one op.
std::map<std::uint64_t, std::vector<std::string>> DeltaLinesByRequest(
    const ucqn::WorkloadSpec& spec) {
  struct Batch {
    std::string relation;
    std::vector<ucqn::Tuple> inserts;
    std::vector<ucqn::Tuple> deletes;
  };
  std::map<std::uint64_t, std::vector<Batch>> grouped;
  for (const ucqn::WorkloadDeltaEvent& event : spec.deltas) {
    std::vector<Batch>& batches = grouped[event.at_request];
    Batch* batch = nullptr;
    for (Batch& candidate : batches) {
      if (candidate.relation == event.relation) {
        batch = &candidate;
        break;
      }
    }
    if (batch == nullptr) {
      batches.push_back(Batch{event.relation, {}, {}});
      batch = &batches.back();
    }
    (event.insert ? batch->inserts : batch->deletes).push_back(event.tuple);
  }
  std::map<std::uint64_t, std::vector<std::string>> lines;
  for (const auto& [at_request, batches] : grouped) {
    for (const Batch& batch : batches) {
      ucqn::JsonValue request = ucqn::JsonValue::Object();
      request.Set("op", ucqn::JsonValue::String("delta"));
      request.Set("id", ucqn::JsonValue::String("delta@" +
                                                std::to_string(at_request)));
      request.Set("relation", ucqn::JsonValue::String(batch.relation));
      if (!batch.inserts.empty()) {
        ucqn::JsonValue rows = ucqn::JsonValue::Array();
        for (const ucqn::Tuple& tuple : batch.inserts) {
          rows.Append(TupleToJsonArray(tuple));
        }
        request.Set("insert", std::move(rows));
      }
      if (!batch.deletes.empty()) {
        ucqn::JsonValue rows = ucqn::JsonValue::Array();
        for (const ucqn::Tuple& tuple : batch.deletes) {
          rows.Append(TupleToJsonArray(tuple));
        }
        request.Set("delete", std::move(rows));
      }
      lines[at_request].push_back(request.Dump());
    }
  }
  return lines;
}

int RunViaDaemon(const ucqn::WorkloadSpec& spec, const char* ucqnd_path,
                 const std::string& workdir, std::uint64_t max_requests,
                 const std::string& cost_model, bool fanout_feedback,
                 bool expect_all_ok) {
  const std::string schema_path = workdir + "/workload_schema.txt";
  const std::string facts_path = workdir + "/workload_facts.txt";
  if (!WriteFile(schema_path, spec.catalog.ToString()) ||
      !WriteFile(facts_path, spec.database.ToString())) {
    std::fprintf(stderr, "cannot write %s / %s\n", schema_path.c_str(),
                 facts_path.c_str());
    return 1;
  }

  int to_child[2];    // parent writes requests
  int from_child[2];  // parent reads responses
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<const char*> args = {ucqnd_path,          "--stdio",
                                     "--schema",          schema_path.c_str(),
                                     "--facts",           facts_path.c_str(),
                                     "--cost-model",      cost_model.c_str()};
    if (!fanout_feedback) args.push_back("--no-fanout-feedback");
    args.push_back(nullptr);
    execv(ucqnd_path, const_cast<char* const*>(args.data()));
    std::perror("execv");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  FILE* to = fdopen(to_child[1], "w");
  FILE* from = fdopen(from_child[0], "r");
  if (to == nullptr || from == nullptr) {
    std::perror("fdopen");
    return 1;
  }

  const std::vector<ucqn::ReplayRequest> sequence =
      ucqn::BuildRequestSequence(spec, max_requests);
  const std::map<std::uint64_t, std::vector<std::string>> delta_lines =
      DeltaLinesByRequest(spec);
  ViaDaemonCounts counts;
  char* line = nullptr;
  std::size_t line_capacity = 0;
  int exit_code = 0;
  // Lockstep helper shared by delta and query lines: one line out, one
  // response line back.
  auto exchange = [&](const std::string& request_line,
                      std::optional<ucqn::ServiceResponse>* response_out) {
    std::fprintf(to, "%s\n", request_line.c_str());
    std::fflush(to);
    if (getline(&line, &line_capacity, from) < 0) {
      std::fprintf(stderr, "daemon closed the pipe after %llu responses\n",
                   static_cast<unsigned long long>(counts.requests));
      return false;
    }
    std::string error;
    *response_out = ucqn::ParseServiceResponse(line, &error);
    if (!*response_out) {
      std::fprintf(stderr, "bad response line: %s\n", error.c_str());
      return false;
    }
    return true;
  };
  for (std::size_t r = 0; r < sequence.size(); ++r) {
    const auto batch_it = delta_lines.find(r);
    if (batch_it != delta_lines.end() && exit_code == 0) {
      for (const std::string& delta_line : batch_it->second) {
        std::optional<ucqn::ServiceResponse> delta_response;
        if (!exchange(delta_line, &delta_response)) {
          exit_code = 1;
          break;
        }
        ++counts.deltas;
        if (delta_response->status != ucqn::ServiceResponse::Status::kOk) {
          ++counts.delta_errors;
        }
      }
      if (exit_code != 0) break;
    }
    ucqn::JsonValue request = ucqn::JsonValue::Object();
    request.Set("op", ucqn::JsonValue::String("query"));
    request.Set("id", ucqn::JsonValue::String("r" + std::to_string(r)));
    request.Set("tenant", ucqn::JsonValue::String(
                              "t" + std::to_string(sequence[r].tenant)));
    request.Set("query", ucqn::JsonValue::String(
                             spec.queries[sequence[r].query_index]));
    std::optional<ucqn::ServiceResponse> response;
    if (!exchange(request.Dump(), &response)) {
      exit_code = 1;
      break;
    }
    ++counts.requests;
    switch (response->status) {
      case ucqn::ServiceResponse::Status::kOk:
        ++counts.ok;
        break;
      case ucqn::ServiceResponse::Status::kError:
        ++counts.error;
        break;
      default:
        ++counts.other;
        break;
    }
  }
  free(line);
  fclose(to);  // EOF drains the daemon
  fclose(from);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "ucqnd exited abnormally (status %d)\n", status);
    exit_code = 1;
  }
  std::printf(
      "via-daemon replay: %llu requests, %llu ok, %llu error, %llu other, "
      "%llu delta batches (%llu failed)\n",
      static_cast<unsigned long long>(counts.requests),
      static_cast<unsigned long long>(counts.ok),
      static_cast<unsigned long long>(counts.error),
      static_cast<unsigned long long>(counts.other),
      static_cast<unsigned long long>(counts.deltas),
      static_cast<unsigned long long>(counts.delta_errors));
  if (expect_all_ok &&
      (counts.ok != sequence.size() || counts.requests != sequence.size())) {
    std::fprintf(stderr, "--expect-all-ok: not every request came back ok\n");
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucqn;
  bool generate = false;
  const char* out_path = nullptr;
  const char* replay_path = nullptr;
  const char* via_daemon = nullptr;
  const char* report_json_path = nullptr;
  std::string workdir = ".";
  bool expect_all_ok = false;
  WorkloadGenOptions gen;
  WorkloadReplayOptions replay;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char*& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    // Strict numerics, same contract as ucqnd: the whole token must parse
    // and be in range, or the flag is named in a one-line diagnostic.
    auto next_u64 = [&](std::uint64_t& slot) {
      const char* flag = argv[i];
      const char* text = nullptr;
      if (!next(text)) {
        std::fprintf(stderr, "%s expects an integer value\n", flag);
        return false;
      }
      char* end = nullptr;
      errno = 0;
      const unsigned long long value = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE ||
          (text[0] == '-')) {
        std::fprintf(stderr, "%s expects a non-negative integer, got \"%s\"\n",
                     flag, text);
        return false;
      }
      slot = static_cast<std::uint64_t>(value);
      return true;
    };
    auto next_int = [&](int& slot, int lo) {
      std::uint64_t value = 0;
      const char* flag = argv[i];
      if (!next_u64(value) || value > INT_MAX ||
          static_cast<int>(value) < lo) {
        std::fprintf(stderr, "%s expects an integer >= %d\n", flag, lo);
        return false;
      }
      slot = static_cast<int>(value);
      return true;
    };
    auto next_size = [&](std::size_t& slot) {
      std::uint64_t value = 0;
      if (!next_u64(value)) return false;
      slot = static_cast<std::size_t>(value);
      return true;
    };
    auto next_double = [&](double& slot) {
      const char* flag = argv[i];
      const char* text = nullptr;
      if (!next(text)) {
        std::fprintf(stderr, "%s expects a number\n", flag);
        return false;
      }
      char* end = nullptr;
      errno = 0;
      const double value = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno == ERANGE ||
          !std::isfinite(value) || value < 0.0) {
        std::fprintf(stderr, "%s expects a non-negative number, got \"%s\"\n",
                     flag, text);
        return false;
      }
      slot = value;
      return true;
    };
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strcmp(argv[i], "--generate") == 0) {
      generate = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (!next(out_path)) return Usage();
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      if (!next(replay_path)) return Usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!next_u64(gen.seed)) return Usage();
    } else if (std::strcmp(argv[i], "--chain-length") == 0) {
      if (!next_int(gen.chain_length, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--enumerable") == 0) {
      if (!next_int(gen.enumerable_relations, 0)) return Usage();
    } else if (std::strcmp(argv[i], "--decoys") == 0) {
      if (!next_int(gen.decoy_relations, 0)) return Usage();
    } else if (std::strcmp(argv[i], "--domain-size") == 0) {
      if (!next_int(gen.domain_size, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      if (!next_int(gen.tuples_per_relation, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      if (!next_int(gen.num_queries, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--max-literals") == 0) {
      if (!next_int(gen.max_literals, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--negation-prob") == 0) {
      if (!next_double(gen.negation_prob)) return Usage();
    } else if (std::strcmp(argv[i], "--constant-prob") == 0) {
      if (!next_double(gen.constant_prob)) return Usage();
    } else if (std::strcmp(argv[i], "--union-prob") == 0) {
      if (!next_double(gen.union_prob)) return Usage();
    } else if (std::strcmp(argv[i], "--zipf-s") == 0) {
      if (!next_double(gen.zipf_s)) return Usage();
    } else if (std::strcmp(argv[i], "--update-rate") == 0) {
      if (!next_double(gen.update_rate)) return Usage();
    } else if (std::strcmp(argv[i], "--latency-us") == 0) {
      if (!next_u64(gen.latency_micros)) return Usage();
    } else if (std::strcmp(argv[i], "--latency-jitter-us") == 0) {
      if (!next_u64(gen.latency_jitter_micros)) return Usage();
    } else if (std::strcmp(argv[i], "--failure-prob") == 0) {
      if (!next_double(gen.failure_probability)) return Usage();
    } else if (std::strcmp(argv[i], "--slow-relations") == 0) {
      if (!next_int(gen.slow_relations, 0)) return Usage();
    } else if (std::strcmp(argv[i], "--flaky-relations") == 0) {
      if (!next_int(gen.flaky_relations, 0)) return Usage();
    } else if (std::strcmp(argv[i], "--flaky-prob") == 0) {
      if (!next_double(gen.flaky_failure_probability)) return Usage();
    } else if (std::strcmp(argv[i], "--spike-period-us") == 0) {
      if (!next_u64(gen.spike_period_micros)) return Usage();
    } else if (std::strcmp(argv[i], "--spike-duration-us") == 0) {
      if (!next_u64(gen.spike_duration_micros)) return Usage();
    } else if (std::strcmp(argv[i], "--spike-extra-us") == 0) {
      if (!next_u64(gen.spike_extra_micros)) return Usage();
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      if (!next_u64(gen.replay.requests)) return Usage();
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      if (!next_int(gen.replay.tenants, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--replay-seed") == 0) {
      if (!next_u64(gen.replay.seed)) return Usage();
    } else if (std::strcmp(argv[i], "--replay-zipf-s") == 0) {
      if (!next_double(gen.replay.zipf_s)) return Usage();
    } else if (std::strcmp(argv[i], "--cost-model") == 0) {
      const char* name = nullptr;
      if (!next(name)) return Usage();
      if (std::strcmp(name, "static") != 0 &&
          std::strcmp(name, "adaptive") != 0) {
        return Usage();
      }
      replay.cost_model = name;
    } else if (std::strcmp(argv[i], "--no-fanout-feedback") == 0) {
      replay.fanout_feedback = false;
    } else if (std::strcmp(argv[i], "--no-faults") == 0) {
      replay.inject_faults = false;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!next_int(replay.threads, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--windows") == 0) {
      if (!next_int(replay.windows, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--max-requests") == 0) {
      if (!next_u64(replay.max_requests)) return Usage();
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      if (!next_int(replay.retry_attempts, 1)) return Usage();
    } else if (std::strcmp(argv[i], "--parallelism") == 0) {
      if (!next_size(replay.parallelism)) return Usage();
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0) {
      if (!next_size(replay.pipeline_depth)) return Usage();
    } else if (std::strcmp(argv[i], "--disjunct-concurrency") == 0) {
      if (!next_size(replay.disjunct_concurrency)) return Usage();
    } else if (std::strcmp(argv[i], "--cache-ttl-ms") == 0) {
      std::uint64_t ms = 0;
      if (!next_u64(ms)) return Usage();
      replay.cache_ttl_micros = ms * 1000;
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      if (!next_size(replay.cache_budget_bytes)) return Usage();
    } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
      if (!next_size(replay.max_in_flight)) return Usage();
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      if (!next_size(replay.max_queued)) return Usage();
    } else if (std::strcmp(argv[i], "--tenant-max-concurrent") == 0) {
      if (!next_size(replay.tenant_max_concurrent)) return Usage();
    } else if (std::strcmp(argv[i], "--report-json") == 0) {
      if (!next(report_json_path)) return Usage();
    } else if (std::strcmp(argv[i], "--expect-all-ok") == 0) {
      expect_all_ok = true;
    } else if (std::strcmp(argv[i], "--via-daemon") == 0) {
      if (!next(via_daemon)) return Usage();
    } else if (std::strcmp(argv[i], "--workdir") == 0) {
      const char* dir = nullptr;
      if (!next(dir)) return Usage();
      workdir = dir;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  if (generate == (replay_path != nullptr)) {
    std::fprintf(stderr, "pick exactly one mode: --generate or --replay\n");
    return Usage();
  }

  if (generate) {
    if (out_path == nullptr) {
      std::fprintf(stderr, "--generate requires --out FILE\n");
      return Usage();
    }
    const WorkloadSpec spec = GenerateWorkload(gen);
    if (!WriteFile(out_path, SerializeWorkload(spec))) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::printf(
        "wrote %s: %zu relations, %zu query templates, %llu-request plan, "
        "%zu delta events\n",
        out_path, spec.catalog.Relations().size(), spec.queries.size(),
        static_cast<unsigned long long>(spec.replay.requests),
        spec.deltas.size());
    return 0;
  }

  std::optional<std::string> text = ReadFile(replay_path);
  if (!text) {
    std::fprintf(stderr, "cannot read %s\n", replay_path);
    return 1;
  }
  std::string error;
  std::optional<WorkloadSpec> spec = ParseWorkload(*text, &error);
  if (!spec) {
    std::fprintf(stderr, "workload error in %s: %s\n", replay_path,
                 error.c_str());
    return 1;
  }

  if (via_daemon != nullptr) {
    return RunViaDaemon(*spec, via_daemon, workdir, replay.max_requests,
                        replay.cost_model, replay.fanout_feedback,
                        expect_all_ok);
  }

  const WorkloadReplayReport report = ReplayWorkload(*spec, replay);
  if (!report.ok) {
    std::fprintf(stderr, "replay failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf(
      "replayed %llu requests (%s model%s): %llu ok, %llu error, %llu shed, "
      "%llu quota\n",
      static_cast<unsigned long long>(report.requests),
      replay.cost_model.c_str(),
      replay.cost_model == "adaptive"
          ? (replay.fanout_feedback ? ", fanout feedback" : ", no feedback")
          : "",
      static_cast<unsigned long long>(report.ok_count),
      static_cast<unsigned long long>(report.error_count),
      static_cast<unsigned long long>(report.shed_count),
      static_cast<unsigned long long>(report.quota_count));
  std::printf("sim wall %llu us, p50/p95/p99 %llu/%llu/%llu us, "
              "%.0f req/s real\n",
              static_cast<unsigned long long>(report.sim_wall_micros),
              static_cast<unsigned long long>(report.p50_micros),
              static_cast<unsigned long long>(report.p95_micros),
              static_cast<unsigned long long>(report.p99_micros),
              report.throughput_per_second);
  std::printf("physical calls %llu, cache %llu hit / %llu miss\n",
              static_cast<unsigned long long>(report.physical_calls),
              static_cast<unsigned long long>(report.cache_hits),
              static_cast<unsigned long long>(report.cache_misses));
  if (report.deltas_applied > 0 || report.delta_error_count > 0) {
    std::printf("delta batches %llu applied, %llu failed\n",
                static_cast<unsigned long long>(report.deltas_applied),
                static_cast<unsigned long long>(report.delta_error_count));
  }
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    std::printf("  window %zu: %llu requests, hit rate %.3f\n", w,
                static_cast<unsigned long long>(report.windows[w].requests),
                report.windows[w].hit_rate);
  }
  if (report_json_path != nullptr) {
    if (!WriteFile(report_json_path, report.ToJson() + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", report_json_path);
      return 1;
    }
  }
  if (expect_all_ok && report.ok_count != report.requests) {
    std::fprintf(stderr, "--expect-all-ok: not every request came back ok\n");
    return 1;
  }
  return 0;
}
