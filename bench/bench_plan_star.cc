// E2 — Section 4.1: PLAN* computes the underestimate/overestimate plan
// pair in quadratic time, independent of feasibility.
//
// Series: wall time of PlanStar() vs. total query size, swept two ways —
// by literals per disjunct (fixed 4 disjuncts) and by number of disjuncts
// (fixed 8 literals each). Counters report how much of the workload was
// answerable, so the "shape" (cheap compile-time approximation even for
// infeasible queries) is visible.

#include <benchmark/benchmark.h>

#include <random>

#include "feasibility/plan_star.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

UnionQuery MakeWorkload(int disjuncts, int literals, std::mt19937* rng,
                        Catalog* catalog_out) {
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 10;
  schema_options.input_slot_prob = 0.45;
  *catalog_out = RandomCatalog(rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = literals;
  options.num_variables = std::max(3, literals / 2);
  options.negation_prob = 0.25;
  options.head_arity = 1;
  return RandomUcq(rng, *catalog_out, options, disjuncts);
}

void BM_PlanStarByLiterals(benchmark::State& state) {
  std::mt19937 rng(11);
  Catalog catalog;
  UnionQuery q = MakeWorkload(4, static_cast<int>(state.range(0)), &rng,
                              &catalog);
  double dismissed = 0;
  for (auto _ : state) {
    PlanStarResult plans = PlanStar(q, catalog);
    dismissed = static_cast<double>(q.size() - plans.under.size());
    benchmark::DoNotOptimize(plans);
  }
  state.counters["literals_per_disjunct"] =
      static_cast<double>(state.range(0));
  state.counters["disjuncts_dismissed_from_Qu"] = dismissed;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanStarByLiterals)
    ->RangeMultiplier(2)
    ->Range(2, 256)
    ->Complexity();

void BM_PlanStarByDisjuncts(benchmark::State& state) {
  std::mt19937 rng(13);
  Catalog catalog;
  UnionQuery q = MakeWorkload(static_cast<int>(state.range(0)), 8, &rng,
                              &catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanStar(q, catalog));
  }
  state.counters["disjuncts"] = static_cast<double>(state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanStarByDisjuncts)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity();

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
