// E1 — Proposition 2 / Corollary 3: algorithm ANSWERABLE computes ans(Q)
// (and hence decides orderability) in quadratic time.
//
// Series: wall time of Answerable() vs. number of body literals, for chain,
// star, and random join shapes. The paper's claim fixes the *shape*: time
// grows ~quadratically in the literal count (the repeat/for double loop of
// Fig. 1), far from the Π₂ᴾ cliff of the containment test.

#include <benchmark/benchmark.h>

#include <random>

#include "feasibility/answerable.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

ConjunctiveQuery MakeQuery(QueryShape shape, int literals, std::mt19937* rng,
                           Catalog* catalog_out) {
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 8;
  schema_options.min_arity = 2;
  schema_options.max_arity = 3;
  schema_options.input_slot_prob = 0.35;
  *catalog_out = RandomCatalog(rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = literals;
  options.num_variables = literals + 1;  // chains need a fresh var per hop
  options.negation_prob = 0.2;
  options.constant_prob = 0.0;
  options.head_arity = 1;
  options.shape = shape;
  return RandomCq(rng, *catalog_out, options);
}

void BM_Answerable(benchmark::State& state, QueryShape shape) {
  std::mt19937 rng(42);
  Catalog catalog;
  ConjunctiveQuery q =
      MakeQuery(shape, static_cast<int>(state.range(0)), &rng, &catalog);
  std::size_t answerable_size = 0;
  for (auto _ : state) {
    AnswerablePart part = Answerable(q, catalog);
    answerable_size =
        part.IsFalse() ? 0 : part.answerable->body().size();
    benchmark::DoNotOptimize(part);
  }
  state.counters["literals"] = static_cast<double>(state.range(0));
  state.counters["answerable"] = static_cast<double>(answerable_size);
  state.SetComplexityN(state.range(0));
}

void BM_AnswerableChain(benchmark::State& state) {
  BM_Answerable(state, QueryShape::kChain);
}
void BM_AnswerableStar(benchmark::State& state) {
  BM_Answerable(state, QueryShape::kStar);
}
void BM_AnswerableRandom(benchmark::State& state) {
  BM_Answerable(state, QueryShape::kRandom);
}

BENCHMARK(BM_AnswerableChain)->RangeMultiplier(2)->Range(4, 512)->Complexity();
BENCHMARK(BM_AnswerableStar)->RangeMultiplier(2)->Range(4, 512)->Complexity();
BENCHMARK(BM_AnswerableRandom)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Complexity();

// Orderability check (Corollary 3) rides on the same machinery.
void BM_IsOrderable(benchmark::State& state) {
  std::mt19937 rng(7);
  Catalog catalog;
  ConjunctiveQuery q = MakeQuery(QueryShape::kChain,
                                 static_cast<int>(state.range(0)), &rng,
                                 &catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsOrderable(q, catalog));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IsOrderable)->RangeMultiplier(4)->Range(4, 256)->Complexity();

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
