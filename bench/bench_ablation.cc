// E10 — ablation of a design choice called out in DESIGN.md: the executor
// greedily calls the usable access pattern with the MOST input slots
// (footnote 4's "bound is easier" exploited for selectivity). The ablation
// flips the preference to the fewest-input pattern (fetch broadly, filter
// client-side) and measures source calls, tuples transferred, and wall
// time on the same plans and data. Answers are identical by construction;
// the cost is not.

#include <benchmark/benchmark.h>

#include <random>

#include "ast/parser.h"
#include "eval/executor.h"
#include "gen/random_instance.h"

namespace ucqn {
namespace {

struct Fixture {
  Catalog catalog;
  ConjunctiveQuery plan;
  Database db;
};

// A join pipeline where every relation offers both a keyed pattern and a
// full scan; the data is a random graph over `domain` constants.
Fixture MakeFixture(int domain) {
  Fixture f;
  f.catalog = Catalog::MustParse(R"(
    relation Seed/1: o
    relation E1/2: io oo
    relation E2/2: io oo
    relation E3/2: io oo
  )");
  f.plan = MustParseRule(
      "Q(a, d) :- Seed(a), E1(a, b), E2(b, c), E3(c, d).");
  std::mt19937 rng(99);
  RandomInstanceOptions options;
  options.domain_size = domain;
  options.tuples_per_relation = 4 * domain;
  f.db = RandomDatabase(&rng, f.catalog, options);
  // Keep the seed set small: a handful of start points.
  Database db2;
  int seeds = 0;
  for (const Term& t : f.db.ActiveDomain()) {
    if (seeds++ >= 4) break;
    db2.Insert("Seed", {t});
  }
  for (const std::string& name : f.db.RelationNames()) {
    if (name == "Seed") continue;
    for (const Tuple& tuple : *f.db.Find(name)) db2.Insert(name, tuple);
  }
  f.db = std::move(db2);
  return f;
}

void BM_ExecutorPatternChoice(benchmark::State& state) {
  const bool most_inputs = state.range(1) != 0;
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  DatabaseSource source(&f.db, &f.catalog);
  ExecutionOptions options;
  options.pattern_preference = most_inputs
                                   ? PatternPreference::kMostInputs
                                   : PatternPreference::kFewestInputs;
  std::size_t answers = 0;
  for (auto _ : state) {
    source.ResetStats();
    ExecutionResult result = Execute(f.plan, f.catalog, &source, options);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    answers = result.tuples.size();
  }
  state.counters["domain"] = static_cast<double>(state.range(0));
  state.counters["most_inputs"] = most_inputs ? 1.0 : 0.0;
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["source_calls"] = static_cast<double>(source.stats().calls);
  state.counters["tuples_transferred"] =
      static_cast<double>(source.stats().tuples_returned);
}
BENCHMARK(BM_ExecutorPatternChoice)
    ->ArgsProduct({{8, 16, 32, 64}, {0, 1}});

// Sanity pin: both preferences compute identical answers.
void BM_PatternChoiceAgreement(benchmark::State& state) {
  Fixture f = MakeFixture(16);
  DatabaseSource source(&f.db, &f.catalog);
  bool agree = true;
  for (auto _ : state) {
    ExecutionOptions most, fewest;
    most.pattern_preference = PatternPreference::kMostInputs;
    fewest.pattern_preference = PatternPreference::kFewestInputs;
    ExecutionResult a = Execute(f.plan, f.catalog, &source, most);
    ExecutionResult b = Execute(f.plan, f.catalog, &source, fewest);
    agree = a.ok && b.ok && a.tuples == b.tuples;
    if (!agree) {
      state.SkipWithError("pattern preferences disagreed on answers");
      return;
    }
  }
  state.counters["agree"] = agree ? 1.0 : 0.0;
}
BENCHMARK(BM_PatternChoiceAgreement);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
