// E8 — Theorem 18 / Proposition 20: the reductions from containment to
// feasibility are polynomial-time and answer-preserving. The reduction
// itself must be cheap (linear-size output); the *resulting* feasibility
// instance carries the full Π₂ᴾ weight of the embedded containment
// question — which is the content of the theorem.
//
// Series:
//   * BM_ReductionConstruction: wall time and output size of building Q'
//     from (P, Q) as the input grows — linear shape.
//   * BM_ReductionEndToEnd: FEASIBLE on the reduced instance vs. direct
//     CONT on (P, Q) for the SubsetExplosion family — both explode the
//     same way, demonstrating the equivalence empirically.

#include <benchmark/benchmark.h>

#include "containment/ucqn_containment.h"
#include "feasibility/feasible.h"
#include "feasibility/reduction.h"
#include "gen/hard_instances.h"

namespace ucqn {
namespace {

std::size_t QuerySize(const UnionQuery& q) {
  std::size_t n = 0;
  for (const ConjunctiveQuery& d : q.disjuncts()) n += 1 + d.body().size();
  return n;
}

void BM_ReductionConstruction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ContainmentInstance inst = SubsetExplosionInstance(k, /*contained=*/false);
  UnionQuery P(inst.P);
  std::size_t out_size = 0;
  for (auto _ : state) {
    FeasibilityInstance reduced = ReduceContainmentToFeasibility(P, inst.Q);
    out_size = QuerySize(reduced.query);
    benchmark::DoNotOptimize(reduced);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["input_size"] =
      static_cast<double>(QuerySize(P) + QuerySize(inst.Q));
  state.counters["output_size"] = static_cast<double>(out_size);
  state.SetComplexityN(k);
}
BENCHMARK(BM_ReductionConstruction)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity();

void BM_DirectContainment(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ContainmentInstance inst = SubsetExplosionInstance(k, /*contained=*/false);
  for (auto _ : state) {
    ContainmentStats stats;
    bool contained = Contained(inst.P, inst.Q, &stats);
    if (contained != inst.expected) {
      state.SkipWithError("containment verdict mismatch");
      return;
    }
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_DirectContainment)->DenseRange(2, 10, 2);

void BM_ReducedFeasibility(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  HardFeasibilityInstance inst = HardFeasibility(k, /*feasible=*/false);
  for (auto _ : state) {
    FeasibleResult result = Feasible(inst.query, inst.catalog);
    if (result.feasible != inst.feasible) {
      state.SkipWithError("feasibility verdict mismatch");
      return;
    }
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_ReducedFeasibility)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
