// E3 — Theorems 12/13, Proposition 7, Corollary 19: CONT(CQ¬/UCQ¬) is
// Π₂ᴾ-complete; the recursion explodes with the number of negated
// literals, while the positive (CQ) fragment stays cheap.
//
// Series:
//   * SubsetExplosion (answer NO): nodes and time vs. k — exponential
//     (every subset of the k adjoinable atoms is visited).
//   * SubsetExplosion (answer YES): same family with a closing disjunct —
//     constant work; the worst case bites on negative answers.
//   * Chain (answer YES): recursion depth k, polynomial work.
//   * Positive-only homomorphism baseline: CQ containment at the same
//     query sizes for contrast.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "containment/ucqn_containment.h"
#include "gen/hard_instances.h"

namespace ucqn {
namespace {

void RunInstance(benchmark::State& state, const ContainmentInstance& inst) {
  ContainmentStats last;
  for (auto _ : state) {
    ContainmentStats stats;
    bool result = Contained(inst.P, inst.Q, &stats);
    if (result != inst.expected) {
      state.SkipWithError("containment verdict mismatch");
      return;
    }
    last = stats;
  }
  state.counters["k"] = static_cast<double>(state.range(0));
  state.counters["nodes"] = static_cast<double>(last.nodes_expanded);
  state.counters["max_depth"] = static_cast<double>(last.max_depth);
  state.counters["cache_hits"] = static_cast<double>(last.cache_hits);
  state.counters["mappings"] =
      static_cast<double>(last.homomorphism.mappings_found);
}

void BM_SubsetExplosionNo(benchmark::State& state) {
  RunInstance(state,
              SubsetExplosionInstance(static_cast<int>(state.range(0)),
                                      /*contained=*/false));
}
BENCHMARK(BM_SubsetExplosionNo)->DenseRange(2, 13, 1);

void BM_SubsetExplosionYes(benchmark::State& state) {
  RunInstance(state,
              SubsetExplosionInstance(static_cast<int>(state.range(0)),
                                      /*contained=*/true));
}
BENCHMARK(BM_SubsetExplosionYes)->DenseRange(2, 13, 1);

void BM_ChainYes(benchmark::State& state) {
  RunInstance(state, ChainInstance(static_cast<int>(state.range(0)),
                                   /*contained=*/true));
}
BENCHMARK(BM_ChainYes)->DenseRange(2, 13, 1);

// Baseline: containment of same-size *positive* queries is a single
// homomorphism search — the uniform algorithm's CQ fast path.
void BM_PositiveBaseline(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // P(x) :- R(x), N1(x), ..., Nk(x);  Q(x) :- R(x), N1(x).
  std::string p_text = "Q(x) :- R(x)";
  for (int i = 1; i <= k; ++i) {
    p_text += ", N" + std::to_string(i) + "(x)";
  }
  p_text += ".";
  ConjunctiveQuery P = MustParseRule(p_text);
  UnionQuery Q = MustParseUnionQuery("Q(x) :- R(x), N1(x).");
  for (auto _ : state) {
    ContainmentStats stats;
    benchmark::DoNotOptimize(Contained(P, Q, &stats));
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_PositiveBaseline)->DenseRange(2, 13, 1);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
