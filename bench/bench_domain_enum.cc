// E7 — Example 8 / [DL97]: domain-enumeration views improve the
// underestimate of infeasible queries, at the price of extra source calls.
//
// The workload is the running example's shape — Q1's B(x,y) is
// unanswerable (B^ii) — on random instances of growing domain size.
// Counters report the recall of the plain underestimate vs. the improved
// one (relative to the oracle answer) and the source-call cost, exhibiting
// the paper's trade-off: recall goes to 1.0 while calls grow with the
// enumerated domain.

#include <benchmark/benchmark.h>

#include <random>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/domain_enum.h"
#include "eval/executor.h"
#include "eval/oracle.h"
#include "gen/random_instance.h"

namespace ucqn {
namespace {

void BM_DomainEnumRecall(benchmark::State& state) {
  Catalog catalog = Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
  UnionQuery query = MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
  RandomInstanceOptions instance_options;
  instance_options.domain_size = static_cast<int>(state.range(0));
  instance_options.tuples_per_relation = 2 * instance_options.domain_size;

  std::mt19937 rng(31337);
  double plain_recall_sum = 0, improved_recall_sum = 0;
  double calls_sum = 0, domain_sum = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db = RandomDatabase(&rng, catalog, instance_options);
    std::set<Tuple> truth = OracleEvaluate(query, db);
    DatabaseSource source(&db, &catalog);
    PlanStarResult plans = PlanStar(query, catalog);
    ExecutionResult plain = Execute(plans.under, catalog, &source);
    state.ResumeTiming();

    ImprovedUnderestimate improved =
        ImproveUnderestimate(query, catalog, &source);

    state.PauseTiming();
    if (!truth.empty()) {
      plain_recall_sum += static_cast<double>(plain.tuples.size()) /
                          static_cast<double>(truth.size());
      improved_recall_sum += static_cast<double>(improved.tuples.size()) /
                             static_cast<double>(truth.size());
      ++runs;
    }
    calls_sum += static_cast<double>(improved.domain.source_calls +
                                     improved.evaluation_calls);
    domain_sum += static_cast<double>(improved.domain.domain.size());
    state.ResumeTiming();
  }
  if (runs > 0) {
    state.counters["recall_plain"] =
        plain_recall_sum / static_cast<double>(runs);
    state.counters["recall_improved"] =
        improved_recall_sum / static_cast<double>(runs);
  }
  state.counters["domain_size_cfg"] = static_cast<double>(state.range(0));
  state.counters["mean_extra_calls"] =
      calls_sum / static_cast<double>(state.iterations());
  state.counters["mean_dom_values"] =
      domain_sum / static_cast<double>(state.iterations());
}
BENCHMARK(BM_DomainEnumRecall)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// The raw fixpoint cost: domain enumeration over a chain-reachable source
// (F^io), where each round's harvest feeds the next round's calls.
void BM_EnumerateDomainFixpoint(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  Catalog catalog = Catalog::MustParse("F/2: io\n");
  Database db;
  for (int i = 0; i < chain; ++i) {
    db.Insert("F", {Term::Constant("c" + std::to_string(i)),
                    Term::Constant("c" + std::to_string(i + 1))});
  }
  DatabaseSource source(&db, &catalog);
  std::uint64_t calls = 0;
  std::size_t domain_size = 0;
  for (auto _ : state) {
    DomainEnumResult result =
        EnumerateDomain(catalog, &source, {Term::Constant("c0")});
    calls = result.source_calls;
    domain_size = result.domain.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["chain_length"] = static_cast<double>(chain);
  state.counters["fixpoint_calls"] = static_cast<double>(calls);
  state.counters["dom_values"] = static_cast<double>(domain_size);
}
BENCHMARK(BM_EnumerateDomainFixpoint)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
