// E4 — Corollaries 17/19 and Section 4.1: FEASIBLE = PLAN* + containment,
// and the PLAN* shortcuts (plans-equal, null-in-overestimate) decide most
// practical queries without ever paying the Π₂ᴾ containment price.
//
// Two series:
//   * BM_FeasibleMix_<class>: FEASIBLE over random workloads of each class
//     (CQ, UCQ, CQ¬, UCQ¬). Counters report the fraction decided by each
//     path and the feasible rate — the compile-time-approximation story.
//   * BM_FeasibleHard: the reduction-built worst case where the
//     containment path must run, with exponential node counts (contrast).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "feasibility/feasible.h"
#include "gen/hard_instances.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

struct Workload {
  Catalog catalog;
  std::vector<UnionQuery> queries;
};

Workload MakeWorkload(int disjuncts, double negation_prob, int count,
                      unsigned seed) {
  std::mt19937 rng(seed);
  Workload w;
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 8;
  schema_options.input_slot_prob = 0.45;
  w.catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 5;
  options.num_variables = 4;
  options.negation_prob = negation_prob;
  options.head_arity = 1;
  for (int i = 0; i < count; ++i) {
    w.queries.push_back(RandomUcq(&rng, w.catalog, options, disjuncts));
  }
  return w;
}

void RunMix(benchmark::State& state, const Workload& w) {
  std::uint64_t plans_equal = 0, null_path = 0, containment = 0, feasible = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    for (const UnionQuery& q : w.queries) {
      FeasibleResult result = Feasible(q, w.catalog);
      switch (result.path) {
        case FeasibleDecisionPath::kPlansEqual:
          ++plans_equal;
          break;
        case FeasibleDecisionPath::kNullInOverestimate:
          ++null_path;
          break;
        case FeasibleDecisionPath::kContainment:
          ++containment;
          break;
      }
      if (result.feasible) ++feasible;
      ++iterations;
    }
  }
  const double n = static_cast<double>(iterations);
  state.counters["frac_plans_equal"] = static_cast<double>(plans_equal) / n;
  state.counters["frac_null_shortcut"] = static_cast<double>(null_path) / n;
  state.counters["frac_containment"] = static_cast<double>(containment) / n;
  state.counters["frac_feasible"] = static_cast<double>(feasible) / n;
  state.SetItemsProcessed(static_cast<std::int64_t>(iterations));
}

void BM_FeasibleMix_CQ(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(1, 0.0, 64, 101));
  RunMix(state, *w);
}
void BM_FeasibleMix_UCQ(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(3, 0.0, 64, 102));
  RunMix(state, *w);
}
void BM_FeasibleMix_CQN(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(1, 0.35, 64, 103));
  RunMix(state, *w);
}
void BM_FeasibleMix_UCQN(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(3, 0.35, 64, 104));
  RunMix(state, *w);
}
BENCHMARK(BM_FeasibleMix_CQ);
BENCHMARK(BM_FeasibleMix_UCQ);
BENCHMARK(BM_FeasibleMix_CQN);
BENCHMARK(BM_FeasibleMix_UCQN);

// The engineered worst case: FEASIBLE must take the containment path and
// the infeasible variant explodes exponentially in k.
void BM_FeasibleHard(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool feasible = state.range(1) != 0;
  HardFeasibilityInstance inst = HardFeasibility(k, feasible);
  ContainmentStats last;
  for (auto _ : state) {
    FeasibleResult result = Feasible(inst.query, inst.catalog);
    if (result.feasible != inst.feasible) {
      state.SkipWithError("feasibility verdict mismatch");
      return;
    }
    last = result.containment_stats;
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["nodes"] = static_cast<double>(last.nodes_expanded);
}
BENCHMARK(BM_FeasibleHard)
    ->ArgsProduct({{2, 4, 6, 8, 10, 12}, {0, 1}});

// FEASIBLE cost as the query grows, per class: the typical case stays
// low-polynomial because the shortcuts dominate; only the containment
// fraction carries the hard work.
void BM_FeasibleBySize(benchmark::State& state) {
  const int literals = static_cast<int>(state.range(0));
  const bool with_negation = state.range(1) != 0;
  std::mt19937 rng(static_cast<unsigned>(literals) * 7 + 3);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 8;
  schema_options.input_slot_prob = 0.45;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = literals;
  options.num_variables = std::max(3, literals / 2);
  options.negation_prob = with_negation ? 0.3 : 0.0;
  options.head_arity = 1;
  std::vector<UnionQuery> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(RandomUcq(&rng, catalog, options, 2));
  }
  std::uint64_t feasible = 0, total = 0;
  for (auto _ : state) {
    for (const UnionQuery& q : queries) {
      if (Feasible(q, catalog).feasible) ++feasible;
      ++total;
    }
  }
  state.counters["literals"] = static_cast<double>(literals);
  state.counters["with_negation"] = with_negation ? 1.0 : 0.0;
  state.counters["frac_feasible"] =
      static_cast<double>(feasible) / static_cast<double>(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_FeasibleBySize)->ArgsProduct({{2, 4, 8, 16, 32}, {0, 1}});

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
