// E11 — minimization study. For CQ/UCQ, minimization is the engine behind
// the CQstable/UCQstable baselines (Section 5.3/5.4). For CQ¬/UCQ¬ this
// library ships an equivalence-preserving minimizer built on the
// Theorem 12/13 containment test; each removal attempt costs a worst-case
// Π₂ᴾ check, so minimization is *not* a shortcut around FEASIBLE — this
// bench quantifies that claim and measures how often the cheap
// "minimize-then-orderable" heuristic agrees with the exact FEASIBLE
// verdict on random UCQ¬ workloads (it is sound in one direction only:
// orderable minimal form ⇒ feasible).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "containment/minimize.h"
#include "feasibility/answerable.h"
#include "feasibility/feasible.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

void BM_MinimizeCq(benchmark::State& state) {
  std::mt19937 rng(17);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = static_cast<int>(state.range(0));
  options.num_variables = 3;  // few variables => many redundant literals
  options.head_arity = 1;
  ConjunctiveQuery q = RandomCq(&rng, catalog, options);
  std::size_t core_size = 0;
  for (auto _ : state) {
    ConjunctiveQuery m = MinimizeCq(q);
    core_size = m.body().size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["literals"] = static_cast<double>(state.range(0));
  state.counters["core_size"] = static_cast<double>(core_size);
}
BENCHMARK(BM_MinimizeCq)->RangeMultiplier(2)->Range(2, 32);

void BM_MinimizeCqn(benchmark::State& state) {
  std::mt19937 rng(23);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = static_cast<int>(state.range(0));
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  ConjunctiveQuery q = RandomCq(&rng, catalog, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeCqn(q));
  }
  state.counters["literals"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MinimizeCqn)->RangeMultiplier(2)->Range(2, 16);

// How often does "union-minimize, then check orderability" agree with the
// exact FEASIBLE verdict on UCQ¬? Sound when it says feasible; the
// counters report the miss rate (heuristic says infeasible, FEASIBLE says
// feasible) — the price of skipping the containment machinery.
void BM_MinimizeThenOrderableHeuristic(benchmark::State& state) {
  std::mt19937 rng(29);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.6;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  std::vector<UnionQuery> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(RandomUcq(&rng, catalog, options, 2));
  }
  std::uint64_t agree = 0, heuristic_feasible = 0, exact_feasible = 0,
                unsound = 0, total = 0;
  for (auto _ : state) {
    for (const UnionQuery& q : queries) {
      UnionQuery minimal = MinimizeUcqn(q);
      const bool heuristic = IsOrderable(minimal, catalog);
      const bool exact = IsFeasible(q, catalog);
      if (heuristic == exact) ++agree;
      if (heuristic && !exact) ++unsound;  // must stay zero
      if (heuristic) ++heuristic_feasible;
      if (exact) ++exact_feasible;
      ++total;
    }
  }
  const double n = static_cast<double>(total);
  state.counters["frac_agree"] = static_cast<double>(agree) / n;
  state.counters["frac_heuristic_feasible"] =
      static_cast<double>(heuristic_feasible) / n;
  state.counters["frac_exact_feasible"] =
      static_cast<double>(exact_feasible) / n;
  state.counters["unsound_claims"] = static_cast<double>(unsound);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_MinimizeThenOrderableHeuristic);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
