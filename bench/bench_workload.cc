// Workload-scale replay bench (EXPERIMENTS.md E20): stream a generated
// Zipf-skewed UCQ¬ workload through the in-process QueryDaemon on the
// simulated clock, three ways — static cost model, adaptive without
// fanout feedback (the 1000-tuple fallback), adaptive with observed
// fanouts — and record throughput, simulated percentiles, cache-hit
// curves, and the A/B in the `workload` block of BENCH_runtime.json.
//
// The three runs must agree to the bit on answers (the order-independent
// replay digest): the cost model moves calls around, never answers.
//
// The full run streams kDefaultRequests requests per configuration; the
// tier-1 smoke caps it with UCQN_BENCH_WORKLOAD_REQUESTS so the bench
// cannot rot between perf-focused PRs without costing minutes of ctest.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/delta.h"
#include "gen/workload.h"
#include "gen/workload_replay.h"
#include "runtime/clock.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

constexpr std::uint64_t kDefaultRequests = 100000;

std::uint64_t RequestBudget() {
  const char* env = std::getenv("UCQN_BENCH_WORKLOAD_REQUESTS");
  if (env == nullptr || *env == '\0') return kDefaultRequests;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || value == 0) return kDefaultRequests;
  return static_cast<std::uint64_t>(value);
}

// The bench workload: an adversarial chain where even links can be
// scanned or probed and small true cardinalities mean the 1000-tuple
// fallback overprices every scan, so the fallback planners probe where
// one scan would do. Uniform service latency keeps the comparison
// about call counts. No failures — every request must come back ok
// and the digests must match across configurations.
WorkloadGenOptions BenchGenOptions(std::uint64_t requests) {
  WorkloadGenOptions options;
  options.seed = 20;
  options.chain_length = 6;
  options.enumerable_relations = 2;
  options.decoy_relations = 4;
  options.domain_size = 16;
  options.tuples_per_relation = 32;
  options.num_queries = 400;
  options.max_literals = 4;
  options.negation_prob = 0.25;
  options.constant_prob = 0.6;
  options.union_prob = 0.2;
  options.zipf_s = 1.1;
  options.latency_micros = 200;
  options.failure_probability = 0.0;
  options.slow_relations = 0;
  options.replay.requests = requests;
  options.replay.zipf_s = 1.0;
  options.replay.tenants = 4;
  return options;
}

WorkloadSpec BenchWorkload(std::uint64_t requests) {
  return GenerateWorkload(BenchGenOptions(requests));
}

struct ConfigRun {
  const char* label;
  WorkloadReplayReport report;
};

ConfigRun RunConfig(const WorkloadSpec& spec, const char* label,
                    const std::string& cost_model, bool fanout_feedback) {
  WorkloadReplayOptions options;
  options.cost_model = cost_model;
  options.fanout_feedback = fanout_feedback;
  // A short simulated TTL keeps the cache honest at workload scale:
  // popular templates still hit, but plan quality keeps paying rent.
  options.cache_ttl_micros = 1000;
  ConfigRun run{label, ReplayWorkload(spec, options)};
  if (!run.report.ok) {
    std::fprintf(stderr, "bench_workload: %s replay failed: %s\n", label,
                 run.report.error.c_str());
  }
  return run;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// BENCH_runtime.json is owned by bench_runtime; this bench only merges
// (or replaces) its own blocks, which are canonically last in the
// object (`workload` then `delta`), so the existing suffix can be
// truncated and re-appended. main() always rewrites them in that order,
// so truncating at `workload` taking the old `delta` block with it is
// fine — the next merge puts a fresh one back.
void MergeBlock(const char* path, const char* key, const std::string& block) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  const std::string tag = std::string(", \"") + key + "\":";
  const std::string::size_type tagged = existing.find(tag);
  if (tagged != std::string::npos) {
    existing.erase(tagged);
  } else {
    while (!existing.empty() &&
           (existing.back() == '\n' || existing.back() == ' ')) {
      existing.pop_back();
    }
    if (!existing.empty() && existing.back() == '}') existing.pop_back();
  }
  if (existing.empty()) existing = "{\"bench\": \"ucqn\"";
  const std::string merged =
      existing + ", \"" + key + "\": " + block + "}\n";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_workload: cannot write %s\n", path);
    return;
  }
  std::fputs(merged.c_str(), out);
  std::fclose(out);
  std::printf("merged %s block into %s\n", key, path);
}

void WriteWorkloadBlock(const char* path) {
  const std::uint64_t requests = RequestBudget();
  const WorkloadSpec spec = BenchWorkload(requests);
  std::vector<ConfigRun> runs;
  runs.push_back(RunConfig(spec, "static", "static", false));
  runs.push_back(RunConfig(spec, "adaptive_fallback", "adaptive", false));
  runs.push_back(RunConfig(spec, "adaptive_fanout", "adaptive", true));
  for (const ConfigRun& run : runs) {
    if (!run.report.ok) return;
  }
  const std::uint64_t baseline_hash = runs[0].report.answers_hash;

  std::string block = "{";
  block += "\"requests\": " + std::to_string(requests);
  block += ", \"templates\": " + std::to_string(spec.queries.size());
  block += ", \"zipf_s\": " + FormatDouble(spec.replay.zipf_s);
  block += ", \"tenants\": " + std::to_string(spec.replay.tenants);
  block += ", \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const WorkloadReplayReport& report = runs[i].report;
    if (i > 0) block += ", ";
    block += "{\"config\": \"" + std::string(runs[i].label) + "\"";
    block += ", \"ok_count\": " + std::to_string(report.ok_count);
    block += ", \"shed_count\": " + std::to_string(report.shed_count);
    block += ", \"quota_count\": " + std::to_string(report.quota_count);
    block += ", \"sim_wall_us\": " + std::to_string(report.sim_wall_micros);
    block += ", \"physical_calls\": " + std::to_string(report.physical_calls);
    block += ", \"cache_hits\": " + std::to_string(report.cache_hits);
    block += ", \"cache_misses\": " + std::to_string(report.cache_misses);
    block += ", \"p50_us\": " + std::to_string(report.p50_micros);
    block += ", \"p95_us\": " + std::to_string(report.p95_micros);
    block += ", \"p99_us\": " + std::to_string(report.p99_micros);
    block += ", \"throughput_per_sec\": " +
             FormatDouble(report.throughput_per_second);
    block += ", \"answers_match\": ";
    block += report.answers_hash == baseline_hash ? "true" : "false";
    block += ", \"hit_curve\": [";
    for (std::size_t w = 0; w < report.windows.size(); ++w) {
      if (w > 0) block += ", ";
      block += FormatDouble(report.windows[w].hit_rate);
    }
    block += "]}";
  }
  block += "]}";
  MergeBlock(path, "workload", block);

  for (const ConfigRun& run : runs) {
    std::printf(
        "%-17s sim_wall %llu us, %llu calls, p99 %llu us, answers %s\n",
        run.label,
        static_cast<unsigned long long>(run.report.sim_wall_micros),
        static_cast<unsigned long long>(run.report.physical_calls),
        static_cast<unsigned long long>(run.report.p99_micros),
        run.report.answers_hash == baseline_hash ? "match" : "MISMATCH");
  }
}

// The delta A/B (docs/RUNTIME.md §12): a ~1%-update stream over the
// same adversarial instance, answered two ways for a pool of standing
// queries. The `maintain` arm pushes each batch through
// StandingQuery::ApplyDeltas (unaffected disjuncts never re-run); the
// `rerun` arm is invalidate-and-rerun — after each batch it re-answers
// every standing query whose relations the batch touched from scratch.
// Both arms charge the same per-call service latency to a simulated
// clock. The acceptance bar: the maintain arm spends >= 5x fewer
// physical calls and less simulated wall-clock, with the maintained
// brackets byte-identical to the rerun arm's after every batch.
void WriteDeltaBlock(const char* path) {
  // The ratio story saturates long before 100k requests; cap the stream
  // so the full bench stays minutes, not hours. The smoke's env cap
  // still applies below this.
  const std::uint64_t requests =
      std::min<std::uint64_t>(RequestBudget(), 20000);
  WorkloadGenOptions gen = BenchGenOptions(requests);
  gen.update_rate = 0.01;
  const WorkloadSpec spec = GenerateWorkload(gen);
  if (spec.deltas.empty()) {
    std::fprintf(stderr, "bench_workload: delta arm has no update events\n");
    return;
  }

  // The standing pool: the first few templates that parse.
  std::vector<UnionQuery> queries;
  for (const std::string& text : spec.queries) {
    std::string error;
    std::optional<UnionQuery> query = ParseUnionQuery(text, &error);
    if (query.has_value()) queries.push_back(std::move(*query));
    if (queries.size() == 8) break;
  }
  if (queries.empty()) {
    std::fprintf(stderr, "bench_workload: no parsable templates\n");
    return;
  }

  // Group the event stream into per-request-index batches, one
  // RelationDelta per touched relation — the same grouping the workload
  // replay and the daemon's delta op use.
  std::map<std::uint64_t, std::vector<RelationDelta>> batches;
  for (const WorkloadDeltaEvent& event : spec.deltas) {
    std::vector<RelationDelta>& groups = batches[event.at_request];
    RelationDelta* group = nullptr;
    for (RelationDelta& candidate : groups) {
      if (candidate.relation == event.relation) group = &candidate;
    }
    if (group == nullptr) {
      groups.emplace_back();
      groups.back().relation = event.relation;
      group = &groups.back();
    }
    (event.insert ? group->inserts : group->deletes).push_back(event.tuple);
  }

  // Two identical instances, clocks, and latency-charging transports.
  Database db_maintain = spec.database;
  Database db_rerun = spec.database;
  SimulatedClock clock_maintain;
  SimulatedClock clock_rerun;
  DatabaseSource inner_maintain(&db_maintain, &spec.catalog);
  DatabaseSource inner_rerun(&db_rerun, &spec.catalog);
  FaultInjectingSource source_maintain(&inner_maintain, spec.faults,
                                       &clock_maintain);
  FaultInjectingSource source_rerun(&inner_rerun, spec.faults, &clock_rerun);

  std::string error;
  std::vector<std::unique_ptr<StandingQuery>> standing;
  for (const UnionQuery& query : queries) {
    std::unique_ptr<StandingQuery> one =
        StandingQuery::Build(query, spec.catalog, &source_maintain, &error);
    if (one == nullptr) {
      std::fprintf(stderr, "bench_workload: standing build failed: %s\n",
                   error.c_str());
      return;
    }
    standing.push_back(std::move(one));
  }
  for (const UnionQuery& query : queries) {
    const AnswerStarReport initial =
        AnswerStar(query, spec.catalog, &source_rerun);
    if (!initial.ok) {
      std::fprintf(stderr, "bench_workload: initial rerun failed: %s\n",
                   initial.error.c_str());
      return;
    }
  }
  // Both arms paid their initial full evaluation; the A/B measures the
  // update phase only.
  const std::uint64_t maintain_base_calls = inner_maintain.stats().calls;
  const std::uint64_t rerun_base_calls = inner_rerun.stats().calls;
  const std::uint64_t maintain_base_wall = clock_maintain.NowMicros();
  const std::uint64_t rerun_base_wall = clock_rerun.NowMicros();

  bool answers_match = true;
  std::uint64_t applied_batches = 0;
  std::uint64_t reruns = 0;
  for (const auto& [index, groups] : batches) {
    std::vector<AppliedDelta> applied;
    std::set<std::string> changed;
    for (const RelationDelta& group : groups) {
      std::optional<AppliedDelta> one_m =
          ApplyDelta(&db_maintain, group, &error);
      std::optional<AppliedDelta> one_r = ApplyDelta(&db_rerun, group, &error);
      if (!one_m.has_value() || !one_r.has_value()) {
        std::fprintf(stderr, "bench_workload: delta rejected: %s\n",
                     error.c_str());
        return;
      }
      if (!one_m->empty()) {
        changed.insert(group.relation);
        applied.push_back(std::move(*one_m));
      }
    }
    if (applied.empty()) continue;
    ++applied_batches;
    for (std::unique_ptr<StandingQuery>& query : standing) {
      if (!query->ApplyDeltas(applied, &source_maintain, &error)) {
        std::fprintf(stderr, "bench_workload: maintenance failed: %s\n",
                     error.c_str());
        return;
      }
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      bool affected = false;
      for (const std::string& relation : changed) {
        if (standing[i]->relations().count(relation) != 0) affected = true;
      }
      if (!affected) continue;
      ++reruns;
      const AnswerStarReport fresh =
          AnswerStar(queries[i], spec.catalog, &source_rerun);
      if (!fresh.ok) {
        std::fprintf(stderr, "bench_workload: rerun failed: %s\n",
                     fresh.error.c_str());
        return;
      }
      const StandingAnswers maintained = standing[i]->Answers();
      if (maintained.under != fresh.under || maintained.over != fresh.over ||
          maintained.delta != fresh.delta ||
          maintained.complete != fresh.complete) {
        answers_match = false;
      }
    }
  }

  const std::uint64_t maintain_calls =
      inner_maintain.stats().calls - maintain_base_calls;
  const std::uint64_t rerun_calls =
      inner_rerun.stats().calls - rerun_base_calls;
  const std::uint64_t maintain_wall =
      clock_maintain.NowMicros() - maintain_base_wall;
  const std::uint64_t rerun_wall = clock_rerun.NowMicros() - rerun_base_wall;
  const double call_ratio =
      maintain_calls == 0 ? static_cast<double>(rerun_calls)
                          : static_cast<double>(rerun_calls) /
                                static_cast<double>(maintain_calls);

  std::string block = "{";
  block += "\"requests\": " + std::to_string(requests);
  block += ", \"update_rate\": " + FormatDouble(gen.update_rate);
  block += ", \"batches\": " + std::to_string(applied_batches);
  block += ", \"standing_queries\": " + std::to_string(queries.size());
  block += ", \"reruns\": " + std::to_string(reruns);
  block += ", \"maintain\": {\"physical_calls\": " +
           std::to_string(maintain_calls) +
           ", \"sim_wall_us\": " + std::to_string(maintain_wall) + "}";
  block += ", \"rerun\": {\"physical_calls\": " + std::to_string(rerun_calls) +
           ", \"sim_wall_us\": " + std::to_string(rerun_wall) + "}";
  block += ", \"call_ratio\": " + FormatDouble(call_ratio);
  block += ", \"answers_match\": ";
  block += answers_match ? "true" : "false";
  block += "}";
  MergeBlock(path, "delta", block);

  std::printf(
      "delta maintain: %llu calls, %llu us; rerun: %llu calls, %llu us; "
      "ratio %.1fx, answers %s\n",
      static_cast<unsigned long long>(maintain_calls),
      static_cast<unsigned long long>(maintain_wall),
      static_cast<unsigned long long>(rerun_calls),
      static_cast<unsigned long long>(rerun_wall), call_ratio,
      answers_match ? "match" : "MISMATCH");
  if (!answers_match || call_ratio < 5.0 || maintain_wall >= rerun_wall) {
    std::fprintf(stderr,
                 "bench_workload: delta acceptance bar missed "
                 "(need >=5x fewer calls, lower sim wall, matching answers)\n");
    std::exit(1);
  }
}

// Microbench: generator throughput (templates + facts + serialization).
void BM_WorkloadGenerate(benchmark::State& state) {
  WorkloadGenOptions options;
  options.num_queries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const WorkloadSpec spec = GenerateWorkload(options);
    benchmark::DoNotOptimize(SerializeWorkload(spec).size());
  }
}
BENCHMARK(BM_WorkloadGenerate)->Arg(50)->Arg(200);

// Microbench: small replays per cost model; the interesting numbers are
// simulated and exact, this just keeps the replay path warm in CI.
void BM_WorkloadReplay(benchmark::State& state) {
  WorkloadSpec spec = BenchWorkload(500);
  const bool feedback = state.range(0) != 0;
  for (auto _ : state) {
    WorkloadReplayOptions options;
    options.fanout_feedback = feedback;
    const WorkloadReplayReport report = ReplayWorkload(spec, options);
    if (!report.ok || report.ok_count != report.requests) {
      state.SkipWithError("replay failed");
      break;
    }
    benchmark::DoNotOptimize(report.answers_hash);
  }
}
BENCHMARK(BM_WorkloadReplay)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ucqn

int main(int argc, char** argv) {
  ucqn::WriteWorkloadBlock("BENCH_runtime.json");
  ucqn::WriteDeltaBlock("BENCH_runtime.json");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
