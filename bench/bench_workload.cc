// Workload-scale replay bench (EXPERIMENTS.md E20): stream a generated
// Zipf-skewed UCQ¬ workload through the in-process QueryDaemon on the
// simulated clock, three ways — static cost model, adaptive without
// fanout feedback (the 1000-tuple fallback), adaptive with observed
// fanouts — and record throughput, simulated percentiles, cache-hit
// curves, and the A/B in the `workload` block of BENCH_runtime.json.
//
// The three runs must agree to the bit on answers (the order-independent
// replay digest): the cost model moves calls around, never answers.
//
// The full run streams kDefaultRequests requests per configuration; the
// tier-1 smoke caps it with UCQN_BENCH_WORKLOAD_REQUESTS so the bench
// cannot rot between perf-focused PRs without costing minutes of ctest.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/workload.h"
#include "gen/workload_replay.h"

namespace ucqn {
namespace {

constexpr std::uint64_t kDefaultRequests = 100000;

std::uint64_t RequestBudget() {
  const char* env = std::getenv("UCQN_BENCH_WORKLOAD_REQUESTS");
  if (env == nullptr || *env == '\0') return kDefaultRequests;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || value == 0) return kDefaultRequests;
  return static_cast<std::uint64_t>(value);
}

// The bench workload: an adversarial chain where even links can be
// scanned or probed and small true cardinalities mean the 1000-tuple
// fallback overprices every scan, so the fallback planners probe where
// one scan would do. Uniform service latency keeps the comparison
// about call counts. No failures — every request must come back ok
// and the digests must match across configurations.
WorkloadSpec BenchWorkload(std::uint64_t requests) {
  WorkloadGenOptions options;
  options.seed = 20;
  options.chain_length = 6;
  options.enumerable_relations = 2;
  options.decoy_relations = 4;
  options.domain_size = 16;
  options.tuples_per_relation = 32;
  options.num_queries = 400;
  options.max_literals = 4;
  options.negation_prob = 0.25;
  options.constant_prob = 0.6;
  options.union_prob = 0.2;
  options.zipf_s = 1.1;
  options.latency_micros = 200;
  options.failure_probability = 0.0;
  options.slow_relations = 0;
  options.replay.requests = requests;
  options.replay.zipf_s = 1.0;
  options.replay.tenants = 4;
  return GenerateWorkload(options);
}

struct ConfigRun {
  const char* label;
  WorkloadReplayReport report;
};

ConfigRun RunConfig(const WorkloadSpec& spec, const char* label,
                    const std::string& cost_model, bool fanout_feedback) {
  WorkloadReplayOptions options;
  options.cost_model = cost_model;
  options.fanout_feedback = fanout_feedback;
  // A short simulated TTL keeps the cache honest at workload scale:
  // popular templates still hit, but plan quality keeps paying rent.
  options.cache_ttl_micros = 1000;
  ConfigRun run{label, ReplayWorkload(spec, options)};
  if (!run.report.ok) {
    std::fprintf(stderr, "bench_workload: %s replay failed: %s\n", label,
                 run.report.error.c_str());
  }
  return run;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// BENCH_runtime.json is owned by bench_runtime; this bench only merges
// (or replaces) the `workload` block, which is canonically last in the
// object, so the existing suffix can be truncated and re-appended.
void MergeWorkloadBlock(const char* path, const std::string& block) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  const std::string::size_type tagged = existing.find(", \"workload\":");
  if (tagged != std::string::npos) {
    existing.erase(tagged);
  } else {
    while (!existing.empty() &&
           (existing.back() == '\n' || existing.back() == ' ')) {
      existing.pop_back();
    }
    if (!existing.empty() && existing.back() == '}') existing.pop_back();
  }
  if (existing.empty()) existing = "{\"bench\": \"ucqn\"";
  const std::string merged = existing + ", \"workload\": " + block + "}\n";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_workload: cannot write %s\n", path);
    return;
  }
  std::fputs(merged.c_str(), out);
  std::fclose(out);
  std::printf("merged workload block into %s\n", path);
}

void WriteWorkloadBlock(const char* path) {
  const std::uint64_t requests = RequestBudget();
  const WorkloadSpec spec = BenchWorkload(requests);
  std::vector<ConfigRun> runs;
  runs.push_back(RunConfig(spec, "static", "static", false));
  runs.push_back(RunConfig(spec, "adaptive_fallback", "adaptive", false));
  runs.push_back(RunConfig(spec, "adaptive_fanout", "adaptive", true));
  for (const ConfigRun& run : runs) {
    if (!run.report.ok) return;
  }
  const std::uint64_t baseline_hash = runs[0].report.answers_hash;

  std::string block = "{";
  block += "\"requests\": " + std::to_string(requests);
  block += ", \"templates\": " + std::to_string(spec.queries.size());
  block += ", \"zipf_s\": " + FormatDouble(spec.replay.zipf_s);
  block += ", \"tenants\": " + std::to_string(spec.replay.tenants);
  block += ", \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const WorkloadReplayReport& report = runs[i].report;
    if (i > 0) block += ", ";
    block += "{\"config\": \"" + std::string(runs[i].label) + "\"";
    block += ", \"ok_count\": " + std::to_string(report.ok_count);
    block += ", \"shed_count\": " + std::to_string(report.shed_count);
    block += ", \"quota_count\": " + std::to_string(report.quota_count);
    block += ", \"sim_wall_us\": " + std::to_string(report.sim_wall_micros);
    block += ", \"physical_calls\": " + std::to_string(report.physical_calls);
    block += ", \"cache_hits\": " + std::to_string(report.cache_hits);
    block += ", \"cache_misses\": " + std::to_string(report.cache_misses);
    block += ", \"p50_us\": " + std::to_string(report.p50_micros);
    block += ", \"p95_us\": " + std::to_string(report.p95_micros);
    block += ", \"p99_us\": " + std::to_string(report.p99_micros);
    block += ", \"throughput_per_sec\": " +
             FormatDouble(report.throughput_per_second);
    block += ", \"answers_match\": ";
    block += report.answers_hash == baseline_hash ? "true" : "false";
    block += ", \"hit_curve\": [";
    for (std::size_t w = 0; w < report.windows.size(); ++w) {
      if (w > 0) block += ", ";
      block += FormatDouble(report.windows[w].hit_rate);
    }
    block += "]}";
  }
  block += "]}";
  MergeWorkloadBlock(path, block);

  for (const ConfigRun& run : runs) {
    std::printf(
        "%-17s sim_wall %llu us, %llu calls, p99 %llu us, answers %s\n",
        run.label,
        static_cast<unsigned long long>(run.report.sim_wall_micros),
        static_cast<unsigned long long>(run.report.physical_calls),
        static_cast<unsigned long long>(run.report.p99_micros),
        run.report.answers_hash == baseline_hash ? "match" : "MISMATCH");
  }
}

// Microbench: generator throughput (templates + facts + serialization).
void BM_WorkloadGenerate(benchmark::State& state) {
  WorkloadGenOptions options;
  options.num_queries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const WorkloadSpec spec = GenerateWorkload(options);
    benchmark::DoNotOptimize(SerializeWorkload(spec).size());
  }
}
BENCHMARK(BM_WorkloadGenerate)->Arg(50)->Arg(200);

// Microbench: small replays per cost model; the interesting numbers are
// simulated and exact, this just keeps the replay path warm in CI.
void BM_WorkloadReplay(benchmark::State& state) {
  WorkloadSpec spec = BenchWorkload(500);
  const bool feedback = state.range(0) != 0;
  for (auto _ : state) {
    WorkloadReplayOptions options;
    options.fanout_feedback = feedback;
    const WorkloadReplayReport report = ReplayWorkload(spec, options);
    if (!report.ok || report.ok_count != report.requests) {
      state.SkipWithError("replay failed");
      break;
    }
    benchmark::DoNotOptimize(report.answers_hash);
  }
}
BENCHMARK(BM_WorkloadReplay)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ucqn

int main(int argc, char** argv) {
  ucqn::WriteWorkloadBlock("BENCH_runtime.json");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
