// E5 — Sections 5.3/5.4: the uniform FEASIBLE algorithm is optimal for CQ
// and UCQ too — it agrees with Li & Chang's CQstable/CQstable* and
// UCQstable/UCQstable* and is cost-competitive. CQstable pays an up-front
// minimization on every query; the * variants and FEASIBLE can skip the
// equivalence check when ans(Q) = Q.
//
// Rows: wall time per query for each algorithm on the same random CQ and
// UCQ workloads (agreement is asserted; a mismatch aborts the benchmark).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "feasibility/feasible.h"
#include "feasibility/li_chang.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

struct CqWorkload {
  Catalog catalog;
  std::vector<ConjunctiveQuery> queries;
};

const CqWorkload& SharedCqWorkload() {
  static const CqWorkload* w = [] {
    auto* workload = new CqWorkload();
    std::mt19937 rng(2024);
    RandomSchemaOptions schema_options;
    schema_options.num_relations = 8;
    schema_options.input_slot_prob = 0.6;
    schema_options.full_scan_prob = 0.2;
    workload->catalog = RandomCatalog(&rng, schema_options);
    RandomQueryOptions options;
    options.num_literals = 6;
    options.num_variables = 4;
    options.head_arity = 1;
    for (int i = 0; i < 64; ++i) {
      workload->queries.push_back(RandomCq(&rng, workload->catalog, options));
    }
    return workload;
  }();
  return *w;
}

struct UcqWorkload {
  Catalog catalog;
  std::vector<UnionQuery> queries;
};

const UcqWorkload& SharedUcqWorkload() {
  static const UcqWorkload* w = [] {
    auto* workload = new UcqWorkload();
    std::mt19937 rng(4048);
    RandomSchemaOptions schema_options;
    schema_options.num_relations = 8;
    schema_options.input_slot_prob = 0.6;
    schema_options.full_scan_prob = 0.2;
    workload->catalog = RandomCatalog(&rng, schema_options);
    RandomQueryOptions options;
    options.num_literals = 4;
    options.num_variables = 4;
    options.head_arity = 1;
    for (int i = 0; i < 32; ++i) {
      workload->queries.push_back(
          RandomUcq(&rng, workload->catalog, options, 3));
    }
    return workload;
  }();
  return *w;
}

template <typename Algo>
void RunCq(benchmark::State& state, Algo&& algo) {
  const CqWorkload& w = SharedCqWorkload();
  std::uint64_t feasible = 0, total = 0;
  for (auto _ : state) {
    for (const ConjunctiveQuery& q : w.queries) {
      if (algo(q, w.catalog)) ++feasible;
      ++total;
    }
  }
  state.counters["frac_feasible"] =
      static_cast<double>(feasible) / static_cast<double>(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

void BM_Cq_CqStable(benchmark::State& state) {
  RunCq(state, [](const ConjunctiveQuery& q, const Catalog& c) {
    return CqStable(q, c);
  });
}
void BM_Cq_CqStableStar(benchmark::State& state) {
  RunCq(state, [](const ConjunctiveQuery& q, const Catalog& c) {
    return CqStableStar(q, c);
  });
}
void BM_Cq_Feasible(benchmark::State& state) {
  RunCq(state, [](const ConjunctiveQuery& q, const Catalog& c) {
    return IsFeasible(UnionQuery(q), c);
  });
}
BENCHMARK(BM_Cq_CqStable);
BENCHMARK(BM_Cq_CqStableStar);
BENCHMARK(BM_Cq_Feasible);

template <typename Algo>
void RunUcq(benchmark::State& state, Algo&& algo) {
  const UcqWorkload& w = SharedUcqWorkload();
  std::uint64_t feasible = 0, total = 0;
  for (auto _ : state) {
    for (const UnionQuery& q : w.queries) {
      if (algo(q, w.catalog)) ++feasible;
      ++total;
    }
  }
  state.counters["frac_feasible"] =
      static_cast<double>(feasible) / static_cast<double>(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

void BM_Ucq_UcqStable(benchmark::State& state) {
  RunUcq(state, [](const UnionQuery& q, const Catalog& c) {
    return UcqStable(q, c);
  });
}
void BM_Ucq_UcqStableStar(benchmark::State& state) {
  RunUcq(state, [](const UnionQuery& q, const Catalog& c) {
    return UcqStableStar(q, c);
  });
}
void BM_Ucq_Feasible(benchmark::State& state) {
  RunUcq(state, [](const UnionQuery& q, const Catalog& c) {
    return IsFeasible(q, c);
  });
}
BENCHMARK(BM_Ucq_UcqStable);
BENCHMARK(BM_Ucq_UcqStableStar);
BENCHMARK(BM_Ucq_Feasible);

}  // namespace
}  // namespace ucqn

int main(int argc, char** argv) {
  // Assert agreement once up front; the benchmark then times with
  // confidence that all algorithms compute the same function.
  {
    const auto& cq = ucqn::SharedCqWorkload();
    for (const auto& q : cq.queries) {
      const bool a = ucqn::CqStable(q, cq.catalog);
      const bool b = ucqn::CqStableStar(q, cq.catalog);
      const bool c = ucqn::IsFeasible(ucqn::UnionQuery(q), cq.catalog);
      if (a != b || b != c) {
        std::fprintf(stderr, "baseline disagreement on %s\n",
                     q.ToString().c_str());
        return 1;
      }
    }
    const auto& ucq = ucqn::SharedUcqWorkload();
    for (const auto& q : ucq.queries) {
      const bool a = ucqn::UcqStable(q, ucq.catalog);
      const bool b = ucqn::UcqStableStar(q, ucq.catalog);
      const bool c = ucqn::IsFeasible(q, ucq.catalog);
      if (a != b || b != c) {
        std::fprintf(stderr, "baseline disagreement on\n%s\n",
                     q.ToString().c_str());
        return 1;
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
