// E12 — cost-aware literal ordering vs. the ANSWERABLE order. Algorithm
// ANSWERABLE picks any executable literal (body order); the greedy planner
// additionally ranks candidates by estimated fanout. Both orders are
// correct (same answers); the counters show the source-call and
// tuple-transfer gap on a selective-join workload, and the cache adapter's
// additional effect on repeated executions.

#include <benchmark/benchmark.h>

#include <random>

#include "ast/parser.h"
#include "eval/executor.h"
#include "eval/planner.h"
#include "eval/source_adapters.h"
#include "feasibility/answerable.h"
#include "runtime/caching_source.h"

namespace ucqn {
namespace {

struct Fixture {
  Catalog catalog;
  Database db;
  ConjunctiveQuery query;
  CardinalityEstimates estimates;
};

Fixture MakeFixture(int big_size) {
  Fixture f;
  f.catalog = Catalog::MustParse(R"(
    relation Big/2: oo io
    relation Mid/2: oo io
    relation Small/1: o
  )");
  std::mt19937 rng(4);
  for (int i = 0; i < big_size; ++i) {
    f.db.Insert("Big", {Term::Constant("k" + std::to_string(i)),
                        Term::Constant("m" + std::to_string(i % 37))});
    f.db.Insert("Mid", {Term::Constant("m" + std::to_string(i % 37)),
                        Term::Constant("v" + std::to_string(i % 11))});
  }
  for (int i = 0; i < 3; ++i) {
    f.db.Insert("Small", {Term::Constant("k" + std::to_string(i * 7))});
  }
  // Written worst-first: the big scan leads the body.
  f.query = MustParseRule("Q(x, v) :- Big(x, m), Mid(m, v), Small(x).");
  f.estimates = CardinalityEstimates::FromDatabase(f.db);
  return f;
}

void BM_PlannerVsAnswerableOrder(benchmark::State& state) {
  const bool optimized = state.range(1) != 0;
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));

  ConjunctiveQuery plan = f.query;
  if (optimized) {
    std::optional<ConjunctiveQuery> better =
        OptimizeLiteralOrder(f.query, f.catalog, f.estimates);
    if (!better.has_value()) {
      state.SkipWithError("query unexpectedly not orderable");
      return;
    }
    plan = *better;
  } else {
    AnswerablePart part = Answerable(f.query, f.catalog);
    if (part.IsFalse() || !part.unanswerable.empty()) {
      state.SkipWithError("query unexpectedly not orderable");
      return;
    }
    plan = *part.answerable;
  }

  DatabaseSource source(&f.db, &f.catalog);
  std::size_t answers = 0;
  for (auto _ : state) {
    source.ResetStats();
    ExecutionResult result = Execute(plan, f.catalog, &source);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    answers = result.tuples.size();
  }
  state.counters["big_size"] = static_cast<double>(state.range(0));
  state.counters["optimized"] = optimized ? 1.0 : 0.0;
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["source_calls"] = static_cast<double>(source.stats().calls);
  state.counters["tuples_transferred"] =
      static_cast<double>(source.stats().tuples_returned);
}
BENCHMARK(BM_PlannerVsAnswerableOrder)
    ->ArgsProduct({{256, 1024, 4096}, {0, 1}});

void BM_PlannerPlusCache(benchmark::State& state) {
  Fixture f = MakeFixture(1024);
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(f.query, f.catalog, f.estimates);
  if (!plan.has_value()) {
    state.SkipWithError("query unexpectedly not orderable");
    return;
  }
  DatabaseSource backend(&f.db, &f.catalog);
  CachingSource cached(&backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Execute(*plan, f.catalog, &cached));
  }
  const double total = static_cast<double>(cached.cache_stats().hits +
                                           cached.cache_stats().misses);
  state.counters["cache_hit_rate"] =
      total == 0 ? 0.0 : static_cast<double>(cached.cache_stats().hits) / total;
  state.counters["backend_calls"] =
      static_cast<double>(backend.stats().calls);
}
BENCHMARK(BM_PlannerPlusCache);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
