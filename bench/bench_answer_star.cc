// E6 — Section 4.2, Examples 5/6: ANSWER* is a cheap runtime algorithm
// that often certifies *complete* answers for infeasible queries — and
// integrity constraints (foreign keys) raise that rate to 100% on the
// running example's shape.
//
// Series:
//   * BM_AnswerStarRandom: ANSWER* over random UCQ¬ workloads on random
//     instances. Counters: fraction of runs with a complete answer,
//     fraction of those queries that were infeasible, mean completeness
//     lower bound when reported.
//   * BM_AnswerStarForeignKey: the Example 4 query on instances
//     with/without the R.z ⊆ S.z inclusion dependency — with the
//     dependency the infeasible query is always runtime-complete.
//   * BM_AnswerStarOverhead: ANSWER* (two plans) vs. executing only the
//     underestimate — the price of the completeness information.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "feasibility/feasible.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

void BM_AnswerStarRandom(benchmark::State& state) {
  std::mt19937 rng(555);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 6;
  schema_options.input_slot_prob = 0.5;  // plenty of infeasible queries
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = static_cast<int>(state.range(0));
  instance_options.tuples_per_relation = 3 * instance_options.domain_size;

  std::vector<UnionQuery> queries;
  std::vector<bool> feasible;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(RandomUcq(&rng, catalog, options, 2));
    feasible.push_back(IsFeasible(queries.back(), catalog));
  }
  Database db = RandomDatabase(&rng, catalog, instance_options);
  DatabaseSource source(&db, &catalog);

  std::uint64_t complete = 0, infeasible_complete = 0, infeasible = 0,
                total = 0;
  double bound_sum = 0;
  std::uint64_t bound_count = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      AnswerStarReport report = AnswerStar(queries[i], catalog, &source);
      ++total;
      if (!feasible[i]) ++infeasible;
      if (report.complete) {
        ++complete;
        if (!feasible[i]) ++infeasible_complete;
      } else if (report.completeness_lower_bound.has_value()) {
        bound_sum += *report.completeness_lower_bound;
        ++bound_count;
      }
    }
  }
  const double n = static_cast<double>(total);
  state.counters["domain"] = static_cast<double>(state.range(0));
  state.counters["frac_complete"] = static_cast<double>(complete) / n;
  state.counters["frac_infeasible"] = static_cast<double>(infeasible) / n;
  state.counters["frac_infeasible_yet_complete"] =
      infeasible == 0 ? 0.0
                      : static_cast<double>(infeasible_complete) /
                            (static_cast<double>(infeasible));
  state.counters["mean_completeness_bound"] =
      bound_count == 0 ? 1.0 : bound_sum / static_cast<double>(bound_count);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_AnswerStarRandom)->Arg(4)->Arg(8)->Arg(16);

void BM_AnswerStarForeignKey(benchmark::State& state) {
  const bool with_fk = state.range(0) != 0;
  Catalog catalog = Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
  UnionQuery query = MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 12;
  instance_options.tuples_per_relation = 24;

  std::uint64_t complete = 0, total = 0;
  std::mt19937 rng(99);
  for (auto _ : state) {
    state.PauseTiming();
    Database db =
        with_fk ? RandomDatabaseWithInclusion(&rng, catalog, instance_options,
                                              "R", 1, "S", 0)
                : RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource source(&db, &catalog);
    state.ResumeTiming();
    AnswerStarReport report = AnswerStar(query, catalog, &source);
    if (report.complete) ++complete;
    ++total;
  }
  state.counters["with_foreign_key"] = with_fk ? 1.0 : 0.0;
  state.counters["frac_complete"] =
      static_cast<double>(complete) / static_cast<double>(total);
}
BENCHMARK(BM_AnswerStarForeignKey)->Arg(0)->Arg(1);

void BM_AnswerStarOverhead(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  std::mt19937 rng(777);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  UnionQuery q = RandomUcq(&rng, catalog, options, 3);
  Database db = RandomDatabase(&rng, catalog, {});
  DatabaseSource source(&db, &catalog);
  PlanStarResult plans = PlanStar(q, catalog);
  for (auto _ : state) {
    if (full) {
      benchmark::DoNotOptimize(AnswerStar(q, catalog, &source));
    } else {
      benchmark::DoNotOptimize(Execute(plans.under, catalog, &source));
    }
  }
  state.counters["mode_full_answer_star"] = full ? 1.0 : 0.0;
}
BENCHMARK(BM_AnswerStarOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
