// Source-access runtime overhead and savings.
//
//  * BM_AnswerStarCacheSavings — ANSWER* on the paper scenarios with and
//    without the call cache. Qᵘ's calls are a subset of Qᵒ's, so one cache
//    shared across both plans absorbs the overlap; `calls_saved_pct` is
//    the headline number (>= 30% on the running example).
//  * BM_SharedCacheWarm — the cross-query version of the same overlap: a
//    scenario's ANSWER* run executed twice against one process-wide
//    SharedCacheStore (two SourceStacks, one store). The warm run's
//    physical calls drop to zero with byte-identical reports;
//    `warm_saved_pct` is the headline number (>= 50% required, 100%
//    measured on every scenario).
//  * BM_JoinPipelineCache — a selective join re-executed against a slow
//    simulated service; hit ratio and backend calls with/without cache.
//  * BM_DictionaryEncodedWaves — the dictionary-encoding payoff on a
//    wide-frontier join (thousands of live bindings, long constant
//    names) with a negated literal and a warm shared-cache rerun: wave
//    dedup, anti-join membership probes, and cache keys all run over
//    flat uint32 ids instead of strings. Measures the encoded executor
//    against the --no-dictionary string-path oracle on the same
//    workload; `speedup` is the headline number (>= 1.5x required) with
//    byte-identical answers at parallelism 1.
//  * BM_RetryUnderFaults — a flaky service (seeded transient failures)
//    behind the retrying stack; measures attempts vs. logical calls and
//    the virtual time spent backing off.
//  * BM_StackOverhead — the full stack on an in-memory source, i.e. the
//    pure decorator cost when nothing goes wrong.
//  * BM_ParallelFanout — the paper's cost model head-on: one seed call
//    fanning out into k = 64 keyed calls of 500us each. The executor
//    batches the fan-out into one wave and the parallel dispatcher
//    overlaps it, so simulated wall-clock drops from (1 + k) x L
//    sequentially to (1 + ceil(k/p)) x L at parallelism p — with
//    byte-identical answers (asserted via `answers_match`).
//  * BM_OperatorDagDisjuncts — the operator-DAG executor's concurrency
//    payoff: a three-disjunct UCQ¬ (each disjunct a scan fanning a
//    6000-row combined frontier into keyed probes plus a negated
//    anti-join probe) against a 500us/call simulated service. The legacy
//    loop and the DAG at disjunct_concurrency 1 cost the same simulated
//    wall-clock (byte-identical schedules); at disjunct_concurrency 3
//    the three chains stage one wave each per round and resolve them in
//    one overlap bracket, so each round costs its slowest lane —
//    simulated wall-clock drops ~3x (>= 1.5x required) with identical
//    answers.
//  * BM_DaemonWarmStart — two QueryDaemon lifetimes over one snapshot
//    directory: the first serves a query cold and drains (spilling
//    cache.json/stats.json), the second boots from those files over a
//    fresh backend and serves the same query entirely from the restored
//    cache — `warm_physical_calls` is 0 with byte-identical answers.
//  * BM_CostModelSlowService — the adaptive cost model's headline
//    scenario: 64 keyed probes vs. one full scan of a 5000-tuple
//    relation. When the service is fast (500us/call) the keyed pattern
//    wins and both models issue it; when the same service is 10x slower
//    (5000us/call) the adaptive model — seeded with a StatsCatalog
//    observing that latency — flips to the scan pattern and cuts
//    simulated wall-clock by ~50x, with identical answers.
//
// The binary also writes BENCH_runtime.json (machine-readable summary of
// the fan-out sweep) to the working directory before running the
// benchmarks.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "gen/scenarios.h"
#include "runtime/fault_injection.h"
#include "runtime/source_stack.h"
#include "server/daemon.h"

namespace ucqn {
namespace {

// Scenarios whose ANSWER* run issues source calls (a database instance is
// bundled and both plans are non-trivial).
std::vector<Scenario> RuntimeScenarios() {
  std::vector<Scenario> out;
  for (Scenario& s : AllScenarios()) {
    if (s.database.TotalTuples() > 0) out.push_back(std::move(s));
  }
  return out;
}

void BM_AnswerStarCacheSavings(benchmark::State& state) {
  std::vector<Scenario> scenarios = RuntimeScenarios();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= scenarios.size()) {
    state.SkipWithError("no such scenario");
    return;
  }
  const Scenario& s = scenarios[index];
  const bool cached = state.range(1) != 0;

  ExecutionOptions options;
  options.runtime.cache = cached;

  std::uint64_t calls_bare = 0;
  std::uint64_t calls_used = 0;
  double hit_ratio = 0.0;
  for (auto _ : state) {
    // Baseline calls, outside the timed region's interest: the bare run.
    state.PauseTiming();
    DatabaseSource bare(&s.database, &s.catalog);
    AnswerStarReport plain = AnswerStar(s.query, s.catalog, &bare);
    if (!plain.ok) {
      state.SkipWithError("baseline ANSWER* failed");
      return;
    }
    calls_bare = bare.stats().calls;
    DatabaseSource backend(&s.database, &s.catalog);
    state.ResumeTiming();

    AnswerStarReport report = AnswerStar(s.query, s.catalog, &backend,
                                         options);
    if (!report.ok) {
      state.SkipWithError("ANSWER* failed");
      return;
    }
    calls_used = backend.stats().calls;
    hit_ratio = report.runtime.CacheHitRatio();
  }
  state.SetLabel(s.name);
  state.counters["cached"] = cached ? 1.0 : 0.0;
  state.counters["calls_bare"] = static_cast<double>(calls_bare);
  state.counters["calls_used"] = static_cast<double>(calls_used);
  state.counters["calls_saved_pct"] =
      calls_bare == 0
          ? 0.0
          : 100.0 * static_cast<double>(calls_bare - calls_used) /
                static_cast<double>(calls_bare);
  state.counters["cache_hit_ratio"] = hit_ratio;
}
BENCHMARK(BM_AnswerStarCacheSavings)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}});

// --- cross-query reuse through the process-wide store ---------------------

struct SharedCacheRun {
  bool ok = false;
  std::uint64_t cold_calls = 0;  // physical calls of the first execution
  std::uint64_t warm_calls = 0;  // physical calls of the repeat
  double warm_hit_ratio = 0.0;
  bool answers_match = false;
};

// One scenario's ANSWER* run executed twice, each through its own
// SourceStack, both viewing one SharedCacheStore — the multi-query
// session `ucqnc --queries --shared-cache` runs, in miniature.
SharedCacheRun RunSharedCacheWarm(const Scenario& s) {
  DatabaseSource backend(&s.database, &s.catalog);
  SharedCacheStore store;
  RuntimeOptions runtime;
  runtime.shared_cache = &store;

  SourceStack cold_stack(&backend, runtime);
  AnswerStarReport cold = AnswerStar(s.query, s.catalog, cold_stack.source());
  SharedCacheRun run;
  run.cold_calls = backend.stats().calls;

  SourceStack warm_stack(&backend, runtime);
  AnswerStarReport warm = AnswerStar(s.query, s.catalog, warm_stack.source());
  run.warm_calls = backend.stats().calls - run.cold_calls;
  run.warm_hit_ratio = warm_stack.stats().CacheHitRatio();
  run.ok = cold.ok && warm.ok;
  run.answers_match = cold.under == warm.under && cold.over == warm.over &&
                      cold.complete == warm.complete;
  return run;
}

void BM_SharedCacheWarm(benchmark::State& state) {
  std::vector<Scenario> scenarios = RuntimeScenarios();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= scenarios.size()) {
    state.SkipWithError("no such scenario");
    return;
  }
  const Scenario& s = scenarios[index];
  SharedCacheRun run;
  for (auto _ : state) {
    run = RunSharedCacheWarm(s);
    if (!run.ok) {
      state.SkipWithError("ANSWER* failed");
      return;
    }
  }
  state.SetLabel(s.name);
  state.counters["cold_calls"] = static_cast<double>(run.cold_calls);
  state.counters["warm_calls"] = static_cast<double>(run.warm_calls);
  state.counters["warm_saved_pct"] =
      run.cold_calls == 0
          ? 0.0
          : 100.0 * static_cast<double>(run.cold_calls - run.warm_calls) /
                static_cast<double>(run.cold_calls);
  state.counters["warm_hit_ratio"] = run.warm_hit_ratio;
  state.counters["answers_match"] = run.answers_match ? 1.0 : 0.0;
}
BENCHMARK(BM_SharedCacheWarm)->DenseRange(0, 4);

Catalog JoinCatalog() {
  return Catalog::MustParse(R"(
    relation Big/2: oo io
    relation Mid/2: io
    relation Small/1: o
  )");
}

Database JoinDatabase(int big_size) {
  Database db;
  for (int i = 0; i < big_size; ++i) {
    db.Insert("Big", {Term::Constant("k" + std::to_string(i)),
                      Term::Constant("m" + std::to_string(i % 17))});
    db.Insert("Mid", {Term::Constant("m" + std::to_string(i % 17)),
                      Term::Constant("v" + std::to_string(i % 5))});
  }
  for (int i = 0; i < 8; ++i) {
    db.Insert("Small", {Term::Constant("k" + std::to_string(i * 3))});
  }
  return db;
}

void BM_JoinPipelineCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  Catalog catalog = JoinCatalog();
  Database db = JoinDatabase(1024);
  ConjunctiveQuery plan =
      MustParseRule("Q(x, v) :- Small(x), Big(x, m), Mid(m, v).");

  // A simulated 500us/call service: the virtual clock prices each backend
  // call, so `service_us` shows what the cache saves in access latency,
  // not just call count.
  ExecutionOptions options;
  options.runtime.cache = cached;
  options.runtime.metering = true;

  std::uint64_t backend_calls = 0;
  double hit_ratio = 0.0;
  std::uint64_t service_micros = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseSource backend(&db, &catalog);
    FaultPlan faults;
    faults.latency_micros = 500;
    SimulatedClock clock;
    FaultInjectingSource slow(&backend, faults, &clock);
    state.ResumeTiming();

    // The query repeats Mid probes for every Big row sharing a key: the
    // cache collapses them. Two consecutive executions model the
    // ANSWER*-style repeat on top.
    SourceStack stack(&slow, options.runtime, &clock);
    ExecutionResult a = Execute(plan, catalog, stack.source());
    ExecutionResult b = Execute(plan, catalog, stack.source());
    if (!a.ok || !b.ok) {
      state.SkipWithError("execution failed");
      return;
    }
    backend_calls = backend.stats().calls;
    hit_ratio = stack.stats().CacheHitRatio();
    service_micros = slow.fault_stats().injected_latency_micros;
  }
  state.counters["cached"] = cached ? 1.0 : 0.0;
  state.counters["backend_calls"] = static_cast<double>(backend_calls);
  state.counters["cache_hit_ratio"] = hit_ratio;
  state.counters["service_us"] = static_cast<double>(service_micros);
}
BENCHMARK(BM_JoinPipelineCache)->Arg(0)->Arg(1);

// The dictionary-encoding workload: a frontier thousands of rows wide
// with deliberately long constant names (string hashing cost scales with
// them; id hashing does not), a keyed probe whose wave dedup collapses
// the frontier ~60:1, a negated literal filtering every row through a
// membership probe, and a second execution served from the warm shared
// cache — so wave-dedup signatures, anti-join probes, and cache keys
// dominate the profile, which is exactly where the ids pay.
Catalog EncodedWavesCatalog() {
  return Catalog::MustParse(R"(
    relation Wide/2: oo
    relation Probe/2: io
    relation Banned/1: o
  )");
}

Database EncodedWavesDatabase() {
  Database db;
  for (int i = 0; i < 6000; ++i) {
    db.Insert("Wide",
              {Term::Constant("wide-row-constant-" + std::to_string(i)),
               Term::Constant("mid-join-constant-" + std::to_string(i % 96))});
  }
  for (int j = 0; j < 96; ++j) {
    db.Insert("Probe",
              {Term::Constant("mid-join-constant-" + std::to_string(j)),
               Term::Constant("value-constant-" + std::to_string(j % 7))});
    if (j % 2 == 0) {
      db.Insert("Banned",
                {Term::Constant("mid-join-constant-" + std::to_string(j))});
    }
  }
  return db;
}

struct EncodedWavesRun {
  bool ok = false;
  std::uint64_t wall_micros = 0;
  std::set<Tuple> answers;
  std::uint64_t warm_hits = 0;
};

EncodedWavesRun RunEncodedWaves(const Catalog& catalog, const Database& db,
                                bool dictionary) {
  const ConjunctiveQuery plan =
      MustParseRule("Q(x, v) :- Wide(x, m), Probe(m, v), not Banned(m).");
  DatabaseSource backend(&db, &catalog);
  ExecutionOptions options;
  options.batch = true;
  options.dictionary = dictionary;
  options.runtime.cache = true;
  options.runtime.metering = true;

  EncodedWavesRun run;
  // One stack, two executions: the second is the warm rerun — every wave
  // resolves against the cache, isolating key construction + probe cost.
  SourceStack stack(&backend, options.runtime);
  const auto start = std::chrono::steady_clock::now();
  ExecutionResult cold = Execute(plan, catalog, stack.source(), options);
  ExecutionResult warm = Execute(plan, catalog, stack.source(), options);
  run.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (!cold.ok || !warm.ok || cold.tuples != warm.tuples) return run;
  run.ok = true;
  run.answers = std::move(cold.tuples);
  run.warm_hits = stack.stats().cache_hits;
  return run;
}

void BM_DictionaryEncodedWaves(benchmark::State& state) {
  const bool dictionary = state.range(0) != 0;
  const Catalog catalog = EncodedWavesCatalog();
  const Database db = EncodedWavesDatabase();

  EncodedWavesRun run;
  EncodedWavesRun oracle;
  for (auto _ : state) {
    run = RunEncodedWaves(catalog, db, dictionary);
    if (!run.ok) {
      state.SkipWithError("execution failed or cold/warm answers diverged");
      return;
    }
  }
  oracle = RunEncodedWaves(catalog, db, /*dictionary=*/false);
  state.SetLabel(dictionary ? "encoded" : "string-path oracle");
  state.counters["dictionary"] = dictionary ? 1.0 : 0.0;
  state.counters["answers"] = static_cast<double>(run.answers.size());
  state.counters["warm_hits"] = static_cast<double>(run.warm_hits);
  state.counters["answers_match"] =
      run.answers == oracle.answers ? 1.0 : 0.0;
}
BENCHMARK(BM_DictionaryEncodedWaves)->Arg(0)->Arg(1);

void BM_RetryUnderFaults(benchmark::State& state) {
  const double failure_probability =
      static_cast<double>(state.range(0)) / 100.0;
  Catalog catalog = JoinCatalog();
  Database db = JoinDatabase(256);
  ConjunctiveQuery plan =
      MustParseRule("Q(x, v) :- Small(x), Big(x, m), Mid(m, v).");

  RuntimeOptions runtime;
  runtime.retry = true;
  runtime.retry_policy.max_attempts = 8;
  runtime.retry_policy.initial_backoff_micros = 100;
  runtime.metering = true;

  std::uint64_t attempts = 0;
  std::uint64_t logical_calls = 0;
  std::uint64_t backoff_micros = 0;
  std::uint64_t giveups = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseSource backend(&db, &catalog);
    FaultPlan faults;
    faults.failure_probability = failure_probability;
    faults.seed = 17;
    SimulatedClock clock;
    FaultInjectingSource flaky(&backend, faults, &clock);
    state.ResumeTiming();

    SourceStack stack(&flaky, runtime, &clock);
    ExecutionResult result = Execute(plan, catalog, stack.source());
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    RuntimeStats stats = stack.stats();
    attempts = stats.source_calls;
    logical_calls = stats.source_calls - stats.retries;
    backoff_micros = stats.backoff_micros;
    giveups = stats.giveups;
  }
  state.counters["failure_pct"] = static_cast<double>(state.range(0));
  state.counters["attempts"] = static_cast<double>(attempts);
  state.counters["logical_calls"] = static_cast<double>(logical_calls);
  state.counters["backoff_us"] = static_cast<double>(backoff_micros);
  state.counters["giveups"] = static_cast<double>(giveups);
}
BENCHMARK(BM_RetryUnderFaults)->Arg(0)->Arg(10)->Arg(30);

void BM_StackOverhead(benchmark::State& state) {
  const bool stacked = state.range(0) != 0;
  Catalog catalog = JoinCatalog();
  Database db = JoinDatabase(1024);
  ConjunctiveQuery plan =
      MustParseRule("Q(x, v) :- Small(x), Big(x, m), Mid(m, v).");

  ExecutionOptions options;
  if (stacked) {
    options.runtime.cache = true;
    options.runtime.retry = true;
    options.runtime.metering = true;
  }
  DatabaseSource backend(&db, &catalog);
  for (auto _ : state) {
    ExecutionResult result = Execute(plan, catalog, &backend, options);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    benchmark::DoNotOptimize(result.tuples);
  }
  state.counters["stacked"] = stacked ? 1.0 : 0.0;
}
BENCHMARK(BM_StackOverhead)->Arg(0)->Arg(1);

Catalog FanoutCatalog() {
  return Catalog::MustParse(R"(
    relation Seed/1: o
    relation Item/2: io
  )");
}

Database FanoutDatabase(int k) {
  Database db;
  for (int i = 0; i < k; ++i) {
    db.Insert("Seed", {Term::Constant("s" + std::to_string(i))});
    db.Insert("Item", {Term::Constant("s" + std::to_string(i)),
                       Term::Constant("v" + std::to_string(i % 7))});
  }
  return db;
}

constexpr int kFanout = 64;

struct FanoutRun {
  bool ok = false;
  std::uint64_t sim_wall_micros = 0;
  std::uint64_t backend_calls = 0;
  std::set<Tuple> answers;
};

// One seed scan + kFanout keyed probes against a 500us/call simulated
// service, executed through a stack with the given worker count. The
// SimulatedClock makes the wall-clock exact and repeatable: (1 +
// ceil(k/p)) x 500us.
FanoutRun RunFanout(std::size_t parallelism) {
  Catalog catalog = FanoutCatalog();
  Database db = FanoutDatabase(kFanout);
  ConjunctiveQuery plan = MustParseRule("Q(x, v) :- Seed(x), Item(x, v).");
  DatabaseSource backend(&db, &catalog);
  FaultPlan faults;
  faults.latency_micros = 500;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  RuntimeOptions runtime;
  runtime.metering = true;  // keeps the stack enabled at parallelism 1 too
  runtime.parallelism = parallelism;
  SourceStack stack(&slow, runtime, &clock);
  ExecutionResult result = Execute(plan, catalog, stack.source());
  FanoutRun run;
  run.ok = result.ok;
  run.sim_wall_micros = clock.NowMicros();
  run.backend_calls = backend.stats().calls;
  run.answers = std::move(result.tuples);
  return run;
}

void BM_ParallelFanout(benchmark::State& state) {
  const auto parallelism = static_cast<std::size_t>(state.range(0));
  FanoutRun sequential = RunFanout(1);
  FanoutRun run;
  for (auto _ : state) {
    run = RunFanout(parallelism);
    if (!run.ok) {
      state.SkipWithError("fan-out execution failed");
      return;
    }
  }
  state.counters["parallelism"] = static_cast<double>(parallelism);
  state.counters["sim_wall_us"] = static_cast<double>(run.sim_wall_micros);
  state.counters["speedup"] =
      run.sim_wall_micros == 0
          ? 0.0
          : static_cast<double>(sequential.sim_wall_micros) /
                static_cast<double>(run.sim_wall_micros);
  state.counters["answers_match"] =
      run.answers == sequential.answers ? 1.0 : 0.0;
  state.counters["backend_calls"] = static_cast<double>(run.backend_calls);
}
BENCHMARK(BM_ParallelFanout)->Arg(1)->Arg(4)->Arg(16);

// --- inter-literal pipelining over an async transport ---------------------

Catalog ChainCatalog() {
  return Catalog::MustParse(R"(
    relation A/2: oo
    relation B/2: io
    relation C/2: io
  )");
}

constexpr int kChainWidth = 16;

Database ChainDatabase() {
  Database db;
  for (int i = 0; i < kChainWidth; ++i) {
    const std::string key = std::to_string(i);
    db.Insert("A", {Term::Constant("a" + key), Term::Constant("b" + key)});
    db.Insert("B", {Term::Constant("b" + key), Term::Constant("c" + key)});
    db.Insert("C", {Term::Constant("c" + key), Term::Constant("d" + key)});
  }
  return db;
}

struct ChainRun {
  bool ok = false;
  std::uint64_t sim_wall_micros = 0;
  std::uint64_t rounds = 0;
  std::uint64_t overlaps = 0;
  std::set<Tuple> answers;
};

// A 3-literal chain — one A scan fanning into kChainWidth keyed B probes,
// each fanning into one keyed C probe — against a 500us/call simulated
// service. At pipeline_depth 1 the stages serialize: (1 + 2k) x 500us. At
// depth >= 2 bindings that cleared B issue their C probes while B's
// remaining frontier is still resolving; the executor's overlap bracket
// charges concurrent waves max-over-lanes, so simulated wall-clock drops
// by ~45% with byte-identical answers (asserted via `answers_match`).
ChainRun RunChain(std::size_t pipeline_depth) {
  Catalog catalog = ChainCatalog();
  Database db = ChainDatabase();
  ConjunctiveQuery plan =
      MustParseRule("Q(x, w) :- A(x, y), B(y, z), C(z, w).");
  DatabaseSource backend(&db, &catalog);
  FaultPlan faults;
  faults.latency_micros = 500;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  RuntimeOptions runtime;
  runtime.metering = true;  // keeps the stack enabled at depth 1 too
  runtime.pipeline_depth = pipeline_depth;
  runtime.clock = &clock;
  ExecutionOptions options;
  options.runtime = runtime;
  ExecutionResult result = Execute(plan, catalog, &slow, options);
  ChainRun run;
  run.ok = result.ok;
  run.sim_wall_micros = clock.NowMicros();
  run.rounds = result.runtime.pipeline_rounds;
  run.overlaps = result.runtime.pipeline_overlaps;
  run.answers = std::move(result.tuples);
  return run;
}

void BM_PipelinedChain(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  ChainRun sequential = RunChain(1);
  ChainRun run;
  for (auto _ : state) {
    run = RunChain(depth);
    if (!run.ok) {
      state.SkipWithError("pipelined execution failed");
      return;
    }
  }
  state.counters["pipeline_depth"] = static_cast<double>(depth);
  state.counters["sim_wall_us"] = static_cast<double>(run.sim_wall_micros);
  state.counters["speedup"] =
      run.sim_wall_micros == 0
          ? 0.0
          : static_cast<double>(sequential.sim_wall_micros) /
                static_cast<double>(run.sim_wall_micros);
  state.counters["rounds"] = static_cast<double>(run.rounds);
  state.counters["overlapped_rounds"] = static_cast<double>(run.overlaps);
  state.counters["answers_match"] =
      run.answers == sequential.answers ? 1.0 : 0.0;
}
BENCHMARK(BM_PipelinedChain)->Arg(1)->Arg(2)->Arg(3);

// --- concurrent disjunct chains through the operator DAG ------------------

constexpr int kDagDisjuncts = 3;
constexpr int kDagRowsPerDisjunct = 2000;  // 6000-row combined frontier
constexpr int kDagKeys = 32;

Catalog OperatorDagCatalog() {
  return Catalog::MustParse(R"(
    relation D1/2: oo
    relation D2/2: oo
    relation D3/2: oo
    relation T/2: io
    relation N/1: i
  )");
}

Database OperatorDagDatabase() {
  Database db;
  const std::vector<std::string> scans = {"D1", "D2", "D3"};
  for (std::size_t d = 0; d < scans.size(); ++d) {
    for (int i = 0; i < kDagRowsPerDisjunct; ++i) {
      db.Insert(scans[d],
                {Term::Constant(scans[d] + "_row" + std::to_string(i)),
                 Term::Constant("k" + std::to_string(i % kDagKeys))});
    }
  }
  for (int k = 0; k < kDagKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    db.Insert("T", {Term::Constant(key), Term::Constant("t" + key)});
    // Half the keys are negated away by the anti-join.
    if (k % 2 == 0) db.Insert("N", {Term::Constant(key)});
  }
  return db;
}

struct OperatorDagRun {
  bool ok = false;
  std::uint64_t sim_wall_micros = 0;
  std::uint64_t backend_calls = 0;
  std::uint64_t disjuncts = 0;
  std::uint64_t morsels = 0;
  std::uint64_t antijoin_build = 0;
  std::set<Tuple> answers;
};

// Three structurally identical disjuncts — scan, keyed join, negated
// probe — so every chain has the same per-round latency profile and the
// overlap bracket's max-over-lanes is a clean 1/3 of the serial sum.
// `dag=false` runs the legacy encoded loop (the --legacy-executor
// oracle); concurrency is only meaningful on the DAG path.
OperatorDagRun RunOperatorDag(bool dag, std::size_t concurrency) {
  Catalog catalog = OperatorDagCatalog();
  Database db = OperatorDagDatabase();
  UnionQuery query = MustParseUnionQuery(R"(
    Q(x, w) :- D1(x, z), T(z, w), not N(z).
    Q(x, w) :- D2(x, z), T(z, w), not N(z).
    Q(x, w) :- D3(x, z), T(z, w), not N(z).
  )");
  DatabaseSource backend(&db, &catalog);
  FaultPlan faults;
  faults.latency_micros = 500;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  ExecutionOptions options;
  options.dag = dag;
  options.disjunct_concurrency = concurrency;
  options.runtime.metering = true;
  options.runtime.clock = &clock;
  ExecutionResult result = Execute(query, catalog, &slow, options);
  OperatorDagRun run;
  run.ok = result.ok;
  run.sim_wall_micros = clock.NowMicros();
  run.backend_calls = backend.stats().calls;
  run.disjuncts = result.runtime.disjuncts_executed;
  run.morsels = result.runtime.morsels;
  run.antijoin_build = result.runtime.antijoin_build_tuples;
  run.answers = std::move(result.tuples);
  return run;
}

void BM_OperatorDagDisjuncts(benchmark::State& state) {
  // range(0): 0 = legacy loop, otherwise the DAG at that concurrency.
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  OperatorDagRun legacy = RunOperatorDag(/*dag=*/false, 1);
  OperatorDagRun run;
  for (auto _ : state) {
    run = RunOperatorDag(/*dag=*/concurrency > 0,
                         concurrency > 0 ? concurrency : 1);
    if (!run.ok) {
      state.SkipWithError("operator-DAG execution failed");
      return;
    }
  }
  state.counters["disjunct_concurrency"] = static_cast<double>(concurrency);
  state.counters["calls"] = static_cast<double>(run.backend_calls);
  state.counters["sim_wall_us"] = static_cast<double>(run.sim_wall_micros);
  state.counters["speedup"] =
      run.sim_wall_micros == 0
          ? 0.0
          : static_cast<double>(legacy.sim_wall_micros) /
                static_cast<double>(run.sim_wall_micros);
  state.counters["morsels"] = static_cast<double>(run.morsels);
  state.counters["antijoin_build"] = static_cast<double>(run.antijoin_build);
  state.counters["answers_match"] = run.answers == legacy.answers ? 1.0 : 0.0;
}
BENCHMARK(BM_OperatorDagDisjuncts)->Arg(0)->Arg(1)->Arg(3);

// --- daemon warm restart over spilled snapshots ---------------------------

struct DaemonWarmRun {
  bool ok = false;
  std::uint64_t cold_physical_calls = 0;
  std::uint64_t warm_physical_calls = 0;
  std::uint64_t warm_backend_calls = 0;  // what reaches the second backend
  bool answers_match = false;
};

// Two ucqnd lifetimes over one snapshot directory. The first daemon
// serves the join query cold and drains — the drain spills
// cache.json/stats.json. The second boots from those files over a fresh
// DatabaseSource and serves the same query; the acceptance bar is that
// it answers entirely from the restored cache: zero physical calls (both
// by the session's meter and by the backend's own counter), with
// byte-identical answers.
DaemonWarmRun RunDaemonWarmStart() {
  Catalog catalog = JoinCatalog();
  Database db = JoinDatabase(1024);
  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "ucqn_bench_daemon_snap")
          .string();
  std::filesystem::remove_all(snapshot_dir);

  ServiceRequest request;
  request.id = "bench";
  request.query = "Q(x, v) :- Small(x), Big(x, m), Mid(m, v).";

  QueryDaemon::Options options;
  options.snapshot_dir = snapshot_dir;

  DaemonWarmRun run;
  ServiceResponse cold;
  {
    DatabaseSource backend(&db, &catalog);
    QueryDaemon daemon(&catalog, &backend, options);
    cold = daemon.Submit(request);
    daemon.Drain();
  }
  run.cold_physical_calls = cold.physical_calls;

  DatabaseSource warm_backend(&db, &catalog);
  QueryDaemon daemon(&catalog, &warm_backend, options);
  SnapshotLoadReport report;
  std::string error;
  if (!daemon.LoadSnapshots(&report, &error)) return run;
  ServiceResponse warm = daemon.Submit(request);
  run.warm_physical_calls = warm.physical_calls;
  run.warm_backend_calls = warm_backend.stats().calls;
  run.answers_match = cold.under == warm.under && cold.over == warm.over &&
                      cold.complete == warm.complete;
  run.ok = cold.status == ServiceResponse::Status::kOk &&
           warm.status == ServiceResponse::Status::kOk;
  std::filesystem::remove_all(snapshot_dir);
  return run;
}

void BM_DaemonWarmStart(benchmark::State& state) {
  DaemonWarmRun run;
  for (auto _ : state) {
    run = RunDaemonWarmStart();
    if (!run.ok) {
      state.SkipWithError("daemon warm start failed");
      return;
    }
  }
  state.counters["cold_physical_calls"] =
      static_cast<double>(run.cold_physical_calls);
  state.counters["warm_physical_calls"] =
      static_cast<double>(run.warm_physical_calls);
  state.counters["warm_backend_calls"] =
      static_cast<double>(run.warm_backend_calls);
  state.counters["answers_match"] = run.answers_match ? 1.0 : 0.0;
}
BENCHMARK(BM_DaemonWarmStart);

// --- adaptive cost model vs. a slow service -------------------------------

Catalog CostModelCatalog() {
  return Catalog::MustParse(R"(
    relation Seed/1: o
    relation Lookup/2: io oo
  )");
}

constexpr int kCostSeeds = 64;
constexpr int kLookupCardinality = 5000;

// Every seed key has exactly one Lookup row; the rest of the relation is
// filler the keyed pattern never touches but the scan must haul over.
Database CostModelDatabase() {
  Database db;
  for (int i = 0; i < kCostSeeds; ++i) {
    db.Insert("Seed", {Term::Constant("s" + std::to_string(i))});
    db.Insert("Lookup", {Term::Constant("s" + std::to_string(i)),
                         Term::Constant("v" + std::to_string(i % 7))});
  }
  for (int i = kCostSeeds; i < kLookupCardinality; ++i) {
    db.Insert("Lookup", {Term::Constant("f" + std::to_string(i)),
                         Term::Constant("w" + std::to_string(i % 11))});
  }
  return db;
}

struct CostModelRun {
  bool ok = false;
  std::uint64_t sim_wall_micros = 0;
  std::uint64_t backend_calls = 0;
  std::string lookup_pattern;
  std::set<Tuple> answers;
};

// One execution of Q(x, v) :- Seed(x), Lookup(x, v) against a simulated
// service where Lookup calls cost `lookup_latency_micros` each. With
// `adaptive` false the executor runs its default (static) policy and
// issues 64 keyed io probes; with `adaptive` true an AdaptiveCostModel —
// seeded with a StatsCatalog that has observed the given latency — prices
// both patterns as expected_calls x p50 + expected_tuples x tuple_cost
// and flips to the single oo scan once the keyed probes' latency bill
// exceeds the scan's tuple-transfer bill.
CostModelRun RunCostModel(std::uint64_t lookup_latency_micros, bool adaptive) {
  Catalog catalog = CostModelCatalog();
  Database db = CostModelDatabase();
  ConjunctiveQuery plan = MustParseRule("Q(x, v) :- Seed(x), Lookup(x, v).");
  DatabaseSource backend(&db, &catalog);
  FaultPlan faults;
  faults.latency_micros = 500;
  faults.relation_latency_micros["Lookup"] = lookup_latency_micros;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  RuntimeOptions runtime;
  runtime.metering = true;
  SourceStack stack(&slow, runtime, &clock);

  // The stats a prior metered run against this fleet would have left
  // behind: 64 keyed Lookup calls at the service's latency, one tuple
  // each (what `ucqnc --stats-out` serializes).
  StatsCatalog stats;
  RelationStats seed_stats;
  seed_stats.calls = 1;
  seed_stats.tuples = kCostSeeds;
  seed_stats.p50_latency_micros = 500.0;
  stats.Record("Seed", seed_stats);
  RelationStats lookup_stats;
  lookup_stats.calls = kCostSeeds;
  lookup_stats.tuples = kCostSeeds;
  lookup_stats.p50_latency_micros =
      static_cast<double>(lookup_latency_micros);
  stats.Record("Lookup", lookup_stats);

  AdaptiveCostOptions cost_options;
  cost_options.tuple_cost_micros = 50.0;
  AdaptiveCostModel model(&stats, CardinalityEstimates::FromDatabase(db),
                          cost_options);

  ExecutionOptions options;
  if (adaptive) options.cost_model = &model;
  ExecutionResult result = Execute(plan, catalog, stack.source(), options);

  CostModelRun run;
  run.ok = result.ok;
  run.sim_wall_micros = clock.NowMicros();
  run.backend_calls = backend.stats().calls;
  run.answers = std::move(result.tuples);
  // Re-derive the Lookup decision at the executor's state (x bound, 64
  // live bindings) for the counters.
  {
    const CostModel* used =
        adaptive ? static_cast<const CostModel*>(&model) : nullptr;
    StaticCostModel fallback;
    if (used == nullptr) used = &fallback;
    BoundVariables bound;
    bound.insert("x");
    PlanContext context;
    context.live_bindings = static_cast<double>(kCostSeeds);
    std::optional<AccessPattern> chosen = ChoosePattern(
        catalog, plan.body()[1], bound, *used, context);
    run.lookup_pattern = chosen.has_value() ? chosen->word() : "none";
  }
  return run;
}

void BM_CostModelSlowService(benchmark::State& state) {
  const auto latency = static_cast<std::uint64_t>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  CostModelRun baseline = RunCostModel(latency, /*adaptive=*/false);
  CostModelRun run;
  for (auto _ : state) {
    run = RunCostModel(latency, adaptive);
    if (!run.ok) {
      state.SkipWithError("cost-model execution failed");
      return;
    }
  }
  state.SetLabel((adaptive ? std::string("adaptive ") : std::string("static ")) +
                 "Lookup^" + run.lookup_pattern);
  state.counters["lookup_latency_us"] = static_cast<double>(latency);
  state.counters["adaptive"] = adaptive ? 1.0 : 0.0;
  state.counters["sim_wall_us"] = static_cast<double>(run.sim_wall_micros);
  state.counters["backend_calls"] = static_cast<double>(run.backend_calls);
  state.counters["speedup_vs_static"] =
      run.sim_wall_micros == 0
          ? 0.0
          : static_cast<double>(baseline.sim_wall_micros) /
                static_cast<double>(run.sim_wall_micros);
  state.counters["answers_match"] =
      run.answers == baseline.answers ? 1.0 : 0.0;
}
BENCHMARK(BM_CostModelSlowService)->ArgsProduct({{500, 5000}, {0, 1}});

// Machine-readable summary of the fan-out sweep, for EXPERIMENTS.md and
// CI trend lines.
void WriteBenchJson(const char* path) {
  FanoutRun sequential = RunFanout(1);
  std::string json = "{\"fanout\": {\"k\": " + std::to_string(kFanout) +
                     ", \"latency_us\": 500, \"runs\": [";
  bool first = true;
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}}) {
    FanoutRun run = RunFanout(parallelism);
    if (!first) json += ", ";
    first = false;
    json += "{\"parallelism\": " + std::to_string(parallelism) +
            ", \"calls\": " + std::to_string(run.backend_calls) +
            ", \"sim_wall_us\": " + std::to_string(run.sim_wall_micros) +
            ", \"answers_match\": " +
            (run.answers == sequential.answers ? "true" : "false") + "}";
  }
  json += "]}, \"shared_cache\": {\"runs\": [";
  first = true;
  for (const Scenario& s : RuntimeScenarios()) {
    SharedCacheRun run = RunSharedCacheWarm(s);
    if (!first) json += ", ";
    first = false;
    const double saved_pct =
        run.cold_calls == 0
            ? 0.0
            : 100.0 * static_cast<double>(run.cold_calls - run.warm_calls) /
                  static_cast<double>(run.cold_calls);
    json += "{\"scenario\": \"" + s.name +
            "\", \"cold_calls\": " + std::to_string(run.cold_calls) +
            ", \"warm_calls\": " + std::to_string(run.warm_calls) +
            ", \"warm_saved_pct\": " + std::to_string(saved_pct) +
            ", \"answers_match\": " + (run.answers_match ? "true" : "false") +
            "}";
  }
  json += "]}, \"dictionary\": ";
  {
    const Catalog catalog = EncodedWavesCatalog();
    const Database db = EncodedWavesDatabase();
    // Best of a few repetitions per mode: the workload is CPU-bound on
    // dedup/probe/key work, so min filters scheduler noise.
    EncodedWavesRun encoded;
    EncodedWavesRun oracle;
    for (int rep = 0; rep < 5; ++rep) {
      EncodedWavesRun e = RunEncodedWaves(catalog, db, /*dictionary=*/true);
      EncodedWavesRun o = RunEncodedWaves(catalog, db, /*dictionary=*/false);
      if (!encoded.ok || (e.ok && e.wall_micros < encoded.wall_micros)) {
        encoded = std::move(e);
      }
      if (!oracle.ok || (o.ok && o.wall_micros < oracle.wall_micros)) {
        oracle = std::move(o);
      }
    }
    const double speedup =
        encoded.wall_micros == 0
            ? 0.0
            : static_cast<double>(oracle.wall_micros) /
                  static_cast<double>(encoded.wall_micros);
    json += "{\"frontier_rows\": 6000, \"distinct_probes\": 96"
            ", \"encoded_wall_us\": " + std::to_string(encoded.wall_micros) +
            ", \"string_wall_us\": " + std::to_string(oracle.wall_micros) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"warm_hits\": " + std::to_string(encoded.warm_hits) +
            ", \"answers\": " + std::to_string(encoded.answers.size()) +
            ", \"answers_match\": " +
            (encoded.ok && oracle.ok && encoded.answers == oracle.answers
                 ? "true"
                 : "false") +
            "}";
  }
  json += ", \"pipeline\": {\"chain_width\": " +
          std::to_string(kChainWidth) + ", \"latency_us\": 500, \"runs\": [";
  first = true;
  {
    ChainRun chain_sequential = RunChain(1);
    for (std::size_t depth : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
      ChainRun run = RunChain(depth);
      if (!first) json += ", ";
      first = false;
      json += "{\"pipeline_depth\": " + std::to_string(depth) +
              ", \"sim_wall_us\": " + std::to_string(run.sim_wall_micros) +
              ", \"rounds\": " + std::to_string(run.rounds) +
              ", \"overlapped_rounds\": " + std::to_string(run.overlaps) +
              ", \"answers_match\": " +
              (run.answers == chain_sequential.answers ? "true" : "false") +
              "}";
    }
  }
  json += "]}, \"operator_dag\": {\"disjuncts\": " +
          std::to_string(kDagDisjuncts) + ", \"frontier_rows\": " +
          std::to_string(kDagDisjuncts * kDagRowsPerDisjunct) +
          ", \"latency_us\": 500, \"runs\": [";
  first = true;
  {
    OperatorDagRun legacy = RunOperatorDag(/*dag=*/false, 1);
    struct Mode {
      const char* executor;
      bool dag;
      std::size_t concurrency;
    };
    for (const Mode& mode :
         {Mode{"legacy", false, 1}, Mode{"dag", true, 1},
          Mode{"dag", true, 3}}) {
      OperatorDagRun run = RunOperatorDag(mode.dag, mode.concurrency);
      if (!first) json += ", ";
      first = false;
      const double speedup =
          run.sim_wall_micros == 0
              ? 0.0
              : static_cast<double>(legacy.sim_wall_micros) /
                    static_cast<double>(run.sim_wall_micros);
      json += "{\"executor\": \"" + std::string(mode.executor) +
              "\", \"disjunct_concurrency\": " +
              std::to_string(mode.concurrency) +
              ", \"calls\": " + std::to_string(run.backend_calls) +
              ", \"sim_wall_us\": " + std::to_string(run.sim_wall_micros) +
              ", \"speedup\": " + std::to_string(speedup) +
              ", \"morsels\": " + std::to_string(run.morsels) +
              ", \"antijoin_build\": " + std::to_string(run.antijoin_build) +
              ", \"answers_match\": " +
              (run.ok && legacy.ok && run.answers == legacy.answers
                   ? "true"
                   : "false") +
              "}";
    }
  }
  json += "]}, \"cost_model\": {\"seeds\": " + std::to_string(kCostSeeds) +
          ", \"lookup_cardinality\": " + std::to_string(kLookupCardinality) +
          ", \"runs\": [";
  first = true;
  for (std::uint64_t latency : {std::uint64_t{500}, std::uint64_t{5000}}) {
    CostModelRun baseline = RunCostModel(latency, /*adaptive=*/false);
    for (bool adaptive : {false, true}) {
      CostModelRun run = RunCostModel(latency, adaptive);
      if (!first) json += ", ";
      first = false;
      json += "{\"lookup_latency_us\": " + std::to_string(latency) +
              ", \"model\": \"" +
              (adaptive ? std::string("adaptive") : std::string("static")) +
              "\", \"lookup_pattern\": \"" + run.lookup_pattern +
              "\", \"calls\": " + std::to_string(run.backend_calls) +
              ", \"sim_wall_us\": " + std::to_string(run.sim_wall_micros) +
              ", \"answers_match\": " +
              (run.answers == baseline.answers ? "true" : "false") + "}";
    }
  }
  json += "]}, \"daemon_warm_start\": ";
  {
    DaemonWarmRun run = RunDaemonWarmStart();
    json += "{\"cold_physical_calls\": " +
            std::to_string(run.cold_physical_calls) +
            ", \"warm_physical_calls\": " +
            std::to_string(run.warm_physical_calls) +
            ", \"warm_backend_calls\": " +
            std::to_string(run.warm_backend_calls) +
            ", \"answers_match\": " + (run.answers_match ? "true" : "false") +
            "}";
  }
  json += "}\n";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_runtime: cannot write %s\n", path);
    return;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace ucqn

int main(int argc, char** argv) {
  ucqn::WriteBenchJson("BENCH_runtime.json");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
