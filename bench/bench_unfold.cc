// E13 — global-as-view unfolding (the BIRN-mediator substrate of §4.2):
// cost and size of unfolding client queries into UCQ¬ plans, and the
// feasibility-analysis cost downstream.
//
// Series:
//   * BM_UnfoldPositive: disjunct count and time vs. number of view
//     literals when each view has 2 rules — the expected 2^k union growth,
//     which is why mediators bound plan size.
//   * BM_UnfoldNegated: product growth for negated views.
//   * BM_UnfoldThenCompile: the end-to-end mediator compile path
//     (unfold + PLAN* + feasibility) on a fixed realistic view stack.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "feasibility/feasible.h"
#include "mediator/unfold.h"

namespace ucqn {
namespace {

void BM_UnfoldPositive(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- A(x).
    V(x) :- B(x).
  )");
  std::string body = "V(a)";
  for (int i = 1; i < k; ++i) body += ", V(a)";
  UnionQuery q = MustParseUnionQuery("Q(a) :- " + body + ".");
  UnfoldOptions options;
  options.max_disjuncts = 100000;
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    UnfoldResult result = Unfold(q, views, options);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    disjuncts = result.query.size();
  }
  state.counters["view_literals"] = static_cast<double>(k);
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UnfoldPositive)->DenseRange(1, 10, 1);

void BM_UnfoldNegated(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // Each negated view rule has 3 literals: the product grows 3^rules.
  ViewRegistry views = ViewRegistry::MustParse(
      "V(x) :- A(x), B(x), C(x).");
  std::string body = "R(a)";
  for (int i = 0; i < k; ++i) body += ", not V(a)";
  UnionQuery q = MustParseUnionQuery("Q(a) :- " + body + ".");
  UnfoldOptions options;
  options.max_disjuncts = 100000;
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    UnfoldResult result = Unfold(q, views, options);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
    disjuncts = result.query.size();
  }
  state.counters["negated_views"] = static_cast<double>(k);
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UnfoldNegated)->DenseRange(1, 8, 1);

void BM_UnfoldThenCompile(benchmark::State& state) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Subjects(s, d) :- SubjectA(s, d).
    Subjects(s, d) :- SubjectB(s, d).
    Usable(s) :- Consent(s).
    WithImage(s, i) :- Image(s, i).
  )");
  Catalog catalog = Catalog::MustParse(R"(
    relation SubjectA/2: oo
    relation SubjectB/2: oo
    relation Consent/1: i
    relation Image/2: io
  )");
  UnionQuery client = MustParseUnionQuery(
      "Q(s, d, i) :- Subjects(s, d), Usable(s), WithImage(s, i).");
  bool feasible = false;
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    UnfoldResult unfolded = Unfold(client, views);
    if (!unfolded.ok) {
      state.SkipWithError(unfolded.error.c_str());
      return;
    }
    disjuncts = unfolded.query.size();
    feasible = IsFeasible(unfolded.query, catalog);
  }
  state.counters["plan_disjuncts"] = static_cast<double>(disjuncts);
  state.counters["feasible"] = feasible ? 1.0 : 0.0;
}
BENCHMARK(BM_UnfoldThenCompile);

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
