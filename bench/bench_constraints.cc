// E9 — Example 6 / Section 4.2: integrity constraints let a *semantic
// optimizer* discard unanswerable disjuncts at compile time; without them
// the same guarantee is only discovered at runtime by ANSWER*.
//
// Series:
//   * BM_CompileWithConstraints: Compile() with/without the foreign key on
//     the running example — with constraints the infeasible query becomes
//     feasible (counter `feasible`), for free at compile time.
//   * BM_RuntimeVsCompileTimePruning: total source calls to obtain a
//     certified-complete answer, comparing (a) constraint-pruned plans vs
//     (b) unpruned ANSWER* — pruning also saves runtime work.
//   * BM_RefutationChase: cost of the bounded chase as dependency chains
//     grow — stays polynomial.

#include <benchmark/benchmark.h>

#include <random>

#include "ast/parser.h"
#include "constraints/inclusion.h"
#include "eval/answer_star.h"
#include "feasibility/compile.h"
#include "gen/random_instance.h"

namespace ucqn {
namespace {

Catalog RunningCatalog() {
  return Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
}

UnionQuery RunningQuery() {
  return MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
}

void BM_CompileWithConstraints(benchmark::State& state) {
  const bool with = state.range(0) != 0;
  Catalog catalog = RunningCatalog();
  UnionQuery query = RunningQuery();
  ConstraintSet constraints = ConstraintSet::MustParse("R[1] c= S[0]");
  CompileOptions options;
  if (with) options.constraints = &constraints;
  bool feasible = false;
  for (auto _ : state) {
    CompileResult result = Compile(query, catalog, options);
    feasible = result.feasible;
    benchmark::DoNotOptimize(result);
  }
  state.counters["with_constraints"] = with ? 1.0 : 0.0;
  state.counters["feasible"] = feasible ? 1.0 : 0.0;
}
BENCHMARK(BM_CompileWithConstraints)->Arg(0)->Arg(1);

void BM_RuntimeVsCompileTimePruning(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  Catalog catalog = RunningCatalog();
  UnionQuery query = RunningQuery();
  ConstraintSet constraints = ConstraintSet::MustParse("R[1] c= S[0]");
  UnionQuery effective =
      pruned ? PruneWithConstraints(query, constraints) : query;

  std::mt19937 rng(8);
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 16;
  instance_options.tuples_per_relation = 48;
  Database db = RandomDatabaseWithInclusion(&rng, catalog, instance_options,
                                            "R", 1, "S", 0);
  DatabaseSource source(&db, &catalog);
  std::uint64_t complete = 0, total = 0;
  for (auto _ : state) {
    source.ResetStats();
    AnswerStarReport report = AnswerStar(effective, catalog, &source);
    if (report.complete) ++complete;
    ++total;
    benchmark::DoNotOptimize(report);
  }
  state.counters["pruned"] = pruned ? 1.0 : 0.0;
  state.counters["frac_complete"] =
      static_cast<double>(complete) / static_cast<double>(total);
  state.counters["source_calls_per_query"] =
      static_cast<double>(source.stats().calls);
  state.counters["tuples_per_query"] =
      static_cast<double>(source.stats().tuples_returned);
}
BENCHMARK(BM_RuntimeVsCompileTimePruning)->Arg(0)->Arg(1);

void BM_RefutationChase(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  // R0[1] ⊆ R1[0], R1[0] ⊆ R2[0], ..., R_{n-1}[0] ⊆ R_n[0]; the query
  // negates the last link, so the chase must walk the whole chain.
  ConstraintSet constraints;
  constraints.Add(InclusionDependency("R0", {1}, "R1", {0}));
  for (int i = 1; i < chain; ++i) {
    constraints.Add(InclusionDependency("R" + std::to_string(i), {0},
                                        "R" + std::to_string(i + 1), {0}));
  }
  ConjunctiveQuery q = MustParseRule(
      "Q(x) :- R0(x, z), not R" + std::to_string(chain) + "(z).");
  bool refuted = false;
  for (auto _ : state) {
    refuted = RefutedByConstraints(q, constraints);
    benchmark::DoNotOptimize(refuted);
  }
  if (!refuted) state.SkipWithError("chase failed to refute");
  state.counters["chain"] = static_cast<double>(chain);
  state.SetComplexityN(chain);
}
BENCHMARK(BM_RefutationChase)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity();

}  // namespace
}  // namespace ucqn

BENCHMARK_MAIN();
