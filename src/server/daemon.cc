#include "server/daemon.h"

#include <sstream>
#include <utility>

#include "server/snapshot.h"

namespace ucqn {

QueryDaemon::QueryDaemon(const Catalog* catalog, Source* backend,
                         Options options)
    : options_(std::move(options)),
      catalog_(catalog),
      backend_(backend),
      store_(options_.cache),
      tenants_(options_.default_quota),
      admission_(options_.admission) {}

ServiceResponse QueryDaemon::Submit(const ServiceRequest& request) {
  if (request.op != ServiceRequest::Op::kQuery) return RunAdminOp(request);

  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = request.include_answers;

  // Tenant quota first (cheap, per-tenant), then the global admission
  // gate — a tenant over its own cap never occupies a queue slot that a
  // within-quota tenant could use.
  if (!tenants_.TryEnter(request.tenant)) {
    response.status = ServiceResponse::Status::kQuotaRefused;
    response.error = "tenant over max_concurrent quota";
    return response;
  }
  switch (admission_.Enter()) {
    case AdmissionController::Outcome::kShed:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kShed;
      response.error = "admission queue full";
      return response;
    case AdmissionController::Outcome::kDraining:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kDraining;
      response.error = "daemon is draining";
      return response;
    case AdmissionController::Outcome::kAdmitted:
      break;
  }

  SessionEnv env;
  env.catalog = catalog_;
  env.backend = backend_;
  env.shared_cache = &store_;
  env.stats = &stats_;
  env.stats_mu = &stats_mu_;
  env.runtime = options_.runtime;
  env.disjunct_concurrency = options_.disjunct_concurrency;
  env.operator_totals = &operator_totals_;
  env.adaptive_cost_model = options_.adaptive_cost_model;
  env.fanout_feedback = options_.fanout_feedback;
  response = RunQuerySession(env, request, tenants_.QuotaFor(request.tenant));

  admission_.Leave();
  tenants_.Leave(request.tenant);
  {
    std::lock_guard<std::mutex> lock(served_mu_);
    ++queries_served_;
  }
  return response;
}

std::string QueryDaemon::SubmitLine(const std::string& line) {
  std::string error;
  std::optional<ServiceRequest> request = ParseServiceRequest(line, &error);
  if (!request) {
    ServiceResponse response;
    response.status = ServiceResponse::Status::kError;
    response.error = "bad request: " + error;
    return response.ToJsonLine();
  }
  return Submit(*request).ToJsonLine();
}

ServiceResponse QueryDaemon::RunAdminOp(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = false;
  switch (request.op) {
    case ServiceRequest::Op::kStats:
      response.payload_json = StatusJson();
      break;
    case ServiceRequest::Op::kInvalidate: {
      const std::size_t before = store_.size();
      if (request.relation.empty()) {
        store_.InvalidateAll();
      } else {
        store_.InvalidateRelation(request.relation);
      }
      std::ostringstream payload;
      payload << "{\"dropped\": " << (before - store_.size()) << "}";
      response.payload_json = payload.str();
      break;
    }
    case ServiceRequest::Op::kSnapshot: {
      std::string error;
      if (!SaveSnapshots(&error)) {
        response.status = ServiceResponse::Status::kError;
        response.error = error;
      } else {
        response.payload_json =
            "{\"snapshot_dir\": \"" + options_.snapshot_dir + "\"}";
      }
      break;
    }
    case ServiceRequest::Op::kQuery:
      break;  // unreachable: Submit routes queries before this switch
  }
  return response;
}

bool QueryDaemon::LoadSnapshots(SnapshotLoadReport* report,
                                std::string* error) {
  if (options_.snapshot_dir.empty()) {
    if (report != nullptr) *report = {};
    return true;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  return LoadSnapshotFiles(options_.snapshot_dir, &store_, &stats_, report,
                           error);
}

bool QueryDaemon::SaveSnapshots(std::string* error) {
  if (options_.snapshot_dir.empty()) {
    if (error != nullptr) *error = "no --snapshot-dir configured";
    return false;
  }
  // Copy the catalog under its lock so a concurrent session's Observe
  // never races the serializer; the cache store locks per shard itself.
  StatsCatalog stats_copy;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_copy = stats_;
  }
  return SaveSnapshotFiles(options_.snapshot_dir, store_, stats_copy, error);
}

void QueryDaemon::Drain() {
  admission_.BeginDrain();
  admission_.WaitIdle();
  if (!options_.snapshot_dir.empty()) {
    std::string error;
    SaveSnapshots(&error);  // best effort: drain must complete regardless
  }
}

std::uint64_t QueryDaemon::queries_served() const {
  std::lock_guard<std::mutex> lock(served_mu_);
  return queries_served_;
}

RuntimeStats QueryDaemon::operator_totals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return operator_totals_;
}

std::string QueryDaemon::StatusJson() const {
  std::size_t stats_relations = 0;
  RuntimeStats op;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_relations = stats_.size();
    op = operator_totals_;
  }
  std::ostringstream out;
  out << "{\"admission\": " << admission_.ToJson()
      << ", \"tenants\": " << tenants_.ToJson()
      << ", \"cache\": " << store_.ToJson()
      << ", \"stats_relations\": " << stats_relations
      << ", \"operator\": {\"disjuncts\": " << op.disjuncts_executed
      << ", \"morsels\": " << op.morsels
      << ", \"antijoin_build\": " << op.antijoin_build_tuples << "}"
      << ", \"queries_served\": " << queries_served() << "}";
  return out.str();
}

}  // namespace ucqn
