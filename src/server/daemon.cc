#include "server/daemon.h"

#include <sstream>
#include <utility>
#include <vector>

#include "ast/parser.h"
#include "feasibility/compile.h"
#include "server/snapshot.h"

namespace ucqn {

QueryDaemon::QueryDaemon(const Catalog* catalog, Source* backend,
                         Options options)
    : options_(std::move(options)),
      catalog_(catalog),
      backend_(backend),
      store_(options_.cache),
      tenants_(options_.default_quota),
      admission_(options_.admission) {}

ServiceResponse QueryDaemon::Submit(const ServiceRequest& request) {
  if (request.op == ServiceRequest::Op::kDelta) return RunDeltaOp(request);
  if (request.op != ServiceRequest::Op::kQuery) return RunAdminOp(request);

  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = request.include_answers;

  // Tenant quota first (cheap, per-tenant), then the global admission
  // gate — a tenant over its own cap never occupies a queue slot that a
  // within-quota tenant could use.
  if (!tenants_.TryEnter(request.tenant)) {
    response.status = ServiceResponse::Status::kQuotaRefused;
    response.error = "tenant over max_concurrent quota";
    return response;
  }
  switch (admission_.Enter()) {
    case AdmissionController::Outcome::kShed:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kShed;
      response.error = "admission queue full";
      return response;
    case AdmissionController::Outcome::kDraining:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kDraining;
      response.error = "daemon is draining";
      return response;
    case AdmissionController::Outcome::kAdmitted:
      break;
  }

  SessionEnv env;
  env.catalog = catalog_;
  env.backend = backend_;
  env.shared_cache = &store_;
  env.stats = &stats_;
  env.stats_mu = &stats_mu_;
  env.runtime = options_.runtime;
  env.disjunct_concurrency = options_.disjunct_concurrency;
  env.operator_totals = &operator_totals_;
  env.adaptive_cost_model = options_.adaptive_cost_model;
  env.fanout_feedback = options_.fanout_feedback;
  {
    // Sessions read the database lock-free through backend_; a delta op
    // holds this exclusively while it moves the data.
    std::shared_lock<std::shared_mutex> backend_lock(backend_mu_);
    response = RunQuerySession(env, request, tenants_.QuotaFor(request.tenant));
    if (request.standing &&
        response.status == ServiceResponse::Status::kOk) {
      RegisterStanding(request, &response);
    }
  }

  admission_.Leave();
  tenants_.Leave(request.tenant);
  {
    std::lock_guard<std::mutex> lock(served_mu_);
    ++queries_served_;
  }
  return response;
}

std::string QueryDaemon::SubmitLine(const std::string& line) {
  std::string error;
  std::optional<ServiceRequest> request = ParseServiceRequest(line, &error);
  if (!request) {
    ServiceResponse response;
    response.status = ServiceResponse::Status::kError;
    response.error = "bad request: " + error;
    return response.ToJsonLine();
  }
  return Submit(*request).ToJsonLine();
}

ServiceResponse QueryDaemon::RunAdminOp(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = false;
  switch (request.op) {
    case ServiceRequest::Op::kStats:
      response.payload_json = StatusJson();
      break;
    case ServiceRequest::Op::kInvalidate: {
      const std::size_t before = store_.size();
      if (request.relation.empty()) {
        store_.InvalidateAll();
      } else {
        store_.InvalidateRelation(request.relation);
      }
      // An invalidation says "this source changed" — the observed
      // latencies and fanouts are as stale as the cached tuples, so the
      // stats catalog forgets the relation too and the adaptive model
      // re-prices it from defaults instead of planning against
      // pre-update statistics.
      std::size_t stats_dropped = 0;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (request.relation.empty()) {
          stats_dropped = stats_.size();
          stats_ = StatsCatalog{};
        } else {
          stats_dropped = stats_.InvalidateRelation(request.relation);
        }
      }
      std::ostringstream payload;
      payload << "{\"dropped\": " << (before - store_.size())
              << ", \"stats_dropped\": " << stats_dropped << "}";
      response.payload_json = payload.str();
      break;
    }
    case ServiceRequest::Op::kSnapshot: {
      std::string error;
      if (!SaveSnapshots(&error)) {
        response.status = ServiceResponse::Status::kError;
        response.error = error;
      } else {
        response.payload_json =
            "{\"snapshot_dir\": \"" + options_.snapshot_dir + "\"}";
      }
      break;
    }
    case ServiceRequest::Op::kAnswers: {
      const std::string key = request.tenant + "/" + request.id;
      std::lock_guard<std::mutex> lock(standing_mu_);
      auto it = standing_.find(key);
      if (it == standing_.end()) {
        response.status = ServiceResponse::Status::kError;
        response.error = "no standing query \"" + key + "\"";
      } else if (it->second.standing == nullptr) {
        response.status = ServiceResponse::Status::kError;
        response.error = it->second.error;
      } else {
        StandingAnswers answers = it->second.standing->Answers();
        response.include_answers = request.include_answers;
        response.under = std::move(answers.under);
        response.over = std::move(answers.over);
        response.complete = answers.complete;
      }
      break;
    }
    case ServiceRequest::Op::kQuery:
    case ServiceRequest::Op::kDelta:
      break;  // unreachable: Submit routes these before this switch
  }
  return response;
}

RuntimeOptions QueryDaemon::MaintenanceRuntime() {
  RuntimeOptions runtime = options_.runtime;
  runtime.shared_cache = &store_;
  runtime.metering = true;
  // Standing maintenance is daemon housekeeping, not a tenant request:
  // budgets would leave a chain half-maintained.
  runtime.budget = CallBudget{};
  return runtime;
}

void QueryDaemon::RegisterStanding(const ServiceRequest& request,
                                   ServiceResponse* response) {
  if (request.id.empty()) {
    response->status = ServiceResponse::Status::kError;
    response->error = "a standing query needs an \"id\" to register under";
    return;
  }
  // Mirror the session's pipeline exactly (parse → cover → compile) so
  // the maintained plans are the ones the session just ran; the shared
  // cache is hot with this session's calls, so the build mostly replays
  // them without touching the backend.
  std::string error;
  std::optional<UnionQuery> query = ParseUnionQuery(request.query, &error);
  if (!query || !catalog_->CoversQuery(*query, &error)) {
    response->status = ServiceResponse::Status::kError;
    response->error = "standing registration failed: " + error;
    return;
  }
  CompileResult compiled = Compile(*query, *catalog_, {});
  SourceStack stack(backend_, MaintenanceRuntime());
  std::unique_ptr<StandingQuery> standing = StandingQuery::Build(
      compiled.analyzed_query, *catalog_, stack.source(), &error);
  if (standing == nullptr) {
    response->status = ServiceResponse::Status::kError;
    response->error = "standing registration failed: " + error;
    return;
  }
  const std::string key = request.tenant + "/" + request.id;
  std::lock_guard<std::mutex> lock(standing_mu_);
  standing_[key] =
      StandingEntry{compiled.analyzed_query, std::move(standing), ""};
}

ServiceResponse QueryDaemon::RunDeltaOp(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = false;

  if (options_.database == nullptr) {
    response.status = ServiceResponse::Status::kError;
    response.error =
        "no mutable database attached (delta feeds need an in-process "
        "backend)";
    return response;
  }
  const RelationSchema* schema = catalog_->Find(request.relation);
  if (schema == nullptr) {
    response.status = ServiceResponse::Status::kError;
    response.error = "unknown relation \"" + request.relation + "\"";
    return response;
  }
  for (const std::vector<Tuple>* batch :
       {&request.insert_tuples, &request.delete_tuples}) {
    for (const Tuple& tuple : *batch) {
      if (tuple.size() != schema->arity()) {
        response.status = ServiceResponse::Status::kError;
        response.error = "delta arity mismatch for " + request.relation +
                         ": got " + std::to_string(tuple.size()) +
                         ", declared " + std::to_string(schema->arity());
        return response;
      }
    }
  }

  // A delta is a write-side request: it pays the same tenant quota and
  // admission toll as a query, so update feeds cannot starve readers past
  // what the admission policy allows.
  if (!tenants_.TryEnter(request.tenant)) {
    response.status = ServiceResponse::Status::kQuotaRefused;
    response.error = "tenant over max_concurrent quota";
    return response;
  }
  switch (admission_.Enter()) {
    case AdmissionController::Outcome::kShed:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kShed;
      response.error = "admission queue full";
      return response;
    case AdmissionController::Outcome::kDraining:
      tenants_.Leave(request.tenant);
      response.status = ServiceResponse::Status::kDraining;
      response.error = "daemon is draining";
      return response;
    case AdmissionController::Outcome::kAdmitted:
      break;
  }

  {
    std::unique_lock<std::shared_mutex> backend_lock(backend_mu_);
    RelationDelta delta;
    delta.relation = request.relation;
    delta.inserts = request.insert_tuples;
    delta.deletes = request.delete_tuples;
    std::string error;
    std::optional<AppliedDelta> applied =
        ApplyDelta(options_.database, delta, &error);
    if (!applied.has_value()) {
      response.status = ServiceResponse::Status::kError;
      response.error = error;
    } else {
      // Scoped invalidation: only entries a changed tuple can match are
      // dropped. Surviving entries are still exact — their keyed calls
      // cannot have gained or lost any of the changed tuples.
      const std::size_t cache_dropped =
          store_.InvalidateDelta(request.relation, applied->ChangedTuples());

      std::uint64_t physical_calls = 0;
      std::size_t standing_updated = 0;
      if (!applied->empty()) {
        const std::vector<AppliedDelta> batch{*applied};
        std::lock_guard<std::mutex> lock(standing_mu_);
        for (auto& [key, entry] : standing_) {
          if (entry.standing == nullptr) continue;
          if (entry.standing->relations().count(request.relation) == 0) {
            continue;
          }
          SourceStack stack(backend_, MaintenanceRuntime());
          std::string maintain_error;
          if (!entry.standing->ApplyDeltas(batch, stack.source(),
                                           &maintain_error)) {
            // Maintenance left the frontiers unspecified; fall back to a
            // from-scratch rebuild, and park the entry in an error state
            // if even that fails (the next `answers` op reports it).
            std::string rebuild_error;
            entry.standing = StandingQuery::Build(
                entry.query, *catalog_, stack.source(), &rebuild_error);
            if (entry.standing == nullptr) {
              entry.error = "maintenance failed (" + maintain_error +
                            "); rebuild failed: " + rebuild_error;
              physical_calls += stack.stats().source_calls;
              continue;
            }
          }
          ++standing_updated;
          physical_calls += stack.stats().source_calls;
        }
      }

      std::ostringstream payload;
      payload << "{\"inserted\": " << applied->inserted.size()
              << ", \"deleted\": " << applied->deleted.size()
              << ", \"cache_dropped\": " << cache_dropped
              << ", \"standing_updated\": " << standing_updated
              << ", \"physical_calls\": " << physical_calls << "}";
      response.payload_json = payload.str();
    }
  }

  admission_.Leave();
  tenants_.Leave(request.tenant);
  return response;
}

std::size_t QueryDaemon::standing_count() const {
  std::lock_guard<std::mutex> lock(standing_mu_);
  return standing_.size();
}

bool QueryDaemon::LoadSnapshots(SnapshotLoadReport* report,
                                std::string* error) {
  if (options_.snapshot_dir.empty()) {
    if (report != nullptr) *report = {};
    return true;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  return LoadSnapshotFiles(options_.snapshot_dir, &store_, &stats_, report,
                           error);
}

bool QueryDaemon::SaveSnapshots(std::string* error) {
  if (options_.snapshot_dir.empty()) {
    if (error != nullptr) *error = "no --snapshot-dir configured";
    return false;
  }
  // Copy the catalog under its lock so a concurrent session's Observe
  // never races the serializer; the cache store locks per shard itself.
  StatsCatalog stats_copy;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_copy = stats_;
  }
  return SaveSnapshotFiles(options_.snapshot_dir, store_, stats_copy, error);
}

void QueryDaemon::Drain() {
  admission_.BeginDrain();
  admission_.WaitIdle();
  if (!options_.snapshot_dir.empty()) {
    std::string error;
    SaveSnapshots(&error);  // best effort: drain must complete regardless
  }
}

std::uint64_t QueryDaemon::queries_served() const {
  std::lock_guard<std::mutex> lock(served_mu_);
  return queries_served_;
}

RuntimeStats QueryDaemon::operator_totals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return operator_totals_;
}

std::string QueryDaemon::StatusJson() const {
  std::size_t stats_relations = 0;
  RuntimeStats op;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_relations = stats_.size();
    op = operator_totals_;
  }
  std::ostringstream out;
  out << "{\"admission\": " << admission_.ToJson()
      << ", \"tenants\": " << tenants_.ToJson()
      << ", \"cache\": " << store_.ToJson()
      << ", \"stats_relations\": " << stats_relations
      << ", \"operator\": {\"disjuncts\": " << op.disjuncts_executed
      << ", \"morsels\": " << op.morsels
      << ", \"antijoin_build\": " << op.antijoin_build_tuples << "}"
      << ", \"standing\": " << standing_count()
      << ", \"queries_served\": " << queries_served() << "}";
  return out.str();
}

}  // namespace ucqn
