#ifndef UCQN_SERVER_LISTENER_H_
#define UCQN_SERVER_LISTENER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/daemon.h"

namespace ucqn {

// The daemon's transport front: a Unix-domain stream socket speaking the
// line-delimited protocol. One accept loop, one thread per connection,
// responses written strictly in each connection's request order — the
// concurrency story lives entirely in QueryDaemon::Submit, which every
// connection thread calls directly. Local-socket-only is deliberate: the
// daemon multiplexes *sessions*, not networks; filesystem permissions on
// the socket path are the access boundary.
class SocketListener {
 public:
  // `daemon` must outlive the listener.
  explicit SocketListener(QueryDaemon* daemon) : daemon_(daemon) {}
  ~SocketListener() { Stop(); }

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds `path` (unlinking a stale socket file first) and starts the
  // accept loop in a background thread. Returns false and sets `*error`
  // when the bind fails.
  bool Start(const std::string& path, std::string* error);

  // Stops accepting, shuts down live connections, joins every thread,
  // and unlinks the socket file. Idempotent. In-flight Submits finish
  // (their sockets are shut down, so the response write may fail, but
  // the daemon-side work completes) — call daemon->Drain() first for a
  // graceful close.
  void Stop();

  bool running() const { return running_.load(); }
  const std::string& path() const { return path_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  QueryDaemon* daemon_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;          // guarded by conn_mu_
  std::vector<std::thread> conn_threads_;  // guarded by conn_mu_
};

}  // namespace ucqn

#endif  // UCQN_SERVER_LISTENER_H_
