#ifndef UCQN_SERVER_SESSION_H_
#define UCQN_SERVER_SESSION_H_

#include <mutex>

#include "cost/stats_catalog.h"
#include "runtime/shared_cache.h"
#include "runtime/source_stack.h"
#include "schema/catalog.h"
#include "server/protocol.h"
#include "server/tenant.h"

namespace ucqn {

// Everything one query session needs from the daemon, by reference: the
// schema, the transport, and the process-wide state every session
// shares. The daemon owns all of it; sessions are stateless workers.
struct SessionEnv {
  const Catalog* catalog = nullptr;
  Source* backend = nullptr;
  // Process-wide cache store; may be null (each session then runs cold).
  SharedCacheStore* shared_cache = nullptr;
  // Observed-stats catalog feeding the adaptive cost model, and its lock:
  // StatsCatalog is not internally synchronized, and daemon sessions
  // write it concurrently.
  StatsCatalog* stats = nullptr;
  std::mutex* stats_mu = nullptr;
  // Template for each session's SourceStack: retry policy, parallelism,
  // pipeline depth. The session overrides shared_cache, forces metering
  // (per-request physical-call accounting), and folds the tenant quota
  // into the budget.
  RuntimeOptions runtime;
  // How many disjunct chains each session's operator-DAG execution may
  // overlap per round (ExecutionOptions::disjunct_concurrency); 1 =
  // sequential disjuncts.
  std::size_t disjunct_concurrency = 1;
  // Process-wide accumulator of executor-side operator-DAG counters
  // (disjuncts/morsels/anti-join build tuples), merged under `stats_mu`
  // after every session — the daemon's `stats` op reports it. May be
  // null; requires `stats_mu` when set.
  RuntimeStats* operator_totals = nullptr;
  // Price patterns/orderings from the observed stats instead of the
  // static heuristics. Each session plans against a point-in-time *copy*
  // of the catalog taken under stats_mu — the model reads it lock-free
  // during planning while other sessions keep observing.
  bool adaptive_cost_model = false;
  // With the adaptive model, let observed result fanouts stand in for the
  // fallback cardinality: the session's estimates gain each uncovered
  // relation's observed scan fanout (CardinalityEstimates::
  // ApplyObservedFanouts) and pattern pricing prefers per-pattern
  // observed fanouts (AdaptiveCostOptions::use_observed_fanouts). Off
  // reproduces the pre-feedback planning; ignored by the static model.
  bool fanout_feedback = true;
};

// Runs one already-admitted query request end to end: parse, schema
// check, compile, ANSWER* against a fresh SourceStack view over the
// shared store, then feed the observed metrics back into env.stats.
// Never throws; all failure modes land in the response's status/error.
ServiceResponse RunQuerySession(const SessionEnv& env,
                                const ServiceRequest& request,
                                const TenantQuota& quota);

}  // namespace ucqn

#endif  // UCQN_SERVER_SESSION_H_
