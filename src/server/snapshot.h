#ifndef UCQN_SERVER_SNAPSHOT_H_
#define UCQN_SERVER_SNAPSHOT_H_

#include <string>

#include "cost/stats_catalog.h"
#include "runtime/shared_cache.h"

namespace ucqn {

// JSON spill/restore of the process-wide runtime state, so a restarted
// daemon starts warm: the SharedCacheStore's entries (keys, tuples,
// remaining TTLs) and the StatsCatalog feeding the adaptive cost model.
// Restart-warmth is the whole point of keeping the mediator resident —
// a snapshot carries it across the one thing a resident process cannot
// survive, its own restart.
//
// TTLs are persisted as *remaining* lifetime: the store's clock epoch is
// arbitrary (steady or simulated), so absolute stamps would be
// meaningless in the next process. Restored entries therefore age from
// the moment of restore, which under-expires by at most the downtime —
// sound for a cache whose invalidation story is explicit
// (InvalidateRelation), and exactly what "restart warm" asks for.

// Cache keys are persisted *decoded* — the store's packed dictionary-id
// keys are process-local, so each entry carries its call signature as
// strings (pattern word + per-slot input values) and the restoring
// process re-encodes it against its own TermDictionary. Warm restarts
// therefore survive dictionary renumbering. Opaque keys (not minted by
// PackedSourceCacheKey) travel verbatim under "key" instead.
//
// {"entries": [{"pattern": "io", "inputs": ["a", null], "relation": "R",
//               "ttl_remaining_us": 0,
//               "tuples": [["a", "b"], ["c", null]]}, ...]}
// Input cells: string = constant, null = no value at that slot, true =
// the distinguished Δ-null.
std::string CacheSnapshotToJson(const SharedCacheStore& store);

// Restores CacheSnapshotToJson output into `store` (entries append; call
// on a fresh store for an exact restore). Constants and nulls
// round-trip; capacity/budget limits of the receiving store apply.
// Returns false and sets `*error` on malformed input.
bool RestoreCacheSnapshot(const std::string& json, SharedCacheStore* store,
                          std::string* error);

// File-level wrappers used by the daemon: `dir`/cache.json and
// `dir`/stats.json. Save creates `dir` if needed and overwrites both
// files; Load tolerates missing files (a first boot) and reports how
// much state it found.
struct SnapshotLoadReport {
  bool cache_loaded = false;
  bool stats_loaded = false;
  std::size_t cache_entries = 0;
  std::size_t stats_relations = 0;
};

bool SaveSnapshotFiles(const std::string& dir, const SharedCacheStore& store,
                       const StatsCatalog& stats, std::string* error);
bool LoadSnapshotFiles(const std::string& dir, SharedCacheStore* store,
                       StatsCatalog* stats, SnapshotLoadReport* report,
                       std::string* error);

}  // namespace ucqn

#endif  // UCQN_SERVER_SNAPSHOT_H_
