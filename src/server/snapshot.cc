#include "server/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace ucqn {

namespace {

bool ReadFileTo(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFileFrom(const std::string& path, const std::string& text,
                   std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot write " + path;
    return false;
  }
  out << text << "\n";
  out.close();
  if (!out) {
    *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace

std::string CacheSnapshotToJson(const SharedCacheStore& store) {
  JsonValue out = JsonValue::Object();
  JsonValue entries = JsonValue::Array();
  for (const SharedCacheStore::ExportedEntry& entry : store.ExportEntries()) {
    JsonValue e = JsonValue::Object();
    if (entry.key.empty()) {
      // Decoded call signature: the store unpacked its id key into
      // strings, so the snapshot is portable across processes whose
      // dictionaries numbered the constants differently. Input cells:
      // string = constant, JSON null = no value at that slot (output
      // slot), true = the distinguished Δ-null.
      e.Set("pattern", JsonValue::String(entry.pattern_word));
      JsonValue inputs = JsonValue::Array();
      for (const std::optional<Term>& slot : entry.inputs) {
        if (!slot.has_value()) {
          inputs.Append(JsonValue::Null());
        } else if (slot->IsNull()) {
          inputs.Append(JsonValue::Bool(true));
        } else {
          inputs.Append(JsonValue::String(slot->name()));
        }
      }
      e.Set("inputs", std::move(inputs));
    } else {
      // An opaque key (not minted by PackedSourceCacheKey) travels
      // verbatim — it can only ever hit again in a store that looks it
      // up verbatim too.
      e.Set("key", JsonValue::String(entry.key));
    }
    e.Set("relation", JsonValue::String(entry.relation));
    e.Set("ttl_remaining_us",
          JsonValue::Number(static_cast<double>(entry.ttl_remaining_micros)));
    JsonValue tuples = JsonValue::Array();
    for (const Tuple& tuple : entry.tuples) {
      JsonValue row = JsonValue::Array();
      for (const Term& term : tuple) {
        row.Append(term.IsNull() ? JsonValue::Null()
                                 : JsonValue::String(term.name()));
      }
      tuples.Append(std::move(row));
    }
    e.Set("tuples", std::move(tuples));
    entries.Append(std::move(e));
  }
  out.Set("entries", std::move(entries));
  return out.Dump();
}

bool RestoreCacheSnapshot(const std::string& json, SharedCacheStore* store,
                          std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> parsed = ParseJson(json, &parse_error);
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!parsed) return fail("malformed cache snapshot: " + parse_error);
  if (!parsed->is_object()) return fail("cache snapshot must be an object");
  const JsonValue* entries = parsed->Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return fail("cache snapshot lacks an \"entries\" array");
  }
  for (const JsonValue& e : entries->items()) {
    if (!e.is_object()) return fail("snapshot entry must be an object");
    SharedCacheStore::ExportedEntry entry;
    entry.key = e.GetString("key");
    entry.relation = e.GetString("relation");
    if (entry.relation.empty()) {
      return fail("snapshot entry lacks key/relation");
    }
    if (entry.key.empty()) {
      // Decoded form: pattern word plus per-slot input values. The
      // store re-encodes these against the current dictionary.
      const JsonValue* pattern = e.Find("pattern");
      const JsonValue* slots = e.Find("inputs");
      if (pattern == nullptr || !pattern->is_string() || slots == nullptr ||
          !slots->is_array()) {
        return fail("snapshot entry lacks key/relation");
      }
      entry.pattern_word = pattern->AsString();
      if (entry.pattern_word.empty()) {
        return fail("snapshot entry has an empty pattern word");
      }
      for (const JsonValue& cell : slots->items()) {
        if (cell.is_null()) {
          entry.inputs.emplace_back(std::nullopt);
        } else if (cell.is_bool() && cell.AsBool()) {
          entry.inputs.emplace_back(Term::Null());
        } else if (cell.is_string()) {
          entry.inputs.emplace_back(Term::Constant(cell.AsString()));
        } else {
          return fail("snapshot input cells must be strings, true, or null");
        }
      }
    }
    const double ttl = e.GetNumber("ttl_remaining_us", 0.0);
    if (ttl < 0) return fail("negative ttl_remaining_us");
    entry.ttl_remaining_micros = static_cast<std::uint64_t>(ttl);
    const JsonValue* tuples = e.Find("tuples");
    if (tuples == nullptr || !tuples->is_array()) {
      return fail("snapshot entry lacks a \"tuples\" array");
    }
    for (const JsonValue& row : tuples->items()) {
      if (!row.is_array()) return fail("snapshot tuple must be an array");
      Tuple tuple;
      for (const JsonValue& cell : row.items()) {
        if (cell.is_null()) {
          tuple.push_back(Term::Null());
        } else if (cell.is_string()) {
          tuple.push_back(Term::Constant(cell.AsString()));
        } else {
          return fail("snapshot tuple cells must be strings or null");
        }
      }
      entry.tuples.push_back(std::move(tuple));
    }
    store->RestoreEntry(entry);
  }
  return true;
}

bool SaveSnapshotFiles(const std::string& dir, const SharedCacheStore& store,
                       const StatsCatalog& stats, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  std::string why;
  if (!WriteFileFrom(dir + "/cache.json", CacheSnapshotToJson(store), &why) ||
      !WriteFileFrom(dir + "/stats.json", stats.ToJson(), &why)) {
    if (error != nullptr) *error = why;
    return false;
  }
  return true;
}

bool LoadSnapshotFiles(const std::string& dir, SharedCacheStore* store,
                       StatsCatalog* stats, SnapshotLoadReport* report,
                       std::string* error) {
  SnapshotLoadReport loaded;
  std::string text;
  if (ReadFileTo(dir + "/cache.json", &text)) {
    if (!RestoreCacheSnapshot(text, store, error)) return false;
    loaded.cache_loaded = true;
    loaded.cache_entries = store->size();
  }
  if (ReadFileTo(dir + "/stats.json", &text)) {
    std::string why;
    std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(text, &why);
    if (!parsed) {
      if (error != nullptr) *error = "bad stats snapshot: " + why;
      return false;
    }
    // Merge rather than assign, so a pre-seeded catalog keeps its state.
    for (const auto& [relation, split] : parsed->patterns()) {
      for (const auto& [word, entry] : split) {
        stats->Record(relation, word, entry);
      }
    }
    for (const auto& [relation, entry] : parsed->relations()) {
      // Pooled-only relations (pre-split snapshots) have no keyed rows;
      // keyed ones were already folded into the pool by Record above.
      if (parsed->patterns().count(relation) == 0) {
        stats->Record(relation, entry);
      }
    }
    loaded.stats_loaded = true;
    loaded.stats_relations = parsed->size();
  }
  if (report != nullptr) *report = loaded;
  return true;
}

}  // namespace ucqn
