#include "server/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace ucqn {

namespace {

bool ReadFileTo(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFileFrom(const std::string& path, const std::string& text,
                   std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot write " + path;
    return false;
  }
  out << text << "\n";
  out.close();
  if (!out) {
    *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace

std::string CacheSnapshotToJson(const SharedCacheStore& store) {
  JsonValue out = JsonValue::Object();
  JsonValue entries = JsonValue::Array();
  for (const SharedCacheStore::ExportedEntry& entry : store.ExportEntries()) {
    JsonValue e = JsonValue::Object();
    e.Set("key", JsonValue::String(entry.key));
    e.Set("relation", JsonValue::String(entry.relation));
    e.Set("ttl_remaining_us",
          JsonValue::Number(static_cast<double>(entry.ttl_remaining_micros)));
    JsonValue tuples = JsonValue::Array();
    for (const Tuple& tuple : entry.tuples) {
      JsonValue row = JsonValue::Array();
      for (const Term& term : tuple) {
        row.Append(term.IsNull() ? JsonValue::Null()
                                 : JsonValue::String(term.name()));
      }
      tuples.Append(std::move(row));
    }
    e.Set("tuples", std::move(tuples));
    entries.Append(std::move(e));
  }
  out.Set("entries", std::move(entries));
  return out.Dump();
}

bool RestoreCacheSnapshot(const std::string& json, SharedCacheStore* store,
                          std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> parsed = ParseJson(json, &parse_error);
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!parsed) return fail("malformed cache snapshot: " + parse_error);
  if (!parsed->is_object()) return fail("cache snapshot must be an object");
  const JsonValue* entries = parsed->Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return fail("cache snapshot lacks an \"entries\" array");
  }
  for (const JsonValue& e : entries->items()) {
    if (!e.is_object()) return fail("snapshot entry must be an object");
    SharedCacheStore::ExportedEntry entry;
    entry.key = e.GetString("key");
    entry.relation = e.GetString("relation");
    if (entry.key.empty() || entry.relation.empty()) {
      return fail("snapshot entry lacks key/relation");
    }
    const double ttl = e.GetNumber("ttl_remaining_us", 0.0);
    if (ttl < 0) return fail("negative ttl_remaining_us");
    entry.ttl_remaining_micros = static_cast<std::uint64_t>(ttl);
    const JsonValue* tuples = e.Find("tuples");
    if (tuples == nullptr || !tuples->is_array()) {
      return fail("snapshot entry lacks a \"tuples\" array");
    }
    for (const JsonValue& row : tuples->items()) {
      if (!row.is_array()) return fail("snapshot tuple must be an array");
      Tuple tuple;
      for (const JsonValue& cell : row.items()) {
        if (cell.is_null()) {
          tuple.push_back(Term::Null());
        } else if (cell.is_string()) {
          tuple.push_back(Term::Constant(cell.AsString()));
        } else {
          return fail("snapshot tuple cells must be strings or null");
        }
      }
      entry.tuples.push_back(std::move(tuple));
    }
    store->RestoreEntry(entry);
  }
  return true;
}

bool SaveSnapshotFiles(const std::string& dir, const SharedCacheStore& store,
                       const StatsCatalog& stats, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  std::string why;
  if (!WriteFileFrom(dir + "/cache.json", CacheSnapshotToJson(store), &why) ||
      !WriteFileFrom(dir + "/stats.json", stats.ToJson(), &why)) {
    if (error != nullptr) *error = why;
    return false;
  }
  return true;
}

bool LoadSnapshotFiles(const std::string& dir, SharedCacheStore* store,
                       StatsCatalog* stats, SnapshotLoadReport* report,
                       std::string* error) {
  SnapshotLoadReport loaded;
  std::string text;
  if (ReadFileTo(dir + "/cache.json", &text)) {
    if (!RestoreCacheSnapshot(text, store, error)) return false;
    loaded.cache_loaded = true;
    loaded.cache_entries = store->size();
  }
  if (ReadFileTo(dir + "/stats.json", &text)) {
    std::string why;
    std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(text, &why);
    if (!parsed) {
      if (error != nullptr) *error = "bad stats snapshot: " + why;
      return false;
    }
    // Merge rather than assign, so a pre-seeded catalog keeps its state.
    for (const auto& [relation, split] : parsed->patterns()) {
      for (const auto& [word, entry] : split) {
        stats->Record(relation, word, entry);
      }
    }
    for (const auto& [relation, entry] : parsed->relations()) {
      // Pooled-only relations (pre-split snapshots) have no keyed rows;
      // keyed ones were already folded into the pool by Record above.
      if (parsed->patterns().count(relation) == 0) {
        stats->Record(relation, entry);
      }
    }
    loaded.stats_loaded = true;
    loaded.stats_relations = parsed->size();
  }
  if (report != nullptr) *report = loaded;
  return true;
}

}  // namespace ucqn
