#include "server/listener.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ucqn {

namespace {

// Writes all of `text` to `fd`, riding out short writes and EINTR.
bool WriteAll(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool SocketListener::Start(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load()) {
    if (error != nullptr) *error = "listener already running";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  ::unlink(path.c_str());  // a stale file from a crashed run blocks bind
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind(" + path + ")");
  }
  if (::listen(listen_fd_, 64) < 0) return fail("listen(" + path + ")");

  path_ = path;
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SocketListener::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd shut down (Stop) or broken — either way, done
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketListener::ServeConnection(int fd) {
  // Byte-stream to line framing: accumulate reads, cut on '\n'. Each line
  // is one request; each response is written before the next line is
  // served, so a pipelining client gets responses in request order.
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      if (!WriteAll(fd, daemon_->SubmitLine(line) + "\n")) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

void SocketListener::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listen socket down so accept() returns, then wake every
  // connection's read() the same way.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (!path_.empty()) ::unlink(path_.c_str());
}

}  // namespace ucqn
