#ifndef UCQN_SERVER_TENANT_H_
#define UCQN_SERVER_TENANT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ucqn {

// Per-tenant limits, riding the budgets the runtime already enforces: a
// tenant's concurrency cap is checked at admission, and its per-query
// call/deadline caps are folded into the CallBudget of the request's
// SourceStack (runtime/retrying_source.h), so one tenant's hot loop can
// neither monopolize the worker slots nor burn unbounded physical calls.
struct TenantQuota {
  // Concurrent requests this tenant may have past admission; 0 = no cap.
  std::size_t max_concurrent = 0;
  // Per-query physical-call budget; 0 = no cap. A request's own
  // max_calls ask is clamped to this, never raised by it.
  std::uint64_t max_calls_per_query = 0;
  // Per-query deadline, virtual microseconds on the request's clock;
  // 0 = none.
  std::uint64_t deadline_micros = 0;
};

// Thread-safe registry of tenant quotas and live usage. Tenants are
// created on first sight with the default quota — the daemon serves
// whoever connects; quotas are a protection boundary, not an auth one.
class TenantRegistry {
 public:
  struct Counters {
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t quota_refusals = 0;
  };

  explicit TenantRegistry(TenantQuota default_quota = TenantQuota())
      : default_quota_(default_quota) {}

  void SetDefaultQuota(const TenantQuota& quota);
  void SetQuota(const std::string& tenant, const TenantQuota& quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  // Counts `tenant` into its concurrency cap. False (and a refusal tick)
  // when the tenant is already at max_concurrent; every true must be
  // paired with a Leave.
  bool TryEnter(const std::string& tenant);
  void Leave(const std::string& tenant);

  std::map<std::string, Counters> counters() const;

  // {"alice": {"in_flight": 0, "admitted": 3, ...}, ...}
  std::string ToJson() const;

 private:
  struct State {
    TenantQuota quota;
    bool quota_set = false;  // explicit SetQuota vs default-on-first-sight
    Counters counters;
  };

  mutable std::mutex mu_;
  TenantQuota default_quota_;
  std::map<std::string, State> tenants_;
};

}  // namespace ucqn

#endif  // UCQN_SERVER_TENANT_H_
