#include "server/admission.h"

#include "util/json.h"

namespace ucqn {

AdmissionController::Outcome AdmissionController::Enter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    ++counters_.drain_refusals;
    return Outcome::kDraining;
  }
  if (options_.max_in_flight == 0 ||
      counters_.in_flight < options_.max_in_flight) {
    ++counters_.in_flight;
    ++counters_.admitted;
    return Outcome::kAdmitted;
  }
  if (counters_.waiting >= options_.max_queued) {
    ++counters_.shed;
    return Outcome::kShed;
  }
  ++counters_.waiting;
  ++counters_.queued;
  cv_.wait(lock, [&] {
    return draining_ || counters_.in_flight < options_.max_in_flight;
  });
  --counters_.waiting;
  if (draining_) {
    ++counters_.drain_refusals;
    // Others may be waiting on the same wake condition.
    cv_.notify_all();
    return Outcome::kDraining;
  }
  ++counters_.in_flight;
  ++counters_.admitted;
  return Outcome::kAdmitted;
}

void AdmissionController::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.in_flight > 0) --counters_.in_flight;
  }
  cv_.notify_all();
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return counters_.in_flight == 0; });
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string AdmissionController::ToJson() const {
  const Counters c = counters();
  JsonValue out = JsonValue::Object();
  out.Set("in_flight", JsonValue::Number(static_cast<double>(c.in_flight)));
  out.Set("waiting", JsonValue::Number(static_cast<double>(c.waiting)));
  out.Set("admitted", JsonValue::Number(static_cast<double>(c.admitted)));
  out.Set("queued", JsonValue::Number(static_cast<double>(c.queued)));
  out.Set("shed", JsonValue::Number(static_cast<double>(c.shed)));
  out.Set("drain_refusals",
          JsonValue::Number(static_cast<double>(c.drain_refusals)));
  out.Set("draining", JsonValue::Bool(draining()));
  return out.Dump();
}

}  // namespace ucqn
