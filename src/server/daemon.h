#ifndef UCQN_SERVER_DAEMON_H_
#define UCQN_SERVER_DAEMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "ast/query.h"
#include "cost/stats_catalog.h"
#include "eval/database.h"
#include "eval/delta.h"
#include "runtime/shared_cache.h"
#include "runtime/source_stack.h"
#include "schema/catalog.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/snapshot.h"
#include "server/tenant.h"

namespace ucqn {

// The long-lived, multi-tenant face of the mediator: one process, one
// SharedCacheStore + StatsCatalog + backend transport, many concurrent
// query sessions multiplexed onto them. Each Submit is one session —
// admission-controlled, quota-checked, executed on the caller's thread
// against a fresh SourceStack view of the shared state. The transport
// fronts (listener.h's Unix socket, ucqnd's --stdio loop) are thin
// adapters over Submit; tests drive Submit directly.
//
// Lifecycle: construct → LoadSnapshots (optional, warm start) → serve
// Submits from any number of threads → Drain (finish in-flight, refuse
// new, spill snapshots) → destruct.
class QueryDaemon {
 public:
  struct Options {
    AdmissionController::Options admission;
    TenantQuota default_quota;
    // Stack template for every session: retry policy, parallelism,
    // pipeline depth, deadline default. Per-session fields (shared
    // cache, metering, budgets) are overridden per request.
    RuntimeOptions runtime;
    // Disjunct chains each session's operator-DAG execution may overlap
    // per round (1 = sequential disjuncts).
    std::size_t disjunct_concurrency = 1;
    // Configuration of the daemon-owned SharedCacheStore (TTLs including
    // the negative split, tuple budget, shards).
    SharedCacheStore::Options cache;
    // Plan from observed stats (AdaptiveCostModel over the shared
    // StatsCatalog) instead of the static heuristics.
    bool adaptive_cost_model = false;
    // With the adaptive model, feed observed result fanouts back into the
    // cardinality estimates instead of the 1000-tuple fallback
    // (SessionEnv::fanout_feedback). `--no-fanout-feedback` turns it off
    // for A/B runs against the pre-feedback pricing.
    bool fanout_feedback = true;
    // Directory for cache.json/stats.json spill files; empty = snapshots
    // only on explicit request (op "snapshot" fails without a dir).
    std::string snapshot_dir;
    // The mutable database behind `backend`, when the backend is an
    // in-process DatabaseSource (ucqnd wires this). Not owned. Required
    // for `delta` ops — they update this instance and then maintain the
    // standing queries against it; null means delta ops are refused.
    Database* database = nullptr;
  };

  // Does not take ownership of `catalog` or `backend`; both must outlive
  // the daemon and `backend->Fetch` must be thread-safe (DatabaseSource
  // is; remote transports must be too).
  QueryDaemon(const Catalog* catalog, Source* backend, Options options);

  // Thread-safe; blocks while queued by admission control. Handles every
  // protocol op: queries run sessions, admin ops answer from the shared
  // state.
  ServiceResponse Submit(const ServiceRequest& request);

  // Parses `line` and Submits it; protocol errors become error
  // responses, so a transport can always just write the returned line.
  std::string SubmitLine(const std::string& line);

  // Restores cache.json/stats.json from options.snapshot_dir (missing
  // files are fine — a first boot). Call before serving.
  bool LoadSnapshots(SnapshotLoadReport* report, std::string* error);
  // Spills the shared cache + stats catalog to options.snapshot_dir.
  bool SaveSnapshots(std::string* error);

  // Graceful shutdown: refuse new work, let in-flight sessions finish,
  // then spill snapshots (when a snapshot_dir is configured). Returns
  // once the daemon is idle and spilled.
  void Drain();

  // {"admission": {...}, "tenants": {...}, "cache": {...},
  //  "stats_relations": N, "operator": {...}, "standing": N,
  //  "queries_served": N}
  std::string StatusJson() const;

  // Cumulative executor-side operator-DAG counters across every session
  // served (only the disjuncts/morsels/anti-join fields are populated).
  RuntimeStats operator_totals() const;

  SharedCacheStore* shared_cache() { return &store_; }
  StatsCatalog* stats() { return &stats_; }
  std::mutex* stats_mu() { return &stats_mu_; }
  TenantRegistry* tenants() { return &tenants_; }
  AdmissionController* admission() { return &admission_; }
  const Options& options() const { return options_; }
  std::uint64_t queries_served() const;
  // Registered standing queries (including broken ones awaiting rebuild).
  std::size_t standing_count() const;

 private:
  ServiceResponse RunAdminOp(const ServiceRequest& request);
  // The `delta` op: updates the attached database, scopes cache
  // invalidation to the changed tuples, and maintains every standing
  // query. Takes backend_mu_ exclusively — no query session runs while
  // the database moves.
  ServiceResponse RunDeltaOp(const ServiceRequest& request);
  // Registers (or replaces) request.query under (tenant, id) after a
  // successful session run. Caller holds backend_mu_ (shared).
  void RegisterStanding(const ServiceRequest& request,
                        ServiceResponse* response);
  // Fresh cache-backed maintenance stack (same shared store the sessions
  // use, metering on, no budgets).
  RuntimeOptions MaintenanceRuntime();

  Options options_;
  const Catalog* catalog_;
  Source* backend_;
  SharedCacheStore store_;
  StatsCatalog stats_;
  mutable std::mutex stats_mu_;
  // Guarded by stats_mu_, like the catalog it sits next to.
  RuntimeStats operator_totals_;
  TenantRegistry tenants_;
  AdmissionController admission_;
  mutable std::mutex served_mu_;
  std::uint64_t queries_served_ = 0;
  // Query sessions read the database through backend_ with no locking of
  // their own, so delta ops (which mutate it) take this exclusively and
  // sessions take it shared. Acquired before standing_mu_.
  mutable std::shared_mutex backend_mu_;

  struct StandingEntry {
    UnionQuery query;  // the compiled query, kept for rebuilds
    std::unique_ptr<StandingQuery> standing;  // null = broken, see `error`
    std::string error;
  };
  // Keyed "tenant/id". Guarded by standing_mu_.
  std::map<std::string, StandingEntry> standing_;
  mutable std::mutex standing_mu_;
};

}  // namespace ucqn

#endif  // UCQN_SERVER_DAEMON_H_
