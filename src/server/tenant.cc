#include "server/tenant.h"

#include "util/json.h"

namespace ucqn {

void TenantRegistry::SetDefaultQuota(const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  default_quota_ = quota;
  // Tenants that never got an explicit quota track the default.
  for (auto& [name, state] : tenants_) {
    if (!state.quota_set) state.quota = quota;
  }
}

void TenantRegistry::SetQuota(const std::string& tenant,
                              const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = tenants_[tenant];
  if (state.counters.admitted == 0 && !state.quota_set) {
    state.quota = default_quota_;  // initialize fresh entry before override
  }
  state.quota = quota;
  state.quota_set = true;
}

TenantQuota TenantRegistry::QuotaFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.quota_set) return default_quota_;
  return it->second.quota;
}

bool TenantRegistry::TryEnter(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  State& state = it->second;
  if (inserted) state.quota = default_quota_;
  if (state.quota.max_concurrent != 0 &&
      state.counters.in_flight >= state.quota.max_concurrent) {
    ++state.counters.quota_refusals;
    return false;
  }
  ++state.counters.in_flight;
  ++state.counters.admitted;
  return true;
}

void TenantRegistry::Leave(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.counters.in_flight == 0) return;
  --it->second.counters.in_flight;
  ++it->second.counters.completed;
}

std::map<std::string, TenantRegistry::Counters> TenantRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Counters> out;
  for (const auto& [name, state] : tenants_) out[name] = state.counters;
  return out;
}

std::string TenantRegistry::ToJson() const {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, c] : counters()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("in_flight", JsonValue::Number(static_cast<double>(c.in_flight)));
    entry.Set("admitted", JsonValue::Number(static_cast<double>(c.admitted)));
    entry.Set("completed",
              JsonValue::Number(static_cast<double>(c.completed)));
    entry.Set("quota_refusals",
              JsonValue::Number(static_cast<double>(c.quota_refusals)));
    out.Set(name, std::move(entry));
  }
  return out.Dump();
}

}  // namespace ucqn
