#ifndef UCQN_SERVER_PROTOCOL_H_
#define UCQN_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "eval/database.h"

namespace ucqn {

// The ucqnd wire protocol: line-delimited JSON, one request object per
// line in, one response object per line out, strictly in request order
// per connection. Keeping the framing trivial (split on '\n', parse each
// line independently) means any client — a shell pipe, netcat on the
// Unix socket, a test — can speak it, and a malformed line poisons only
// itself, mirroring the per-block recovery of `ucqnc --queries`.
//
// Request lines:
//   {"op": "query", "id": "q1", "tenant": "alice",
//    "query": "Q(x) :- L(x).", "max_calls": 100, "answers": true}
//   {"op": "query", "id": "q1", "query": "...", "standing": true}
//   {"op": "stats"}
//   {"op": "invalidate", "relation": "B"}   // omit relation: drop all
//   {"op": "snapshot"}                      // spill cache+stats now
//   {"op": "delta", "relation": "B", "insert": [["1", "2"]],
//    "delete": [["3", "4"]]}                // update one relation's feed
//   {"op": "answers", "id": "q1"}           // read a standing query back
//
// `op` defaults to "query"; `tenant` defaults to "default"; `id` is an
// opaque client correlation tag echoed back verbatim. `max_calls`
// requests a per-query physical-call budget (clamped by the tenant
// quota); `answers": false` suppresses the tuple payload for
// count-only clients. A query with `"standing": true` additionally
// registers (or replaces) the query under (tenant, id) as a standing
// query whose answers the daemon maintains under `delta` ops; `answers`
// ops read the maintained result back without re-running anything.
struct ServiceRequest {
  enum class Op { kQuery, kStats, kInvalidate, kSnapshot, kDelta, kAnswers };

  Op op = Op::kQuery;
  std::string id;
  std::string tenant = "default";
  std::string query;      // kQuery: the UCQ¬ text, parser syntax
  std::string relation;   // kInvalidate: empty = InvalidateAll; kDelta
  std::uint64_t max_calls = 0;  // kQuery: 0 = no per-request cap
  bool include_answers = true;
  bool standing = false;  // kQuery: register as a standing query
  // kDelta: the update batch. Deletes apply before inserts, so a tuple in
  // both sets ends up present.
  std::vector<Tuple> insert_tuples;
  std::vector<Tuple> delete_tuples;
};

// Parses one request line. Returns nullopt and sets `*error` on
// malformed JSON, an unknown op, or a query op without a query.
std::optional<ServiceRequest> ParseServiceRequest(const std::string& line,
                                                  std::string* error);

// Response lines. `status` is the admission/expiry story in one word:
//   ok       — the query ran; payload fields are meaningful
//   error    — the query ran into an error (parse, schema, source)
//   shed     — admission refused: queue full (back off and retry)
//   draining — the daemon is shutting down; no new work is accepted
//   quota    — the tenant is over its concurrent-request quota
struct ServiceResponse {
  enum class Status { kOk, kError, kShed, kDraining, kQuotaRefused };

  Status status = Status::kOk;
  std::string id;       // echo of the request's id
  std::string tenant;   // echo of the request's tenant
  std::string error;    // meaningful when status != kOk

  // Query payload (status == kOk on a query op).
  std::set<Tuple> under;
  std::set<Tuple> over;
  bool complete = false;
  bool include_answers = true;
  std::uint64_t physical_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Raw JSON payload for admin ops (stats/snapshot); embedded verbatim
  // under a "payload" key when non-empty.
  std::string payload_json;

  static const char* StatusWord(Status status);

  // One line, no trailing newline. Tuples serialize as arrays of
  // constants (JSON strings) with the distinguished null as JSON null:
  //   {"id": "q1", "tenant": "alice", "status": "ok", "under": [["a"]],
  //    "over": [["a"], ["b", null]], "complete": false, ...}
  std::string ToJsonLine() const;
};

// Parses a response line back into a structure — the client half of the
// protocol, used by tests and the warm-start bench. Unknown keys are
// ignored. Returns nullopt and sets `*error` on malformed input.
std::optional<ServiceResponse> ParseServiceResponse(const std::string& line,
                                                    std::string* error);

}  // namespace ucqn

#endif  // UCQN_SERVER_PROTOCOL_H_
