#include "server/protocol.h"

#include <utility>

#include "util/json.h"

namespace ucqn {

namespace {

JsonValue TupleToJson(const Tuple& tuple) {
  JsonValue row = JsonValue::Array();
  for (const Term& term : tuple) {
    // Answers are ground: constants and the distinguished null (Ex. 7's
    // unknown values). null maps to JSON null so clients need no
    // sentinel convention.
    row.Append(term.IsNull() ? JsonValue::Null()
                             : JsonValue::String(term.name()));
  }
  return row;
}

JsonValue TupleSetToJson(const std::set<Tuple>& tuples) {
  JsonValue rows = JsonValue::Array();
  for (const Tuple& tuple : tuples) rows.Append(TupleToJson(tuple));
  return rows;
}

bool JsonToTupleSet(const JsonValue& rows, std::set<Tuple>* out,
                    std::string* error) {
  if (!rows.is_array()) {
    *error = "expected an array of tuples";
    return false;
  }
  for (const JsonValue& row : rows.items()) {
    if (!row.is_array()) {
      *error = "expected a tuple array";
      return false;
    }
    Tuple tuple;
    for (const JsonValue& cell : row.items()) {
      if (cell.is_null()) {
        tuple.push_back(Term::Null());
      } else if (cell.is_string()) {
        tuple.push_back(Term::Constant(cell.AsString()));
      } else {
        *error = "tuple cells must be strings or null";
        return false;
      }
    }
    out->insert(std::move(tuple));
  }
  return true;
}

// Same cell convention as JsonToTupleSet, but order-preserving: delta
// batches are lists (deletes apply before inserts within a batch, and
// clients may care about a stable echo), not sets.
bool JsonToTupleList(const JsonValue& rows, std::vector<Tuple>* out,
                     std::string* error) {
  if (!rows.is_array()) {
    *error = "expected an array of tuples";
    return false;
  }
  for (const JsonValue& row : rows.items()) {
    if (!row.is_array()) {
      *error = "expected a tuple array";
      return false;
    }
    Tuple tuple;
    for (const JsonValue& cell : row.items()) {
      if (cell.is_null()) {
        tuple.push_back(Term::Null());
      } else if (cell.is_string()) {
        tuple.push_back(Term::Constant(cell.AsString()));
      } else {
        *error = "tuple cells must be strings or null";
        return false;
      }
    }
    out->push_back(std::move(tuple));
  }
  return true;
}

}  // namespace

std::optional<ServiceRequest> ParseServiceRequest(const std::string& line,
                                                  std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> json = ParseJson(line, &parse_error);
  auto fail = [&](const std::string& why) -> std::optional<ServiceRequest> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!json) return fail("malformed request: " + parse_error);
  if (!json->is_object()) return fail("request must be a JSON object");

  ServiceRequest request;
  const std::string op = json->GetString("op", "query");
  if (op == "query") {
    request.op = ServiceRequest::Op::kQuery;
  } else if (op == "stats") {
    request.op = ServiceRequest::Op::kStats;
  } else if (op == "invalidate") {
    request.op = ServiceRequest::Op::kInvalidate;
  } else if (op == "snapshot") {
    request.op = ServiceRequest::Op::kSnapshot;
  } else if (op == "delta") {
    request.op = ServiceRequest::Op::kDelta;
  } else if (op == "answers") {
    request.op = ServiceRequest::Op::kAnswers;
  } else {
    return fail("unknown op \"" + op + "\"");
  }
  request.id = json->GetString("id");
  request.tenant = json->GetString("tenant", "default");
  if (request.tenant.empty()) request.tenant = "default";
  request.query = json->GetString("query");
  request.relation = json->GetString("relation");
  const double max_calls = json->GetNumber("max_calls", 0.0);
  if (max_calls < 0) return fail("max_calls must be non-negative");
  request.max_calls = static_cast<std::uint64_t>(max_calls);
  request.include_answers = json->GetBool("answers", true);
  request.standing = json->GetBool("standing", false);
  if (request.op == ServiceRequest::Op::kQuery && request.query.empty()) {
    return fail("query op without a \"query\" field");
  }
  if (request.op == ServiceRequest::Op::kDelta) {
    if (request.relation.empty()) {
      return fail("delta op without a \"relation\" field");
    }
    std::string tuple_error;
    const JsonValue* inserts = json->Find("insert");
    if (inserts != nullptr &&
        !JsonToTupleList(*inserts, &request.insert_tuples, &tuple_error)) {
      return fail("bad insert set: " + tuple_error);
    }
    const JsonValue* deletes = json->Find("delete");
    if (deletes != nullptr &&
        !JsonToTupleList(*deletes, &request.delete_tuples, &tuple_error)) {
      return fail("bad delete set: " + tuple_error);
    }
    if (request.insert_tuples.empty() && request.delete_tuples.empty()) {
      return fail("delta op without \"insert\" or \"delete\" tuples");
    }
  }
  if (request.op == ServiceRequest::Op::kAnswers && request.id.empty()) {
    return fail("answers op without an \"id\" field");
  }
  return request;
}

const char* ServiceResponse::StatusWord(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kShed: return "shed";
    case Status::kDraining: return "draining";
    case Status::kQuotaRefused: return "quota";
  }
  return "error";
}

std::string ServiceResponse::ToJsonLine() const {
  JsonValue out = JsonValue::Object();
  if (!id.empty()) out.Set("id", JsonValue::String(id));
  if (!tenant.empty()) out.Set("tenant", JsonValue::String(tenant));
  out.Set("status", JsonValue::String(StatusWord(status)));
  if (status != Status::kOk) {
    out.Set("error", JsonValue::String(error));
    return out.Dump();
  }
  if (!payload_json.empty()) {
    // Admin payloads (cache/stats exports) are already JSON; splice the
    // text in verbatim rather than re-modelling it.
    std::string line = out.Dump();
    line.pop_back();  // trailing '}'
    return line + ", \"payload\": " + payload_json + "}";
  }
  out.Set("under_count",
          JsonValue::Number(static_cast<double>(under.size())));
  out.Set("over_count", JsonValue::Number(static_cast<double>(over.size())));
  out.Set("complete", JsonValue::Bool(complete));
  if (include_answers) {
    out.Set("under", TupleSetToJson(under));
    out.Set("over", TupleSetToJson(over));
  }
  out.Set("physical_calls",
          JsonValue::Number(static_cast<double>(physical_calls)));
  out.Set("cache_hits", JsonValue::Number(static_cast<double>(cache_hits)));
  out.Set("cache_misses",
          JsonValue::Number(static_cast<double>(cache_misses)));
  return out.Dump();
}

std::optional<ServiceResponse> ParseServiceResponse(const std::string& line,
                                                    std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> json = ParseJson(line, &parse_error);
  auto fail = [&](const std::string& why) -> std::optional<ServiceResponse> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!json) return fail("malformed response: " + parse_error);
  if (!json->is_object()) return fail("response must be a JSON object");

  ServiceResponse response;
  response.id = json->GetString("id");
  response.tenant = json->GetString("tenant");
  const std::string status = json->GetString("status");
  if (status == "ok") {
    response.status = ServiceResponse::Status::kOk;
  } else if (status == "error") {
    response.status = ServiceResponse::Status::kError;
  } else if (status == "shed") {
    response.status = ServiceResponse::Status::kShed;
  } else if (status == "draining") {
    response.status = ServiceResponse::Status::kDraining;
  } else if (status == "quota") {
    response.status = ServiceResponse::Status::kQuotaRefused;
  } else {
    return fail("unknown status \"" + status + "\"");
  }
  response.error = json->GetString("error");
  response.complete = json->GetBool("complete");
  response.physical_calls =
      static_cast<std::uint64_t>(json->GetNumber("physical_calls"));
  response.cache_hits =
      static_cast<std::uint64_t>(json->GetNumber("cache_hits"));
  response.cache_misses =
      static_cast<std::uint64_t>(json->GetNumber("cache_misses"));
  std::string tuple_error;
  const JsonValue* under = json->Find("under");
  if (under != nullptr &&
      !JsonToTupleSet(*under, &response.under, &tuple_error)) {
    return fail("bad under set: " + tuple_error);
  }
  const JsonValue* over = json->Find("over");
  if (over != nullptr && !JsonToTupleSet(*over, &response.over, &tuple_error)) {
    return fail("bad over set: " + tuple_error);
  }
  response.include_answers = under != nullptr || over != nullptr;
  const JsonValue* payload = json->Find("payload");
  if (payload != nullptr) response.payload_json = payload->Dump();
  return response;
}

}  // namespace ucqn
