#ifndef UCQN_SERVER_ADMISSION_H_
#define UCQN_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace ucqn {

// Bounds the daemon's in-flight work. Requests past the bound wait in a
// bounded FIFO queue; requests past the queue are shed immediately — the
// classic admission triage (run / wait / refuse), so an overloaded
// daemon degrades by answering "shed" fast instead of by queueing
// without bound and timing everything out.
//
// Drain (graceful shutdown) flips a latch: new arrivals and queued
// waiters are refused with kDraining (queued work has not started, so
// refusing it is cheap for the client to retry elsewhere), in-flight
// requests finish normally, and WaitIdle returns once the last one left
// — the point at which state can be snapshotted and the process exit.
class AdmissionController {
 public:
  struct Options {
    // Requests running concurrently; 0 = unbounded (queue never used).
    std::size_t max_in_flight = 0;
    // Requests allowed to wait for a slot before arrivals are shed.
    std::size_t max_queued = 0;
  };

  enum class Outcome {
    kAdmitted,  // run now; pair with Leave()
    kShed,      // over in-flight + queue bounds; tell the client to retry
    kDraining,  // shutting down; no new work
  };

  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;         // admissions that had to wait first
    std::uint64_t shed = 0;
    std::uint64_t drain_refusals = 0;
    std::size_t in_flight = 0;
    std::size_t waiting = 0;
  };

  AdmissionController() = default;
  explicit AdmissionController(Options options) : options_(options) {}

  // Blocks while queued; never blocks once the outcome is decided.
  Outcome Enter();
  // Releases an admitted request's slot.
  void Leave();

  // Starts refusing new and queued work. Idempotent.
  void BeginDrain();
  bool draining() const;
  // Blocks until no admitted request remains in flight. Call after
  // BeginDrain (without it, new admissions can keep this waiting
  // forever).
  void WaitIdle();

  Counters counters() const;
  std::string ToJson() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool draining_ = false;
  Counters counters_;
};

}  // namespace ucqn

#endif  // UCQN_SERVER_ADMISSION_H_
