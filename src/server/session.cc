#include "server/session.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "cost/estimates.h"
#include "eval/answer_star.h"
#include "feasibility/compile.h"

namespace ucqn {

namespace {

// The smaller of two caps where 0 means "uncapped".
std::uint64_t MinCap(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

}  // namespace

ServiceResponse RunQuerySession(const SessionEnv& env,
                                const ServiceRequest& request,
                                const TenantQuota& quota) {
  ServiceResponse response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.include_answers = request.include_answers;

  std::string error;
  std::optional<UnionQuery> query = ParseUnionQuery(request.query, &error);
  if (!query) {
    response.status = ServiceResponse::Status::kError;
    response.error = "query error: " + error;
    return response;
  }
  if (!env.catalog->CoversQuery(*query, &error)) {
    response.status = ServiceResponse::Status::kError;
    response.error = "schema mismatch: " + error;
    return response;
  }
  CompileResult compiled = Compile(*query, *env.catalog, {});

  // The per-session stack: a fresh view (budgets, meter, hit/miss ledger)
  // over the shared store. Metering is forced on so physical calls are
  // attributable to this request, and the tenant's caps ride the
  // CallBudget the retry layer already enforces.
  RuntimeOptions runtime = env.runtime;
  runtime.shared_cache = env.shared_cache;
  runtime.metering = true;
  runtime.budget.max_calls =
      MinCap(request.max_calls, quota.max_calls_per_query);
  runtime.budget.deadline_micros =
      MinCap(runtime.budget.deadline_micros, quota.deadline_micros);

  // Adaptive planning prices candidates from a point-in-time copy of the
  // shared stats catalog: the copy is taken under the lock, the model
  // reads it lock-free, and concurrent sessions keep observing into the
  // original — the same snapshot discipline as `ucqnc --stats-in`.
  StatsCatalog stats_snapshot;
  if (env.adaptive_cost_model && env.stats != nullptr) {
    std::lock_guard<std::mutex> lock(*env.stats_mu);
    stats_snapshot = *env.stats;
  }
  AdaptiveCostOptions adaptive_options;
  adaptive_options.shared_cache = env.shared_cache;
  adaptive_options.use_observed_fanouts = env.fanout_feedback;
  // Catalog `@N` annotations seed the estimates; with fanout feedback on,
  // relations nobody annotated get the cardinality their observed full
  // scans measured instead of the 1000-tuple fallback — the planner
  // learns real selectivities from the workload (docs/WORKLOADS.md).
  CardinalityEstimates estimates = CardinalityEstimates::FromCatalog(*env.catalog);
  if (env.adaptive_cost_model && env.fanout_feedback) {
    estimates.ApplyObservedFanouts(stats_snapshot);
  }
  AdaptiveCostModel adaptive_model(&stats_snapshot, std::move(estimates),
                                   adaptive_options);

  ExecutionOptions exec;
  if (env.adaptive_cost_model) exec.cost_model = &adaptive_model;
  exec.runtime.pipeline_depth = env.runtime.pipeline_depth;
  exec.disjunct_concurrency = env.disjunct_concurrency;

  SourceStack stack(env.backend, runtime);
  exec.runtime.clock = stack.clock();
  AnswerStarReport report =
      AnswerStar(compiled.analyzed_query, *env.catalog, stack.source(), exec);

  const RuntimeStats stats = stack.stats();
  response.physical_calls =
      stack.meter() != nullptr ? stack.meter()->totals().calls : 0;
  response.cache_hits = stats.cache_hits;
  response.cache_misses = stats.cache_misses;

  // Feed this session's observations to every later session's adaptive
  // model (and the stats snapshot file).
  if (env.stats != nullptr && stack.meter() != nullptr) {
    std::lock_guard<std::mutex> lock(*env.stats_mu);
    env.stats->Observe(*stack.meter());
  }
  // Merge this session's executor-side operator-DAG work into the
  // process-wide totals, race-free under the same lock concurrent
  // sessions' Observes take.
  if (env.operator_totals != nullptr && env.stats_mu != nullptr) {
    std::lock_guard<std::mutex> lock(*env.stats_mu);
    env.operator_totals->disjuncts_executed +=
        report.runtime.disjuncts_executed;
    env.operator_totals->morsels += report.runtime.morsels;
    env.operator_totals->antijoin_build_tuples +=
        report.runtime.antijoin_build_tuples;
  }

  if (!report.ok) {
    response.status = ServiceResponse::Status::kError;
    response.error = report.error;
    return response;
  }
  response.status = ServiceResponse::Status::kOk;
  response.under = std::move(report.under);
  response.over = std::move(report.over);
  response.complete = report.complete;
  return response;
}

}  // namespace ucqn
