#ifndef UCQN_MEDIATOR_CAPABILITIES_H_
#define UCQN_MEDIATOR_CAPABILITIES_H_

#include <map>
#include <string>
#include <vector>

#include "containment/ucqn_containment.h"
#include "eval/database.h"
#include "mediator/unfold.h"
#include "schema/catalog.h"

namespace ucqn {

// Capability propagation through a stack of views — the
// capabilities-based-rewriting picture of [PGH98], which the paper cites
// as the systems context: every integrated view over limited sources can
// itself be advertised with *derived* access patterns
// (feasibility/view_patterns.h); when views are defined over other views,
// capabilities must be computed bottom-up so that upper views see the
// derived patterns of the lower ones.

struct ViewCapability {
  std::string view;
  // The minimal supported head adornments (everything else follows by
  // "bound is easier"). Empty = the view cannot be used at all, even with
  // every head column supplied.
  std::vector<AccessPattern> minimal_patterns;
  // True when the all-output pattern is supported, i.e. the view is
  // feasible outright.
  bool feasible_outright = false;
};

struct ViewStackAnalysis {
  bool ok = false;
  std::string error;  // cyclic definitions, undeclared relations, ...
  // Per view, in a bottom-up (dependency) order.
  std::vector<ViewCapability> capabilities;
  // The source catalog extended with one relation per view carrying its
  // derived patterns — the catalog a client of the mediator plans
  // against.
  Catalog exported_catalog;
};

// Analyzes every view in `views` against `sources`, bottom-up: views that
// only use source relations are analyzed first; views over views see the
// derived patterns computed for their dependencies. Fails on cyclic
// definitions and on views whose bodies mention relations that are
// neither sources nor views.
ViewStackAnalysis AnalyzeViewStack(const ViewRegistry& views,
                                   const Catalog& sources,
                                   const ContainmentOptions& options = {});

struct MaterializationResult {
  bool ok = false;
  std::string error;  // cyclic definitions
  // `base` extended with one materialized relation per view.
  Database database;
};

// Materializes every view bottom-up over `base` with the reference
// semantics (views are acyclic, so the stratification is the dependency
// order). The result lets a client query over views be answered directly,
// and is the ground truth the unfolding tests compare against.
MaterializationResult MaterializeViews(const ViewRegistry& views,
                                       const Database& base);

}  // namespace ucqn

#endif  // UCQN_MEDIATOR_CAPABILITIES_H_
