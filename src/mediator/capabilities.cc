#include "mediator/capabilities.h"

#include <set>

#include "eval/oracle.h"
#include "feasibility/view_patterns.h"

namespace ucqn {

MaterializationResult MaterializeViews(const ViewRegistry& views,
                                       const Database& base) {
  MaterializationResult result;
  result.database = base;
  std::set<std::string> done;
  std::vector<std::string> pending = views.ViewNames();
  while (!pending.empty()) {
    bool progressed = false;
    std::vector<std::string> still_pending;
    for (const std::string& name : pending) {
      const UnionQuery& definition = *views.Find(name);
      bool ready = true;
      for (const std::string& used : definition.RelationNames()) {
        if (views.IsView(used) && done.count(used) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        still_pending.push_back(name);
        continue;
      }
      progressed = true;
      for (const Tuple& t : OracleEvaluate(definition, result.database)) {
        result.database.Insert(name, t);
      }
      done.insert(name);
    }
    if (!progressed) {
      result.error = "cyclic view definitions";
      return result;
    }
    pending = std::move(still_pending);
  }
  result.ok = true;
  return result;
}

ViewStackAnalysis AnalyzeViewStack(const ViewRegistry& views,
                                   const Catalog& sources,
                                   const ContainmentOptions& options) {
  ViewStackAnalysis analysis;
  analysis.exported_catalog = sources;

  // Validate that every referenced relation is a source or a view.
  for (const std::string& name : views.ViewNames()) {
    for (const std::string& used : views.Find(name)->RelationNames()) {
      if (!sources.Contains(used) && !views.IsView(used)) {
        analysis.error = "view " + name + " uses undeclared relation " + used;
        return analysis;
      }
    }
  }

  // Kahn-style bottom-up order over the view dependency graph.
  std::set<std::string> done;
  std::vector<std::string> pending = views.ViewNames();
  while (!pending.empty()) {
    bool progressed = false;
    std::vector<std::string> still_pending;
    for (const std::string& name : pending) {
      const UnionQuery& definition = *views.Find(name);
      bool ready = true;
      for (const std::string& used : definition.RelationNames()) {
        if (views.IsView(used) && done.count(used) == 0 && used != name) {
          ready = false;
          break;
        }
      }
      if (definition.RelationNames().count(name) > 0) {
        analysis.error = "view " + name + " is recursive";
        return analysis;
      }
      if (!ready) {
        still_pending.push_back(name);
        continue;
      }
      progressed = true;
      // Analyze against the catalog extended with the capabilities of the
      // views below this one.
      ViewCapability capability;
      capability.view = name;
      capability.minimal_patterns = MinimalSupportedHeadPatterns(
          definition, analysis.exported_catalog, options);
      capability.feasible_outright =
          capability.minimal_patterns.size() == 1 &&
          !capability.minimal_patterns[0].HasInputs();
      RelationSchema& schema = analysis.exported_catalog.AddRelation(
          name, definition.head_arity());
      for (const AccessPattern& p : capability.minimal_patterns) {
        schema.AddPattern(p);
      }
      analysis.capabilities.push_back(std::move(capability));
      done.insert(name);
    }
    if (!progressed) {
      analysis.error = "cyclic view definitions among: ";
      for (std::size_t i = 0; i < still_pending.size(); ++i) {
        if (i > 0) analysis.error += ", ";
        analysis.error += still_pending[i];
      }
      return analysis;
    }
    pending = std::move(still_pending);
  }
  analysis.ok = true;
  return analysis;
}

}  // namespace ucqn
