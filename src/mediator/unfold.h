#ifndef UCQN_MEDIATOR_UNFOLD_H_
#define UCQN_MEDIATOR_UNFOLD_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/query.h"

namespace ucqn {

// Global-as-view unfolding — the mediator substrate behind Section 4.2's
// BIRN discussion: "the current prototype takes a query against a
// global-as-view definition and unfolds it into a UCQ¬ plan". Integrated
// views are UCQ¬ definitions over source relations; a client query talks
// to the views; unfolding substitutes view literals by their definitions
// until only source relations remain. The result is then fed to the usual
// pipeline (Compile / Feasible / AnswerStar).
//
// Negated view literals are supported for the fragment where negation can
// be pushed through the definition within UCQ¬:
//   * ¬V over a union unfolds to the conjunction of the negations of the
//     disjuncts (De Morgan),
//   * ¬(L1 ∧ ... ∧ Lk) for a disjunct with no existential variables and
//     no nested negation unfolds to the k-way union branch ¬L1 ∨ ... ∨ ¬Lk
//     (each branch multiplies the disjuncts of the unfolded query),
//   * definitions with existential variables or negation under a negated
//     view literal are rejected: ¬∃ȳ φ is not expressible in UCQ¬.
class ViewRegistry {
 public:
  ViewRegistry() = default;

  // Registers `definition` under its head name. CHECK-fails on duplicate
  // names. View definitions may reference other views (acyclically);
  // unfolding resolves them recursively.
  void Define(UnionQuery definition);

  // Parses a program (rules grouped by head) into a registry.
  static std::optional<ViewRegistry> Parse(std::string_view text,
                                           std::string* error);
  static ViewRegistry MustParse(std::string_view text);

  const UnionQuery* Find(const std::string& name) const;
  bool IsView(const std::string& name) const { return Find(name) != nullptr; }
  std::size_t size() const { return views_.size(); }
  std::vector<std::string> ViewNames() const;

  std::string ToString() const;

 private:
  std::map<std::string, UnionQuery> views_;
};

struct UnfoldOptions {
  // Guard against multiplicative blow-up: unfolding stops with an error
  // once the working union exceeds this many disjuncts.
  std::size_t max_disjuncts = 4096;
  // Guard against (erroneous) cyclic view definitions.
  std::size_t max_depth = 64;
};

struct UnfoldResult {
  bool ok = false;
  std::string error;
  // The fully unfolded UCQ¬ over source relations only.
  UnionQuery query;
  // How many view literals were expanded in total.
  std::size_t expansions = 0;
};

// Unfolds `query` against `views` until no view literal remains. Fresh
// variable names are generated for each expansion so repeated uses of the
// same view do not collide.
UnfoldResult Unfold(const UnionQuery& query, const ViewRegistry& views,
                    const UnfoldOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_MEDIATOR_UNFOLD_H_
