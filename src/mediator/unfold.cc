#include "mediator/unfold.h"

#include <unordered_map>

#include "ast/parser.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

void ViewRegistry::Define(UnionQuery definition) {
  UCQN_CHECK_MSG(!definition.IsFalseQuery(),
                 "view definitions must have at least one rule");
  const std::string name = definition.head_name();
  UCQN_CHECK_MSG(views_.count(name) == 0, "duplicate view definition");
  views_.emplace(name, std::move(definition));
}

std::optional<ViewRegistry> ViewRegistry::Parse(std::string_view text,
                                                std::string* error) {
  std::optional<std::vector<UnionQuery>> program = ParseProgram(text, error);
  if (!program.has_value()) return std::nullopt;
  ViewRegistry registry;
  for (UnionQuery& view : *program) {
    if (registry.IsView(view.head_name())) {
      if (error != nullptr) *error = "duplicate view " + view.head_name();
      return std::nullopt;
    }
    registry.Define(std::move(view));
  }
  return registry;
}

ViewRegistry ViewRegistry::MustParse(std::string_view text) {
  std::string error;
  std::optional<ViewRegistry> registry = Parse(text, &error);
  UCQN_CHECK_MSG(registry.has_value(), error.c_str());
  return std::move(*registry);
}

const UnionQuery* ViewRegistry::Find(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> ViewRegistry::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

std::string ViewRegistry::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(views_.size());
  for (const auto& [name, view] : views_) parts.push_back(view.ToString());
  return StrJoin(parts, "\n");
}

namespace {

// Syntactic unification over variables and constants (no function
// symbols): a union-find refined into a Substitution. Used to match a view
// literal's arguments against a definition's head.
class Unifier {
 public:
  // Resolves a term to its current representative.
  Term Find(Term t) const {
    while (t.IsVariable()) {
      auto it = parent_.find(t.name());
      if (it == parent_.end()) return t;
      t = it->second;
    }
    return t;
  }

  // Unifies a and b; false on a constant clash.
  bool Union(const Term& a, const Term& b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return true;
    if (ra.IsVariable()) {
      parent_.emplace(ra.name(), rb);
      return true;
    }
    if (rb.IsVariable()) {
      parent_.emplace(rb.name(), ra);
      return true;
    }
    return false;  // distinct ground terms
  }

  Term Resolve(const Term& t) const { return Find(t); }

  Literal Resolve(const Literal& l) const {
    std::vector<Term> args;
    args.reserve(l.args().size());
    for (const Term& t : l.args()) args.push_back(Find(t));
    return Literal(Atom(l.relation(), std::move(args)), l.positive());
  }

  ConjunctiveQuery Resolve(const ConjunctiveQuery& q) const {
    std::vector<Term> head;
    head.reserve(q.head_terms().size());
    for (const Term& t : q.head_terms()) head.push_back(Find(t));
    std::vector<Literal> body;
    body.reserve(q.body().size());
    for (const Literal& l : q.body()) body.push_back(Resolve(l));
    return ConjunctiveQuery(q.head_name(), std::move(head), std::move(body));
  }

 private:
  std::unordered_map<std::string, Term> parent_;
};

class UnfoldEngine {
 public:
  UnfoldEngine(const ViewRegistry& views, const UnfoldOptions& options)
      : views_(views), options_(options) {}

  UnfoldResult Run(const UnionQuery& query) {
    UnfoldResult result;
    std::vector<ConjunctiveQuery> work(query.disjuncts());
    std::vector<ConjunctiveQuery> done;
    std::size_t rounds = 0;
    while (!work.empty()) {
      if (++rounds > options_.max_depth * (done.size() + work.size() + 1)) {
        result.error = "unfolding did not terminate (cyclic views?)";
        return result;
      }
      ConjunctiveQuery current = std::move(work.back());
      work.pop_back();
      int view_index = FirstViewLiteral(current);
      if (view_index < 0) {
        done.push_back(std::move(current));
        continue;
      }
      std::vector<ConjunctiveQuery> expanded;
      if (!ExpandLiteral(current, static_cast<std::size_t>(view_index),
                         &expanded, &result.error)) {
        return result;
      }
      ++result.expansions;
      for (ConjunctiveQuery& q : expanded) work.push_back(std::move(q));
      if (done.size() + work.size() > options_.max_disjuncts) {
        result.error = "unfolding exceeded max_disjuncts (" +
                       std::to_string(options_.max_disjuncts) + ")";
        return result;
      }
    }
    result.ok = true;
    result.query = UnionQuery(std::move(done));
    return result;
  }

 private:
  int FirstViewLiteral(const ConjunctiveQuery& q) const {
    for (std::size_t i = 0; i < q.body().size(); ++i) {
      if (views_.IsView(q.body()[i].relation())) return static_cast<int>(i);
    }
    return -1;
  }

  // Expands the view literal at `index`, appending the replacement
  // disjuncts to `out`. Returns false and sets `*error` on unsupported
  // negation-through-views.
  bool ExpandLiteral(const ConjunctiveQuery& q, std::size_t index,
                     std::vector<ConjunctiveQuery>* out, std::string* error) {
    const Literal& literal = q.body()[index];
    const UnionQuery& definition = *views_.Find(literal.relation());
    if (definition.head_arity() != literal.atom().arity()) {
      *error = "view " + literal.relation() + " used with arity " +
               std::to_string(literal.atom().arity()) + ", defined with " +
               std::to_string(definition.head_arity());
      return false;
    }
    std::vector<Literal> rest;
    rest.reserve(q.body().size() - 1);
    for (std::size_t i = 0; i < q.body().size(); ++i) {
      if (i != index) rest.push_back(q.body()[i]);
    }
    ConjunctiveQuery remainder = q.WithBody(std::move(rest));

    if (literal.positive()) {
      // One replacement disjunct per definition rule: unify the rule head
      // with the call site, then splice in the rule body.
      for (const ConjunctiveQuery& rule : definition.disjuncts()) {
        ConjunctiveQuery fresh =
            rule.RenameVariables("_u" + std::to_string(fresh_counter_++));
        Unifier unifier;
        bool compatible = true;
        for (std::size_t j = 0; j < literal.args().size(); ++j) {
          if (!unifier.Union(fresh.head_terms()[j], literal.args()[j])) {
            compatible = false;  // constant clash: rule cannot fire here
            break;
          }
        }
        if (!compatible) continue;
        std::vector<Literal> body;
        for (const Literal& l : remainder.body()) {
          body.push_back(unifier.Resolve(l));
        }
        for (const Literal& l : fresh.body()) {
          body.push_back(unifier.Resolve(l));
        }
        std::vector<Term> head;
        for (const Term& t : remainder.head_terms()) {
          head.push_back(unifier.Resolve(t));
        }
        out->push_back(ConjunctiveQuery(remainder.head_name(),
                                        std::move(head), std::move(body)));
      }
      return true;
    }

    // Negated view literal: ¬(D1 ∨ ... ∨ Dm) = ¬D1 ∧ ... ∧ ¬Dm, and each
    // ¬Dj = ¬L1 ∨ ... ∨ ¬Lk — expressible in UCQ¬ only when Dj has no
    // existential variables and a purely positive body.
    std::vector<ConjunctiveQuery> partial = {remainder};
    for (const ConjunctiveQuery& rule : definition.disjuncts()) {
      std::set<std::string> head_vars;
      for (const Term& t : rule.head_terms()) {
        if (t.IsVariable()) head_vars.insert(t.name());
      }
      for (const Term& v : rule.BodyVariables()) {
        if (head_vars.count(v.name()) == 0) {
          *error = "cannot negate view " + literal.relation() +
                   ": rule has existential variable " + v.name() +
                   " (not expressible in UCQ-not)";
          return false;
        }
      }
      if (rule.HasNegation()) {
        *error = "cannot negate view " + literal.relation() +
                 ": rule body itself uses negation";
        return false;
      }
      // A repeated head variable or a head constant is a hidden equality
      // selection; its negation needs disequalities, which UCQ¬ lacks.
      std::set<std::string> seen_head_vars;
      for (const Term& t : rule.head_terms()) {
        if (!t.IsVariable() || !seen_head_vars.insert(t.name()).second) {
          *error = "cannot negate view " + literal.relation() +
                   ": rule head must be distinct variables";
          return false;
        }
      }
      // Align the rule head with the call site — a pure renaming here,
      // since the head is distinct fresh variables.
      ConjunctiveQuery fresh =
          rule.RenameVariables("_u" + std::to_string(fresh_counter_++));
      Substitution align;
      for (std::size_t j = 0; j < literal.args().size(); ++j) {
        align.Bind(fresh.head_terms()[j], literal.args()[j]);
      }
      std::vector<ConjunctiveQuery> next;
      for (const ConjunctiveQuery& p : partial) {
        for (const Literal& l : fresh.body()) {
          Literal negated = align.Apply(l).Negated();
          next.push_back(p.WithExtraLiteral(negated));
        }
      }
      partial = std::move(next);
      if (partial.size() > options_.max_disjuncts) {
        *error = "negated view expansion exceeded max_disjuncts";
        return false;
      }
    }
    for (ConjunctiveQuery& p : partial) out->push_back(std::move(p));
    return true;
  }

  const ViewRegistry& views_;
  const UnfoldOptions& options_;
  std::size_t fresh_counter_ = 0;
};

}  // namespace

UnfoldResult Unfold(const UnionQuery& query, const ViewRegistry& views,
                    const UnfoldOptions& options) {
  UnfoldEngine engine(views, options);
  return engine.Run(query);
}

}  // namespace ucqn
