#include "constraints/inclusion.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

InclusionDependency::InclusionDependency(std::string from,
                                         std::vector<std::size_t> from_cols,
                                         std::string to,
                                         std::vector<std::size_t> to_cols)
    : from_(std::move(from)),
      from_cols_(std::move(from_cols)),
      to_(std::move(to)),
      to_cols_(std::move(to_cols)) {
  UCQN_CHECK_MSG(!from_cols_.empty() && from_cols_.size() == to_cols_.size(),
                 "inclusion dependency needs matching non-empty column lists");
}

namespace {

// Parses "Name[1,2]" into a relation name and column list.
bool ParseSide(std::string_view text, std::string* name,
               std::vector<std::size_t>* cols, std::string* error) {
  std::size_t open = text.find('[');
  std::size_t close = text.rfind(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    if (error != nullptr) *error = "expected Name[cols] in dependency";
    return false;
  }
  *name = std::string(StripWhitespace(text.substr(0, open)));
  if (name->empty()) {
    if (error != nullptr) *error = "missing relation name in dependency";
    return false;
  }
  for (const std::string& piece :
       SplitAndTrim(text.substr(open + 1, close - open - 1), ',')) {
    std::size_t value = 0;
    for (char c : piece) {
      if (c < '0' || c > '9') {
        if (error != nullptr) *error = "bad column index '" + piece + "'";
        return false;
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    cols->push_back(value);
  }
  if (cols->empty()) {
    if (error != nullptr) *error = "empty column list in dependency";
    return false;
  }
  return true;
}

}  // namespace

std::optional<InclusionDependency> InclusionDependency::Parse(
    std::string_view text, std::string* error) {
  std::size_t sep = text.find("c=");
  if (sep == std::string_view::npos) {
    if (error != nullptr) *error = "expected 'c=' in inclusion dependency";
    return std::nullopt;
  }
  std::string from, to;
  std::vector<std::size_t> from_cols, to_cols;
  if (!ParseSide(StripWhitespace(text.substr(0, sep)), &from, &from_cols,
                 error) ||
      !ParseSide(StripWhitespace(text.substr(sep + 2)), &to, &to_cols,
                 error)) {
    return std::nullopt;
  }
  if (from_cols.size() != to_cols.size()) {
    if (error != nullptr) *error = "column lists must have equal length";
    return std::nullopt;
  }
  return InclusionDependency(std::move(from), std::move(from_cols),
                             std::move(to), std::move(to_cols));
}

InclusionDependency InclusionDependency::MustParse(std::string_view text) {
  std::string error;
  std::optional<InclusionDependency> dep = Parse(text, &error);
  UCQN_CHECK_MSG(dep.has_value(), error.c_str());
  return std::move(*dep);
}

bool InclusionDependency::HoldsIn(const Database& db) const {
  const std::set<Tuple>* from_tuples = db.Find(from_);
  if (from_tuples == nullptr) return true;
  const std::set<Tuple>* to_tuples = db.Find(to_);
  for (const Tuple& f : *from_tuples) {
    bool found = false;
    if (to_tuples != nullptr) {
      for (const Tuple& t : *to_tuples) {
        bool match = true;
        for (std::size_t m = 0; m < from_cols_.size(); ++m) {
          if (from_cols_[m] >= f.size() || to_cols_[m] >= t.size() ||
              f[from_cols_[m]] != t[to_cols_[m]]) {
            match = false;
            break;
          }
        }
        if (match) {
          found = true;
          break;
        }
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string InclusionDependency::ToString() const {
  auto render = [](const std::string& name,
                   const std::vector<std::size_t>& cols) {
    std::vector<std::string> parts;
    parts.reserve(cols.size());
    for (std::size_t c : cols) parts.push_back(std::to_string(c));
    return name + "[" + StrJoin(parts, ",") + "]";
  };
  return render(from_, from_cols_) + " c= " + render(to_, to_cols_);
}

std::optional<ConstraintSet> ConstraintSet::Parse(std::string_view text,
                                                  std::string* error) {
  ConstraintSet set;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::size_t comment = line.find_first_of("#%");
    if (comment != std::string::npos) line.resize(comment);
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::optional<InclusionDependency> dep =
        InclusionDependency::Parse(stripped, error);
    if (!dep.has_value()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + *error;
      }
      return std::nullopt;
    }
    set.Add(std::move(*dep));
  }
  return set;
}

ConstraintSet ConstraintSet::MustParse(std::string_view text) {
  std::string error;
  std::optional<ConstraintSet> set = Parse(text, &error);
  UCQN_CHECK_MSG(set.has_value(), error.c_str());
  return std::move(*set);
}

bool ConstraintSet::HoldsIn(const Database& db) const {
  for (const InclusionDependency& dep : deps_) {
    if (!dep.HoldsIn(db)) return false;
  }
  return true;
}

std::string ConstraintSet::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(deps_.size());
  for (const InclusionDependency& dep : deps_) lines.push_back(dep.ToString());
  return StrJoin(lines, "\n");
}

namespace {

// True if `to_cols` is a permutation of 0..k-1, i.e. the dependency pins
// down the target tuple completely and the derived atom is fully
// determined.
bool FullTargetCoverage(const std::vector<std::size_t>& to_cols) {
  std::vector<std::size_t> sorted = to_cols;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t m = 0; m < sorted.size(); ++m) {
    if (sorted[m] != m) return false;
  }
  return true;
}

}  // namespace

namespace {

// The bounded chase shared by refutation and ChaseQuery: the closure of
// `q`'s positive atoms under the full-target-coverage dependencies. The
// derived atoms reuse the query's own terms, so the closure is finite.
std::set<Atom> ChaseClosure(const ConjunctiveQuery& q,
                            const ConstraintSet& constraints) {
  std::set<Atom> known;
  for (const Literal& l : q.body()) {
    if (l.positive()) known.insert(l.atom());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const InclusionDependency& dep : constraints.dependencies()) {
      if (!FullTargetCoverage(dep.to_columns())) continue;
      std::vector<Atom> derived;
      for (const Atom& atom : known) {
        if (atom.relation() != dep.from_relation()) continue;
        bool in_range = true;
        for (std::size_t c : dep.from_columns()) {
          if (c >= atom.arity()) {
            in_range = false;
            break;
          }
        }
        if (!in_range) continue;
        std::vector<Term> args(dep.to_columns().size());
        for (std::size_t m = 0; m < dep.from_columns().size(); ++m) {
          args[dep.to_columns()[m]] = atom.args()[dep.from_columns()[m]];
        }
        derived.push_back(Atom(dep.to_relation(), std::move(args)));
      }
      for (Atom& atom : derived) {
        if (known.insert(std::move(atom)).second) changed = true;
      }
    }
  }
  return known;
}

}  // namespace

bool RefutedByConstraints(const ConjunctiveQuery& q,
                          const ConstraintSet& constraints) {
  if (q.IsUnsatisfiable()) return true;  // Proposition 8, no chase needed
  std::set<Atom> known = ChaseClosure(q, constraints);
  for (const Literal& l : q.body()) {
    if (l.negative() && known.count(l.atom()) > 0) return true;
  }
  return false;
}

ConjunctiveQuery ChaseQuery(const ConjunctiveQuery& q,
                            const ConstraintSet& constraints) {
  std::set<Atom> known = ChaseClosure(q, constraints);
  std::vector<Literal> body = q.body();
  for (const Atom& atom : known) {
    if (!q.PositiveBodyContains(atom)) {
      body.push_back(Literal::Positive(atom));
    }
  }
  return q.WithBody(std::move(body));
}

UnionQuery ChaseQuery(const UnionQuery& q, const ConstraintSet& constraints) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    out.AddDisjunct(ChaseQuery(disjunct, constraints));
  }
  return out;
}

UnionQuery PruneWithConstraints(const UnionQuery& q,
                                const ConstraintSet& constraints) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (!RefutedByConstraints(disjunct, constraints)) {
      out.AddDisjunct(disjunct);
    }
  }
  return out;
}

}  // namespace ucqn
