#ifndef UCQN_CONSTRAINTS_INCLUSION_H_
#define UCQN_CONSTRAINTS_INCLUSION_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/query.h"
#include "eval/database.h"

namespace ucqn {

// An inclusion dependency (Example 6's foreign key, generalized):
//
//   from[ c1, ..., ck ]  ⊆  to[ d1, ..., dk ]
//
// every projection of `from` onto columns c̄ appears as the projection of
// some `to`-tuple onto columns d̄. Written textually as e.g.
//
//   R[1] c= S[0]            # single column (0-based)
//   Orders[1,2] c= Pairs[0,1]
class InclusionDependency {
 public:
  InclusionDependency() = default;
  InclusionDependency(std::string from, std::vector<std::size_t> from_cols,
                      std::string to, std::vector<std::size_t> to_cols);

  const std::string& from_relation() const { return from_; }
  const std::vector<std::size_t>& from_columns() const { return from_cols_; }
  const std::string& to_relation() const { return to_; }
  const std::vector<std::size_t>& to_columns() const { return to_cols_; }

  // Parses the textual form above. Returns nullopt and sets `*error` on
  // malformed input.
  static std::optional<InclusionDependency> Parse(std::string_view text,
                                                  std::string* error);
  static InclusionDependency MustParse(std::string_view text);

  // True if `db` satisfies the dependency.
  bool HoldsIn(const Database& db) const;

  std::string ToString() const;

  friend bool operator==(const InclusionDependency& a,
                         const InclusionDependency& b) {
    return a.from_ == b.from_ && a.from_cols_ == b.from_cols_ &&
           a.to_ == b.to_ && a.to_cols_ == b.to_cols_;
  }

 private:
  std::string from_;
  std::vector<std::size_t> from_cols_;
  std::string to_;
  std::vector<std::size_t> to_cols_;
};

// A set of inclusion dependencies, parseable one per line (#/% comments).
class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::vector<InclusionDependency> deps)
      : deps_(std::move(deps)) {}

  const std::vector<InclusionDependency>& dependencies() const {
    return deps_;
  }
  void Add(InclusionDependency dep) { deps_.push_back(std::move(dep)); }
  bool empty() const { return deps_.empty(); }
  std::size_t size() const { return deps_.size(); }

  static std::optional<ConstraintSet> Parse(std::string_view text,
                                            std::string* error);
  static ConstraintSet MustParse(std::string_view text);

  bool HoldsIn(const Database& db) const;

  std::string ToString() const;

 private:
  std::vector<InclusionDependency> deps_;
};

// The semantic-optimizer check of Example 6: returns true if `q`'s body is
// unsatisfiable on every instance satisfying `constraints` — detected when
// some negative literal ¬S(ȳ) is *implied* by a positive literal R(x̄)
// through a dependency whose target columns cover ALL of S's columns with
// matching terms (e.g. R(x, z), not S(z) under R[1] ⊆ S[0]).
//
// The check is sound but (deliberately) not complete: it closes the
// positive body under full-coverage dependencies (a bounded chase) and
// looks for a complementary pair, the pattern that arises from
// global-as-view unfoldings in practice (Section 4.2).
bool RefutedByConstraints(const ConjunctiveQuery& q,
                          const ConstraintSet& constraints);

// Drops disjuncts refuted under `constraints` — compile-time pruning of
// plans, e.g. removing Example 6's overestimate disjunct so the feasibility
// verdict and the runtime Δ improve for free.
UnionQuery PruneWithConstraints(const UnionQuery& q,
                                const ConstraintSet& constraints);

// Appends to `q`'s body every atom its positive body implies under the
// full-target-coverage dependencies of `constraints` (the same bounded
// chase RefutedByConstraints runs, materialized as literals). On every
// instance satisfying the constraints, the chased query is equivalent to
// `q` — but it can be strictly *more answerable*: a derived atom over a
// relation with friendlier access patterns may bind variables the
// original body cannot, turning infeasible queries feasible
// (semantic optimization under access patterns; the paper's
// integrity-constraints future work). Already-present atoms are not
// duplicated.
ConjunctiveQuery ChaseQuery(const ConjunctiveQuery& q,
                            const ConstraintSet& constraints);
UnionQuery ChaseQuery(const UnionQuery& q, const ConstraintSet& constraints);

}  // namespace ucqn

#endif  // UCQN_CONSTRAINTS_INCLUSION_H_
