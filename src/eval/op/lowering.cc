#include "eval/op/lowering.h"

#include <algorithm>
#include <cstdio>

namespace ucqn {

const char* OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kAccessScan:
      return "AccessScan";
    case OperatorKind::kHashJoin:
      return "HashJoin";
    case OperatorKind::kFilter:
      return "Filter";
    case OperatorKind::kHashAntiJoin:
      return "HashAntiJoin";
    case OperatorKind::kMaterialize:
      return "Materialize";
  }
  return "?";
}

OperatorKind ClassifyLiteral(const Literal& literal,
                             const BoundVariables& bound) {
  if (literal.negative()) return OperatorKind::kHashAntiJoin;
  if (IsFilterLiteral(literal, bound)) return OperatorKind::kFilter;
  for (const Term& arg : literal.args()) {
    if (arg.IsVariable() && bound.count(arg.name()) > 0) {
      return OperatorKind::kHashJoin;
    }
  }
  return OperatorKind::kAccessScan;
}

std::vector<OperatorKind> LowerOperatorKinds(const ConjunctiveQuery& q) {
  std::vector<OperatorKind> kinds;
  kinds.reserve(q.body().size());
  BoundVariables bound;
  for (const Literal& literal : q.body()) {
    kinds.push_back(ClassifyLiteral(literal, bound));
    if (literal.positive()) BindVariables(literal, &bound);
  }
  return kinds;
}

std::string LoweredChain::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const LoweredOperator& op = ops[i];
    out += std::string(i == 0 ? "  " : "  -> ") + OperatorKindName(op.kind) +
           " " + op.literal.ToString();
    if (op.decision.chosen.has_value()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", op.estimated_cost);
      out += " via " + op.decision.chosen->word() + " est_cost=" + buf;
    } else {
      out += " (no usable pattern)";
    }
    out += "\n";
  }
  out += "  -> Materialize\n";
  return out;
}

LoweredChain LowerDisjunct(const ConjunctiveQuery& q, const Catalog& catalog,
                           const CostModel& model) {
  LoweredChain chain;
  chain.ops.reserve(q.body().size());
  BoundVariables bound;
  PlanContext context;  // same running estimate the planner keeps
  bool executable = true;
  for (const Literal& literal : q.body()) {
    LoweredOperator op;
    op.kind = ClassifyLiteral(literal, bound);
    op.literal = literal;
    ChoosePattern(catalog, literal, bound, model, context, &op.decision);
    for (const PatternCandidate& candidate : op.decision.candidates) {
      if (candidate.chosen) op.estimated_cost = candidate.cost;
    }
    executable = executable && op.decision.chosen.has_value();
    // Filters keep the live bindings (at most) level; expanding literals
    // multiply them — the same update ExplainPlan and the ordering loop
    // apply, driven by the same classification.
    if (op.kind == OperatorKind::kAccessScan ||
        op.kind == OperatorKind::kHashJoin) {
      context.live_bindings = std::max(
          1.0, context.live_bindings * model.ExpectedFanout(literal, bound));
    }
    if (literal.positive()) BindVariables(literal, &bound);
    chain.ops.push_back(std::move(op));
  }
  chain.ok = executable;
  return chain;
}

}  // namespace ucqn
