#include "eval/op/operators.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ucqn {

// The pattern decision and slot classification happen on first contact
// with the frontier — not at lowering time — so that (a) a literal no
// morsel ever reaches never errors, exactly like the legacy loop's
// early-out on an empty frontier, and (b) an adaptive cost model prices
// the decision with the *actual* live-binding count, not the planner's
// estimate. The frontier's column set is fixed per chain stage, so one
// preparation serves every later morsel.
bool FetchOperator::Prepare(const ColumnarFrontier& frontier) {
  TermDictionary& dict = TermDictionary::Global();
  // The variables bound before this literal are exactly the frontier's
  // columns: positive literals add their new variables as columns, and
  // nothing else binds.
  BoundVariables bound(frontier.vars().begin(), frontier.vars().end());
  PlanContext context;
  context.live_bindings =
      static_cast<double>(std::max<std::size_t>(frontier.rows(), 1));
  pattern_ = ChoosePattern(*catalog_, *literal_, bound, *model_, context);
  if (!pattern_.has_value()) {
    return Fail("literal " + literal_->ToString() +
                " has no usable access pattern at its position");
  }

  // Classify each slot once; the per-row loops below are then pure
  // integer work (the encoded executor's plan, verbatim).
  const std::vector<Term>& args = literal_->args();
  const std::size_t arity = args.size();
  plan_.assign(arity, SlotPlan{});
  std::unordered_map<std::string, std::size_t> first_occurrence;
  for (std::size_t j = 0; j < arity; ++j) {
    if (args[j].IsGround()) {
      plan_[j].kind = Slot::kConst;
      plan_[j].id = dict.EncodeGround(args[j]);
      continue;
    }
    const std::size_t c = frontier.ColumnOf(args[j].name());
    if (c != ColumnarFrontier::kNoColumn) {
      plan_[j].kind = Slot::kColumn;
      plan_[j].column = c;
      continue;
    }
    auto [it, fresh] = first_occurrence.try_emplace(args[j].name(), j);
    if (fresh) {
      plan_[j].kind = Slot::kBindFirst;
      binder_slots_.push_back(j);
      binds_new_ = true;
    } else {
      plan_[j].kind = Slot::kBindRepeat;
      plan_[j].first = it->second;
    }
  }
  prepared_ = true;
  return true;
}

bool FetchOperator::Stage(ColumnarFrontier&& morsel, PendingWave* wave) {
  if (!prepared_ && !Prepare(morsel)) return false;
  ++counters_->morsels;
  TermDictionary& dict = TermDictionary::Global();
  const std::size_t arity = literal_->args().size();

  // Build the wave: one flat id signature per row (input slots whose
  // value is known before the call), deduplicated by integer hashing.
  // Only the distinct signatures decode to Term vectors for the Source
  // API, so the requests on the wire equal the legacy loop's, in the
  // same first-occurrence order.
  std::unordered_map<EncodedTuple, std::size_t, EncodedTupleHash> index;
  wave->requests.clear();
  wave->slot_of.assign(morsel.rows(), 0);
  EncodedTuple signature(arity);
  for (std::size_t r = 0; r < morsel.rows(); ++r) {
    for (std::size_t j = 0; j < arity; ++j) {
      std::uint32_t id = TermDictionary::kAbsentId;
      if (pattern_->IsInputSlot(j)) {
        if (plan_[j].kind == Slot::kConst) {
          id = plan_[j].id;
        } else if (plan_[j].kind == Slot::kColumn) {
          id = morsel.Column(plan_[j].column)[r];
        }
      }
      signature[j] = id;
    }
    auto [it, fresh] = index.try_emplace(signature, wave->requests.size());
    if (fresh) {
      std::vector<std::optional<Term>> request(arity);
      for (std::size_t j = 0; j < arity; ++j) {
        if (signature[j] != TermDictionary::kAbsentId) {
          request[j] = dict.DecodeTerm(signature[j]);
        }
      }
      wave->requests.push_back(std::move(request));
    }
    wave->slot_of[r] = it->second;
  }
  wave->morsel = std::move(morsel);
  return true;
}

bool FetchOperator::Absorb(PendingWave&& wave,
                           std::vector<FetchResult> fetched,
                           ColumnarFrontier* out) {
  TermDictionary& dict = TermDictionary::Global();
  const std::vector<Term>& args = literal_->args();
  const std::size_t arity = args.size();
  ColumnarFrontier& frontier = wave.morsel;
  const std::vector<std::size_t>& slot_of = wave.slot_of;

  for (const FetchResult& f : fetched) {
    if (!f.ok()) {
      return Fail("source call for literal " + literal_->ToString() +
                  " failed: " + f.error);
    }
  }

  // Encode each distinct result set once. A tuple whose arity differs
  // from the literal's can never unify, and a tuple carrying a variable
  // is not a fact — both are dropped here exactly as string-path
  // unification would reject them.
  std::vector<std::vector<EncodedTuple>> encoded(fetched.size());
  for (std::size_t f = 0; f < fetched.size(); ++f) {
    encoded[f].reserve(fetched[f].tuples.size());
    for (const Tuple& tuple : fetched[f].tuples) {
      if (tuple.size() != arity) continue;
      bool ground = true;
      for (const Term& term : tuple) {
        if (!term.IsGround()) {
          ground = false;
          break;
        }
      }
      if (!ground) continue;
      EncodedTuple ids(arity);
      for (std::size_t j = 0; j < arity; ++j) {
        ids[j] = dict.EncodeGround(tuple[j]);
      }
      encoded[f].push_back(std::move(ids));
    }
  }

  if (literal_->positive()) {
    // AccessScan / HashJoin / Filter: stream rows in order through their
    // request's tuples (in fetch order), appending matches column-wise —
    // exactly the binding-order x tuple-order the paper's left-to-right
    // reading derives witnesses in. A Filter simply has no binder slots:
    // surviving rows repeat once per matching fetched tuple, preserving
    // witness multiplicity.
    ColumnarFrontier next;
    for (const std::string& var : frontier.vars()) next.AddVar(var);
    for (std::size_t s : binder_slots_) next.AddVar(args[s].name());
    std::size_t matched = 0;
    const std::size_t base = frontier.width();
    for (std::size_t r = 0; r < frontier.rows(); ++r) {
      for (const EncodedTuple& tuple : encoded[slot_of[r]]) {
        bool match = true;
        for (std::size_t j = 0; j < arity && match; ++j) {
          switch (plan_[j].kind) {
            case Slot::kConst:
              match = tuple[j] == plan_[j].id;
              break;
            case Slot::kColumn:
              match = tuple[j] == frontier.Column(plan_[j].column)[r];
              break;
            case Slot::kBindFirst:
              break;
            case Slot::kBindRepeat:
              match = tuple[j] == tuple[plan_[j].first];
              break;
          }
        }
        if (!match) continue;
        for (std::size_t c = 0; c < base; ++c) {
          next.MutableColumn(c).push_back(frontier.Column(c)[r]);
        }
        for (std::size_t v = 0; v < binder_slots_.size(); ++v) {
          next.MutableColumn(base + v).push_back(tuple[binder_slots_[v]]);
        }
        ++matched;
      }
    }
    next.SetRows(matched);
    *out = std::move(next);
  } else if (!binds_new_) {
    // HashAntiJoin: build an id-keyed hash set per distinct request from
    // its fetched tuples, probe each row's instantiation, and keep the
    // row iff absent (ChoosePattern guarantees all variables are bound).
    std::vector<std::unordered_set<EncodedTuple, EncodedTupleHash>> probe(
        encoded.size());
    for (std::size_t f = 0; f < encoded.size(); ++f) {
      probe[f].insert(encoded[f].begin(), encoded[f].end());
      counters_->antijoin_build_tuples += probe[f].size();
    }
    std::vector<std::size_t> keep;
    keep.reserve(frontier.rows());
    EncodedTuple instantiated(arity);
    for (std::size_t r = 0; r < frontier.rows(); ++r) {
      for (std::size_t j = 0; j < arity; ++j) {
        instantiated[j] = plan_[j].kind == Slot::kConst
                              ? plan_[j].id
                              : frontier.Column(plan_[j].column)[r];
      }
      if (probe[slot_of[r]].count(instantiated) == 0) {
        keep.push_back(r);
      }
    }
    frontier.Retain(keep);
    *out = std::move(frontier);
  } else {
    // A negated literal with an unbound variable (unreachable while
    // ChoosePattern holds its guarantee) filters nothing: a ground tuple
    // never equals a tuple containing a variable.
    *out = std::move(frontier);
  }
  rows_out_ += out->rows();
  return true;
}

}  // namespace ucqn
