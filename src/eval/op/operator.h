#ifndef UCQN_EVAL_OP_OPERATOR_H_
#define UCQN_EVAL_OP_OPERATOR_H_

#include <cstdint>

namespace ucqn {

// The operator vocabulary of the push-based DAG executor (see
// eval/dag_executor.h): every disjunct of a UCQ¬ lowers to a linear
// chain of these, one per body literal plus the Materialize sink, and
// ColumnarFrontier morsels are pushed through the chain in witness
// order. The kinds are a classification of the one underlying
// fetch-and-merge step — which side of the merge a literal runs is
// decided here once, by the same IsFilterLiteral predicate the planner's
// literal ordering uses (cost/cost_model.h), so an explain dump and the
// executed chain can never disagree about filter placement.
enum class OperatorKind {
  // Positive literal whose input slots carry no already-bound variables:
  // one deduplicated request (constants only) fans the fetched tuples
  // out across the frontier.
  kAccessScan,
  // Positive literal joining fetched tuples against bound frontier
  // columns, appending the newly bound columns.
  kHashJoin,
  // Positive literal with every variable already bound: probes the
  // fetched tuples without adding columns (a duplicate-preserving
  // semi-join — one output row per matching fetched tuple, exactly the
  // string path's witness multiplicity).
  kFilter,
  // Negated literal: builds an id-keyed hash set per distinct request
  // from the fetched tuples and keeps exactly the frontier rows whose
  // instantiation is absent (Definition 3's membership filter, run
  // set-at-a-time).
  kHashAntiJoin,
  // Chain sink: decodes surviving morsels back into Substitutions in
  // derivation order.
  kMaterialize,
};

const char* OperatorKindName(OperatorKind kind);

// Executor-side counters of what the DAG did, folded into RuntimeStats
// by the public entry points (the source stack cannot see executor
// scheduling). All counting happens on the single driver thread — even
// "concurrent" disjuncts are rounds of staged waves resolved together —
// so the struct needs no synchronization; executions on different
// threads each carry their own instance and merge under the caller's
// lock (see server/session.cc).
struct OperatorCounters {
  // Disjunct chains driven to completion or failure.
  std::uint64_t disjuncts_executed = 0;
  // Morsels staged through fetch operators (one frontier chunk each; a
  // whole frontier is one morsel unless ExecutionOptions::morsel_rows
  // splits it).
  std::uint64_t morsels = 0;
  // Tuples inserted into anti-join build-side hash sets (distinct per
  // request).
  std::uint64_t antijoin_build_tuples = 0;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_OP_OPERATOR_H_
