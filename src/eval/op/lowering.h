#ifndef UCQN_EVAL_OP_LOWERING_H_
#define UCQN_EVAL_OP_LOWERING_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "cost/cost_model.h"
#include "eval/op/operator.h"
#include "schema/adornment.h"

namespace ucqn {

// The operator a literal runs as, given the variables bound before it.
// This is the single filter-placement decision point: it delegates to
// IsFilterLiteral (cost/cost_model.h), the same predicate ScoreLiteral
// uses to schedule filters first, so the planner's ordering, the explain
// dump, and the executed chain all classify a literal identically.
OperatorKind ClassifyLiteral(const Literal& literal,
                             const BoundVariables& bound);

// The operator kinds of `q`'s body literals in order, tracking the
// bound-variable progression. Cheap (no catalog or model); this is what
// the DAG executor builds its chains from at execution time.
std::vector<OperatorKind> LowerOperatorKinds(const ConjunctiveQuery& q);

// One lowered operator with its static annotations for --explain: the
// pattern decision and the chosen candidate's cost under the planner's
// running live-binding estimate (the executor re-prices with actual
// frontier sizes at run time; for the static model the choice is
// context-free and therefore identical).
struct LoweredOperator {
  OperatorKind kind = OperatorKind::kAccessScan;
  Literal literal;
  // Every declared pattern of the literal's relation with usability and
  // cost; `decision.chosen` is empty when the literal cannot be called
  // at its position.
  PatternDecision decision;
  // The chosen candidate's cost (0 when no pattern is usable).
  double estimated_cost = 0.0;
};

// A disjunct's compiled operator chain (Materialize sink implicit).
struct LoweredChain {
  // False when some literal has no usable pattern at its position. The
  // chain is still fully classified — execution stays lazy about this
  // (an unreachable literal never errors), so lowering must too.
  bool ok = false;
  std::vector<LoweredOperator> ops;

  // Root-first rendering, e.g.
  //   AccessScan R(x, z) via oo est_cost=250500.0
  //   -> HashAntiJoin S(z) via i est_cost=0.0
  //   -> Materialize
  std::string ToString() const;
};

// Compiles `q`'s body into its operator chain under `model`, annotating
// each operator with the pattern decision and cost at the planner's
// estimated context (same running estimate as ExplainPlan). Purely
// static — no source calls.
LoweredChain LowerDisjunct(const ConjunctiveQuery& q, const Catalog& catalog,
                           const CostModel& model);

}  // namespace ucqn

#endif  // UCQN_EVAL_OP_LOWERING_H_
