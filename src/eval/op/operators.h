#ifndef UCQN_EVAL_OP_OPERATORS_H_
#define UCQN_EVAL_OP_OPERATORS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "ast/substitution.h"
#include "cost/cost_model.h"
#include "dict/term_dictionary.h"
#include "eval/frontier.h"
#include "eval/op/operator.h"
#include "eval/source.h"
#include "schema/catalog.h"

namespace ucqn {

// One staged (not yet fetched) wave of a fetch operator for one input
// morsel: the deduplicated requests (first-occurrence order — the order
// every runtime ledger is keyed on) plus the row -> request mapping the
// merge needs back. The driver owns the transport call between Stage and
// Absorb, which is what lets several disjuncts' waves resolve inside one
// clock overlap bracket.
struct PendingWave {
  ColumnarFrontier morsel;
  std::vector<std::vector<std::optional<Term>>> requests;
  std::vector<std::size_t> slot_of;  // row -> index into `requests`
};

// A source-literal operator of the DAG (AccessScan / HashJoin / Filter /
// HashAntiJoin — the kind is a lowering-time classification; all four
// share the fetch-and-merge core, which is exactly what keeps the DAG
// byte-identical to the encoded loop it replaces). Push-based with an
// explicit seam: Stage(morsel) chooses the access pattern (first morsel
// only; live_bindings = that morsel's rows, the same actual count the
// legacy loop passed) and builds the deduplicated wave; the driver
// fetches; Absorb(wave, results) merges into the output morsel.
//
// Not thread-safe; one instance belongs to one execution's chain.
class FetchOperator {
 public:
  // None of the pointers are owned; all must outlive the operator.
  FetchOperator(OperatorKind kind, const Literal* literal,
                const Catalog* catalog, const CostModel* model,
                OperatorCounters* counters)
      : kind_(kind),
        literal_(literal),
        catalog_(catalog),
        model_(model),
        counters_(counters) {}

  OperatorKind kind() const { return kind_; }
  const Literal& literal() const { return *literal_; }
  // Set by the first successful Stage.
  const std::optional<AccessPattern>& pattern() const { return pattern_; }
  // Cumulative output rows across all absorbed morsels — the DAG's
  // reading of the legacy per-literal frontier size, which max_bindings
  // bounds.
  std::size_t rows_out() const { return rows_out_; }
  const std::string& error() const { return error_; }

  // Classifies slots and chooses the pattern on first contact, then
  // builds `morsel`'s deduplicated wave. False on failure (error()).
  bool Stage(ColumnarFrontier&& morsel, PendingWave* wave);

  // Merges one fetched wave into `out` (join kinds append matched rows
  // column-wise; the anti-join retains non-members), preserving row
  // order. False on failure (a failed fetch, reported in request order).
  bool Absorb(PendingWave&& wave, std::vector<FetchResult> fetched,
              ColumnarFrontier* out);

 private:
  // The encoded executor's slot classification, verbatim: how each
  // argument position of the literal maps onto the frontier.
  enum class Slot { kConst, kColumn, kBindFirst, kBindRepeat };
  struct SlotPlan {
    Slot kind = Slot::kConst;
    std::uint32_t id = 0;    // kConst: the ground value's id
    std::size_t column = 0;  // kColumn: frontier column of the variable
    std::size_t first = 0;   // kBindRepeat: slot of the first occurrence
  };

  bool Prepare(const ColumnarFrontier& frontier);
  bool Fail(std::string error) {
    error_ = std::move(error);
    return false;
  }

  OperatorKind kind_;
  const Literal* literal_;
  const Catalog* catalog_;
  const CostModel* model_;
  OperatorCounters* counters_;

  bool prepared_ = false;
  std::optional<AccessPattern> pattern_;
  std::vector<SlotPlan> plan_;
  std::vector<std::size_t> binder_slots_;  // slots introducing new vars
  bool binds_new_ = false;
  std::size_t rows_out_ = 0;
  std::string error_;
};

// The chain sink: decodes surviving morsels back into Substitutions, in
// push (= derivation = witness) order.
class MaterializeOp {
 public:
  void Push(const ColumnarFrontier& morsel, const TermDictionary& dict) {
    std::vector<Substitution> decoded = morsel.DecodeAll(dict);
    bindings_.insert(bindings_.end(),
                     std::make_move_iterator(decoded.begin()),
                     std::make_move_iterator(decoded.end()));
  }
  std::vector<Substitution>& bindings() { return bindings_; }

 private:
  std::vector<Substitution> bindings_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_OP_OPERATORS_H_
