#include "eval/source.h"

#include "util/logging.h"

namespace ucqn {

std::vector<FetchResult> FetchFuture::Take() {
  UCQN_CHECK_MSG(valid(), "Take() on an invalid (empty or already-taken) "
                          "FetchFuture");
  if (ready_) {
    ready_ = false;
    return std::move(results_);
  }
  std::function<std::vector<FetchResult>()> resolve = std::move(resolve_);
  resolve_ = nullptr;
  return resolve();
}

std::vector<FetchResult> Source::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  std::vector<FetchResult> results;
  results.reserve(inputs.size());
  for (const std::vector<std::optional<Term>>& request : inputs) {
    results.push_back(Fetch(relation, pattern, request));
  }
  return results;
}

FetchFuture Source::FetchBatchAsync(
    std::string relation, AccessPattern pattern,
    std::vector<std::vector<std::optional<Term>>> inputs) {
  // Deferring the *virtual* FetchBatch means any decorator stacked on
  // `this` resolves the wave through its own batch path — cache rounds,
  // retry rounds, metering, and parallel fan-out all behave exactly as a
  // synchronous caller would see them, just at Take() time.
  return FetchFuture::Deferred(
      [this, relation = std::move(relation), pattern = std::move(pattern),
       inputs = std::move(inputs)]() {
        return FetchBatch(relation, pattern, inputs);
      });
}

std::vector<Tuple> Source::FetchOrDie(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  FetchResult result = Fetch(relation, pattern, inputs);
  UCQN_CHECK_MSG(result.ok(), result.error.c_str());
  return std::move(result.tuples);
}

FetchResult DatabaseSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  const RelationSchema* schema = catalog_->Find(relation);
  UCQN_CHECK_MSG(schema != nullptr, "fetch of undeclared relation");
  UCQN_CHECK_MSG(schema->HasPattern(pattern),
                 "fetch with undeclared access pattern");
  UCQN_CHECK_MSG(pattern.arity() == schema->arity(),
                 "fetch pattern arity must match the relation's declared "
                 "arity");
  UCQN_CHECK_MSG(inputs.size() == schema->arity(),
                 "fetch inputs must have one entry per declared slot");
  for (std::size_t j = 0; j < pattern.arity(); ++j) {
    if (pattern.IsInputSlot(j)) {
      UCQN_CHECK_MSG(inputs[j].has_value() && inputs[j]->IsGround(),
                     "input slot requires a ground value");
    }
  }

  std::vector<Tuple> result;
  const std::set<Tuple>* tuples = db_->Find(relation);
  if (tuples != nullptr) {
    for (const Tuple& tuple : *tuples) {
      // A stored tuple whose arity disagrees with the declared schema is a
      // data-loading bug; indexing it by pattern position would be UB.
      UCQN_CHECK_MSG(tuple.size() == schema->arity(),
                     "stored tuple arity mismatches the relation's declared "
                     "arity");
      bool matches = true;
      for (std::size_t j = 0; j < pattern.arity(); ++j) {
        if (pattern.IsInputSlot(j) && tuple[j] != *inputs[j]) {
          matches = false;
          break;
        }
      }
      if (matches) result.push_back(tuple);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
    stats_.tuples_returned += result.size();
    SourceStats& rel_stats = per_relation_stats_[relation];
    ++rel_stats.calls;
    rel_stats.tuples_returned += result.size();
  }
  return FetchResult::Ok(std::move(result));
}

void DatabaseSource::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Reset();
  per_relation_stats_.clear();
}

}  // namespace ucqn
