#include "eval/source_adapters.h"

#include "util/logging.h"

namespace ucqn {

namespace {

// Renders the input-slot projection of `tuple` under `pattern` as the
// index key. Term::ToString is injective enough here (quoted constants vs
// variables never collide, and tuples contain ground terms only).
std::string ProjectionKey(const AccessPattern& pattern, const Tuple& tuple) {
  std::string key;
  for (std::size_t j = 0; j < pattern.arity(); ++j) {
    if (pattern.IsInputSlot(j)) {
      key += tuple[j].ToString();
      key += '|';
    }
  }
  return key;
}

}  // namespace

const IndexedDatabaseSource::Index&
IndexedDatabaseSource::GetOrBuildIndexLocked(const std::string& relation,
                                             const AccessPattern& pattern) {
  const std::string index_key = relation + "^" + pattern.word();
  auto it = indexes_.find(index_key);
  if (it != indexes_.end()) return it->second;
  Index& index = indexes_[index_key];
  if (const std::set<Tuple>* tuples = db_->Find(relation)) {
    for (const Tuple& tuple : *tuples) {
      UCQN_CHECK_MSG(tuple.size() == pattern.arity(),
                     "stored tuple arity mismatches the relation's declared "
                     "arity");
      index.buckets[ProjectionKey(pattern, tuple)].push_back(tuple);
    }
  }
  return index;
}

FetchResult IndexedDatabaseSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  const RelationSchema* schema = catalog_->Find(relation);
  UCQN_CHECK_MSG(schema != nullptr, "fetch of undeclared relation");
  UCQN_CHECK_MSG(schema->HasPattern(pattern),
                 "fetch with undeclared access pattern");
  UCQN_CHECK_MSG(inputs.size() == schema->arity(),
                 "fetch inputs must have one entry per declared slot");
  std::string key;
  for (std::size_t j = 0; j < pattern.arity(); ++j) {
    if (pattern.IsInputSlot(j)) {
      UCQN_CHECK_MSG(inputs[j].has_value() && inputs[j]->IsGround(),
                     "input slot requires a ground value");
      key += inputs[j]->ToString();
      key += '|';
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.calls;
  const Index& index = GetOrBuildIndexLocked(relation, pattern);
  auto bucket = index.buckets.find(key);
  if (bucket == index.buckets.end()) return FetchResult::Ok({});
  stats_.tuples_returned += bucket->second.size();
  return FetchResult::Ok(bucket->second);
}

void CompositeSource::Route(const std::string& relation, Source* source) {
  UCQN_CHECK_MSG(source != nullptr, "null backend source");
  routes_[relation] = source;
}

FetchResult CompositeSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  auto it = routes_.find(relation);
  UCQN_CHECK_MSG(it != routes_.end(), "no route for relation");
  return it->second->Fetch(relation, pattern, inputs);
}

std::vector<FetchResult> CompositeSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  auto it = routes_.find(relation);
  UCQN_CHECK_MSG(it != routes_.end(), "no route for relation");
  return it->second->FetchBatch(relation, pattern, inputs);
}

}  // namespace ucqn
