#include "eval/frontier.h"

namespace ucqn {

std::size_t ColumnarFrontier::AddVar(const std::string& var) {
  const std::size_t index = columns_.size();
  vars_.push_back(var);
  var_index_.emplace(var, index);
  columns_.emplace_back();
  return index;
}

void ColumnarFrontier::Retain(const std::vector<std::size_t>& selection) {
  for (std::vector<std::uint32_t>& column : columns_) {
    for (std::size_t i = 0; i < selection.size(); ++i) {
      column[i] = column[selection[i]];
    }
    column.resize(selection.size());
  }
  rows_ = selection.size();
}

Substitution ColumnarFrontier::DecodeRow(std::size_t row,
                                         const TermDictionary& dict) const {
  Substitution binding;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    binding.Bind(Term::Variable(vars_[c]), dict.DecodeTerm(columns_[c][row]));
  }
  return binding;
}

std::vector<Substitution> ColumnarFrontier::DecodeAll(
    const TermDictionary& dict) const {
  std::vector<Substitution> out;
  out.reserve(rows_);
  for (std::size_t row = 0; row < rows_; ++row) {
    out.push_back(DecodeRow(row, dict));
  }
  return out;
}

}  // namespace ucqn
