#include "eval/executor.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ast/substitution.h"
#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "dict/term_dictionary.h"
#include "eval/dag_executor.h"
#include "eval/frontier.h"
#include "eval/op/operator.h"
#include "schema/adornment.h"

namespace ucqn {

namespace {

// Resolves the model every pattern decision flows through: the caller's,
// or a StaticCostModel built from the legacy preference knob. `storage`
// keeps the fallback alive for the duration of the execution.
const CostModel* ResolveCostModel(const ExecutionOptions& options,
                                  std::optional<StaticCostModel>* storage) {
  if (options.cost_model != nullptr) return options.cost_model;
  storage->emplace(options.pattern_preference);
  return &**storage;
}

// The runtime configuration actually used: a stats sink needs the meter,
// so requesting one forces metering on.
RuntimeOptions EffectiveRuntime(const ExecutionOptions& options) {
  RuntimeOptions runtime = options.runtime;
  if (options.stats_sink != nullptr) runtime.metering = true;
  return runtime;
}

// Feeds one finished stack's observed metrics into the sink, if any.
void DrainStats(const ExecutionOptions& options, SourceStack* stack) {
  if (options.stats_sink != nullptr && stack->meter() != nullptr) {
    options.stats_sink->Observe(*stack->meter());
  }
}

// Builds the Fetch argument vector for `literal` under binding `binding`:
// ground values in the pattern's input slots, empty elsewhere. Output
// slots stay empty even when the binding knows their value — a source
// only accepts its declared inputs (Definition 1; the executor filters
// returned tuples against the binding itself), and leaking bound values
// into output slots would split the wave dedup below into per-binding
// calls for patterns that are not actually keyed on those values.
std::vector<std::optional<Term>> FetchInputs(const Literal& literal,
                                             const AccessPattern& pattern,
                                             const Substitution& binding) {
  std::vector<std::optional<Term>> inputs;
  inputs.reserve(literal.args().size());
  for (std::size_t j = 0; j < literal.args().size(); ++j) {
    Term value = binding.Apply(literal.args()[j]);
    if (pattern.IsInputSlot(j) && value.IsGround()) {
      inputs.emplace_back(std::move(value));
    } else {
      inputs.emplace_back(std::nullopt);
    }
  }
  return inputs;
}

// Extends `binding` so that the literal's arguments equal `tuple`;
// returns nullopt on mismatch (covers repeated variables and arguments
// already ground).
std::optional<Substitution> UnifyWithTuple(const Literal& literal,
                                           const Tuple& tuple,
                                           const Substitution& binding) {
  Substitution extended = binding;
  const std::vector<Term>& args = literal.args();
  if (args.size() != tuple.size()) return std::nullopt;
  for (std::size_t j = 0; j < args.size(); ++j) {
    Term value = extended.Apply(args[j]);
    if (value.IsGround()) {
      if (value != tuple[j]) return std::nullopt;
    } else {
      if (!extended.Bind(value, tuple[j])) return std::nullopt;
    }
  }
  return extended;
}

// Dedup key for one wave request. Term::ToString is injective on ground
// terms (constants are quoted) and 0x1f never occurs in a rendering, so
// distinct input vectors get distinct keys.
std::string RequestKey(const std::vector<std::optional<Term>>& inputs) {
  std::string key;
  for (const std::optional<Term>& value : inputs) {
    if (value.has_value()) key += value->ToString();
    key += '\x1f';
  }
  return key;
}

// Id-encoded dedup key for one wave request: four raw bytes per slot
// (TermDictionary::kAbsentId for empty ones) instead of rendering every
// value to a string. Groups requests exactly like RequestKey — the
// dictionary is injective on spellings and keeps Δ-null distinct from
// the constant "null" — just with integer hashing.
std::string EncodedRequestKey(const std::vector<std::optional<Term>>& inputs) {
  TermDictionary& dict = TermDictionary::Global();
  std::string key;
  key.resize(inputs.size() * sizeof(std::uint32_t));
  char* raw = key.data();
  for (const std::optional<Term>& value : inputs) {
    const std::uint32_t id = value.has_value() ? dict.EncodeGround(*value)
                                               : TermDictionary::kAbsentId;
    std::memcpy(raw, &id, sizeof(id));
    raw += sizeof(id);
  }
  return key;
}

std::string WaveDedupKey(const std::vector<std::optional<Term>>& inputs,
                         bool dictionary) {
  return dictionary ? EncodedRequestKey(inputs) : RequestKey(inputs);
}

// One literal's wave: the deduplicated source calls serving all live
// bindings, issued as a single FetchBatch.
struct Wave {
  std::vector<FetchResult> fetched;  // one per distinct request
  std::vector<std::size_t> slot_of;  // binding index -> slot in `fetched`
};

// Builds and issues the wave for `literal` across `bindings`: identical
// (same ground input values) requests from different bindings collapse to
// one call even without a cache in the stack. Returns the error of the
// first failed call in request (first-occurrence) order, or nullopt.
std::optional<std::string> RunWave(const Literal& literal,
                                   const AccessPattern& pattern,
                                   const std::vector<Substitution>& bindings,
                                   Source* source, Wave* wave) {
  std::vector<std::vector<std::optional<Term>>> requests;
  std::unordered_map<std::string, std::size_t> index;
  wave->slot_of.resize(bindings.size());
  for (std::size_t b = 0; b < bindings.size(); ++b) {
    std::vector<std::optional<Term>> inputs =
        FetchInputs(literal, pattern, bindings[b]);
    auto [it, fresh] = index.try_emplace(RequestKey(inputs), requests.size());
    if (fresh) requests.push_back(std::move(inputs));
    wave->slot_of[b] = it->second;
  }
  wave->fetched = source->FetchBatch(literal.relation(), pattern, requests);
  for (const FetchResult& fetched : wave->fetched) {
    if (!fetched.ok()) {
      return "source call for literal " + literal.ToString() +
             " failed: " + fetched.error;
    }
  }
  return std::nullopt;
}

// What the pipelined loop did, merged into RuntimeStats by the public
// entry points (the stack itself cannot see executor-side scheduling).
struct PipelineCounters {
  std::uint64_t rounds = 0;
  std::uint64_t overlaps = 0;
};

// Executor-side scheduling counters -> the result's RuntimeStats. Folded
// on every path, including executions that run no stack: the DAG
// counters describe the executor, not the transport.
void FoldExecutorCounters(RuntimeStats* stats,
                          const PipelineCounters& pipeline,
                          const OperatorCounters& ops) {
  stats->pipeline_rounds = pipeline.rounds;
  stats->pipeline_overlaps = pipeline.overlaps;
  stats->disjuncts_executed = ops.disjuncts_executed;
  stats->morsels = ops.morsels;
  stats->antijoin_build_tuples = ops.antijoin_build_tuples;
}

// Inter-literal pipelining (RuntimeOptions::pipeline_depth > 1): instead
// of draining literal i's full wave before literal i+1 issues anything,
// each stage keeps a FIFO frontier of bindings waiting to run its
// literal, and every round services up to `pipeline_depth` non-empty
// stages at once — a chunk of at most max(1, parallelism) bindings per
// stage, each chunk issued as one deduplicated FetchBatchAsync wave, all
// of the round's waves resolved inside one clock overlap bracket so a
// SimulatedClock charges them max-over-waves. Bindings that clear a
// stage are appended to the next stage's frontier in order; because
// every frontier is consumed and produced FIFO along a single chain, the
// final bindings come out in exactly the depth-1 derivation order, and
// the answer set is identical at every depth — pipelining only changes
// transport scheduling.
//
// Differences from the one-wave-at-a-time path, by design:
//   - wave dedup applies per chunk (a cache layer still dedups across
//     chunks);
//   - max_bindings bounds the *total* live bindings across all stages
//     after each round (the honest measure of intermediate-result size
//     when several stages hold bindings at once);
//   - a failed call aborts with the error of the shallowest failing
//     stage of the round that observed it, which may name a different
//     literal than sequential execution would have reached first.
BindingsResult ExecuteForBindingsPipelined(const ConjunctiveQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const ExecutionOptions& options,
                                           Clock* clock,
                                           PipelineCounters* counters) {
  BindingsResult result;
  const std::vector<Literal>& body = q.body();
  const std::size_t n = body.size();
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);

  // The variables bound before each stage depend only on literal order,
  // not on data, so they can be precomputed.
  std::vector<BoundVariables> bound_before(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    bound_before[i + 1] = bound_before[i];
    if (body[i].positive()) BindVariables(body[i], &bound_before[i + 1]);
  }

  std::vector<std::deque<Substitution>> frontier(n);
  frontier[0].emplace_back();
  std::deque<Substitution> done;
  // Chosen lazily the first time bindings reach the stage (so an unusable
  // pattern only fails executions whose bindings actually get there, as
  // in the sequential path), then pinned for all of that stage's chunks.
  std::vector<std::optional<AccessPattern>> chosen(n);

  const std::size_t depth = options.runtime.pipeline_depth;
  const std::size_t chunk =
      std::max<std::size_t>(options.runtime.parallelism, 1);

  while (true) {
    // Service the deepest non-empty stages first: draining the pipe
    // bounds the number of bindings parked mid-chain.
    std::vector<std::size_t> stages;
    for (std::size_t i = n; i-- > 0;) {
      if (!frontier[i].empty()) {
        stages.push_back(i);
        if (stages.size() == depth) break;
      }
    }
    if (stages.empty()) break;
    std::sort(stages.begin(), stages.end());

    for (std::size_t i : stages) {
      if (chosen[i].has_value()) continue;
      PlanContext context;
      context.live_bindings = static_cast<double>(
          std::max<std::size_t>(frontier[i].size(), 1));
      chosen[i] = ChoosePattern(catalog, body[i], bound_before[i], *model,
                                context);
      if (!chosen[i].has_value()) {
        result.error = "literal " + body[i].ToString() +
                       " has no usable access pattern at its position";
        result.bindings.clear();
        return result;
      }
    }

    // Issue one chunk per stage as an async wave (issue order: ascending
    // literal), then resolve them all inside one overlap bracket.
    struct Lane {
      std::size_t stage = 0;
      std::vector<Substitution> batch;
      std::vector<std::size_t> slot_of;  // batch index -> request slot
      FetchFuture future;
    };
    std::vector<Lane> lanes;
    lanes.reserve(stages.size());
    for (std::size_t i : stages) {
      Lane lane;
      lane.stage = i;
      const std::size_t take = std::min(chunk, frontier[i].size());
      lane.batch.reserve(take);
      for (std::size_t k = 0; k < take; ++k) {
        lane.batch.push_back(std::move(frontier[i].front()));
        frontier[i].pop_front();
      }
      std::vector<std::vector<std::optional<Term>>> requests;
      std::unordered_map<std::string, std::size_t> index;
      lane.slot_of.resize(lane.batch.size());
      for (std::size_t b = 0; b < lane.batch.size(); ++b) {
        std::vector<std::optional<Term>> inputs =
            FetchInputs(body[i], *chosen[i], lane.batch[b]);
        // Dedup within the chunk by id signature (default) or rendered
        // string — the grouping is identical either way.
        auto [it, fresh] = index.try_emplace(
            WaveDedupKey(inputs, options.dictionary), requests.size());
        if (fresh) requests.push_back(std::move(inputs));
        lane.slot_of[b] = it->second;
      }
      lane.future = source->FetchBatchAsync(body[i].relation(), *chosen[i],
                                            std::move(requests));
      lanes.push_back(std::move(lane));
    }

    ++counters->rounds;
    const bool overlapped = lanes.size() >= 2;
    if (overlapped) ++counters->overlaps;
    if (overlapped && clock != nullptr) clock->BeginOverlap();
    std::vector<std::vector<FetchResult>> resolved(lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      if (overlapped && clock != nullptr) clock->BeginLane();
      resolved[l] = lanes[l].future.Take();
      if (overlapped && clock != nullptr) clock->EndLane();
    }
    if (overlapped && clock != nullptr) clock->EndOverlap();

    // Merge in ascending literal order; the shallowest failing stage of
    // the round reports its first failed request.
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      const Literal& literal = body[lane.stage];
      for (const FetchResult& fetched : resolved[l]) {
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
      }
      std::deque<Substitution>& out =
          lane.stage + 1 == n ? done : frontier[lane.stage + 1];
      for (std::size_t b = 0; b < lane.batch.size(); ++b) {
        const Substitution& binding = lane.batch[b];
        const FetchResult& fetched = resolved[l][lane.slot_of[b]];
        if (literal.positive()) {
          for (const Tuple& tuple : fetched.tuples) {
            std::optional<Substitution> extended =
                UnifyWithTuple(literal, tuple, binding);
            if (extended.has_value()) out.push_back(std::move(*extended));
          }
        } else {
          // All variables are bound (ChoosePattern guarantees it): probe
          // for the instantiated tuple, keep the binding iff absent.
          Tuple instantiated = binding.Apply(literal.args());
          bool present = false;
          for (const Tuple& tuple : fetched.tuples) {
            if (tuple == instantiated) {
              present = true;
              break;
            }
          }
          if (!present) out.push_back(binding);
        }
      }
    }

    if (options.max_bindings != 0) {
      std::size_t live = done.size();
      for (const std::deque<Substitution>& f : frontier) live += f.size();
      if (live > options.max_bindings) {
        result.error = "execution exceeded max_bindings (" +
                       std::to_string(options.max_bindings) +
                       ") across pipeline stages";
        result.bindings.clear();
        return result;
      }
    }
  }

  result.ok = true;
  result.bindings.assign(std::make_move_iterator(done.begin()),
                         std::make_move_iterator(done.end()));
  return result;
}

// The id-encoded batch loop (ExecutionOptions::dictionary): the same
// wave structure as ExecuteForBindingsRaw's batch mode — one
// deduplicated FetchBatch per literal across all live bindings, results
// merged per binding in order — but the frontier lives in columnar id
// form (one contiguous uint32 column per variable), wave dedup hashes
// flat id signatures instead of rendered strings, joins compare ids
// against columns, and negated literals probe an id-keyed hash set.
// Requests on the wire, answers, witness order, and every runtime
// ledger are byte-identical to the string path; strings are decoded
// only for the distinct requests handed to the Source API and for the
// final bindings.
BindingsResult ExecuteForBindingsEncoded(const ConjunctiveQuery& q,
                                         const Catalog& catalog,
                                         Source* source,
                                         const ExecutionOptions& options) {
  BindingsResult result;
  TermDictionary& dict = TermDictionary::Global();
  ColumnarFrontier frontier;
  BoundVariables bound;
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);

  for (const Literal& literal : q.body()) {
    PlanContext context;
    context.live_bindings =
        static_cast<double>(std::max<std::size_t>(frontier.rows(), 1));
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound, *model, context);
    if (!pattern.has_value()) {
      result.error = "literal " + literal.ToString() +
                     " has no usable access pattern at its position";
      result.bindings.clear();
      return result;
    }

    // Classify each slot once; the per-row loops below are then pure
    // integer work.
    const std::vector<Term>& args = literal.args();
    const std::size_t arity = args.size();
    enum class Slot { kConst, kColumn, kBindFirst, kBindRepeat };
    struct SlotPlan {
      Slot kind = Slot::kConst;
      std::uint32_t id = 0;    // kConst: the ground value's id
      std::size_t column = 0;  // kColumn: frontier column of the variable
      std::size_t first = 0;   // kBindRepeat: slot of the first occurrence
    };
    std::vector<SlotPlan> plan(arity);
    std::vector<std::size_t> binder_slots;  // slots introducing new vars
    std::unordered_map<std::string, std::size_t> first_occurrence;
    bool binds_new = false;
    for (std::size_t j = 0; j < arity; ++j) {
      if (args[j].IsGround()) {
        plan[j].kind = Slot::kConst;
        plan[j].id = dict.EncodeGround(args[j]);
        continue;
      }
      const std::size_t c = frontier.ColumnOf(args[j].name());
      if (c != ColumnarFrontier::kNoColumn) {
        plan[j].kind = Slot::kColumn;
        plan[j].column = c;
        continue;
      }
      auto [it, fresh] = first_occurrence.try_emplace(args[j].name(), j);
      if (fresh) {
        plan[j].kind = Slot::kBindFirst;
        binder_slots.push_back(j);
        binds_new = true;
      } else {
        plan[j].kind = Slot::kBindRepeat;
        plan[j].first = it->second;
      }
    }

    // Build the wave: one flat id signature per row (FetchInputs' rule
    // in id form — input slots whose value is known before the call),
    // deduplicated by integer hashing. Only the distinct signatures
    // decode to Term vectors for the Source API, so the requests on the
    // wire are equal to the string path's, in the same first-occurrence
    // order.
    std::unordered_map<EncodedTuple, std::size_t, EncodedTupleHash> index;
    std::vector<std::vector<std::optional<Term>>> requests;
    std::vector<std::size_t> slot_of(frontier.rows());
    EncodedTuple signature(arity);
    for (std::size_t r = 0; r < frontier.rows(); ++r) {
      for (std::size_t j = 0; j < arity; ++j) {
        std::uint32_t id = TermDictionary::kAbsentId;
        if (pattern->IsInputSlot(j)) {
          if (plan[j].kind == Slot::kConst) {
            id = plan[j].id;
          } else if (plan[j].kind == Slot::kColumn) {
            id = frontier.Column(plan[j].column)[r];
          }
        }
        signature[j] = id;
      }
      auto [it, fresh] = index.try_emplace(signature, requests.size());
      if (fresh) {
        std::vector<std::optional<Term>> request(arity);
        for (std::size_t j = 0; j < arity; ++j) {
          if (signature[j] != TermDictionary::kAbsentId) {
            request[j] = dict.DecodeTerm(signature[j]);
          }
        }
        requests.push_back(std::move(request));
      }
      slot_of[r] = it->second;
    }

    std::vector<FetchResult> fetched =
        source->FetchBatch(literal.relation(), *pattern, requests);
    for (const FetchResult& f : fetched) {
      if (!f.ok()) {
        result.error = "source call for literal " + literal.ToString() +
                       " failed: " + f.error;
        result.bindings.clear();
        return result;
      }
    }

    // Encode each distinct result set once. A tuple whose arity differs
    // from the literal's can never unify, and a tuple carrying a
    // variable is not a fact — both are dropped here exactly as the
    // string path's unification would reject them.
    std::vector<std::vector<EncodedTuple>> encoded(fetched.size());
    for (std::size_t f = 0; f < fetched.size(); ++f) {
      encoded[f].reserve(fetched[f].tuples.size());
      for (const Tuple& tuple : fetched[f].tuples) {
        if (tuple.size() != arity) continue;
        bool ground = true;
        for (const Term& term : tuple) {
          if (!term.IsGround()) {
            ground = false;
            break;
          }
        }
        if (!ground) continue;
        EncodedTuple ids(arity);
        for (std::size_t j = 0; j < arity; ++j) {
          ids[j] = dict.EncodeGround(tuple[j]);
        }
        encoded[f].push_back(std::move(ids));
      }
    }

    if (literal.positive()) {
      // Join: stream rows in order through their request's tuples (in
      // fetch order), appending matches column-wise — exactly the
      // binding-order × tuple-order the string path derives witnesses
      // in.
      ColumnarFrontier next;
      for (const std::string& var : frontier.vars()) next.AddVar(var);
      for (std::size_t s : binder_slots) next.AddVar(args[s].name());
      std::size_t out_rows = 0;
      const std::size_t base = frontier.width();
      for (std::size_t r = 0; r < frontier.rows(); ++r) {
        for (const EncodedTuple& tuple : encoded[slot_of[r]]) {
          bool match = true;
          for (std::size_t j = 0; j < arity && match; ++j) {
            switch (plan[j].kind) {
              case Slot::kConst:
                match = tuple[j] == plan[j].id;
                break;
              case Slot::kColumn:
                match = tuple[j] == frontier.Column(plan[j].column)[r];
                break;
              case Slot::kBindFirst:
                break;
              case Slot::kBindRepeat:
                match = tuple[j] == tuple[plan[j].first];
                break;
            }
          }
          if (!match) continue;
          for (std::size_t c = 0; c < base; ++c) {
            next.MutableColumn(c).push_back(frontier.Column(c)[r]);
          }
          for (std::size_t v = 0; v < binder_slots.size(); ++v) {
            next.MutableColumn(base + v).push_back(tuple[binder_slots[v]]);
          }
          ++out_rows;
        }
      }
      next.SetRows(out_rows);
      frontier = std::move(next);
      BindVariables(literal, &bound);
    } else if (!binds_new) {
      // Anti-join: probe each row's instantiated tuple against an
      // id-keyed hash set of its request's result; keep the row iff
      // absent (ChoosePattern guarantees all variables are bound here).
      std::vector<std::unordered_set<EncodedTuple, EncodedTupleHash>> probe(
          encoded.size());
      for (std::size_t f = 0; f < encoded.size(); ++f) {
        probe[f].insert(encoded[f].begin(), encoded[f].end());
      }
      std::vector<std::size_t> keep;
      keep.reserve(frontier.rows());
      EncodedTuple instantiated(arity);
      for (std::size_t r = 0; r < frontier.rows(); ++r) {
        for (std::size_t j = 0; j < arity; ++j) {
          instantiated[j] = plan[j].kind == Slot::kConst
                                ? plan[j].id
                                : frontier.Column(plan[j].column)[r];
        }
        if (probe[slot_of[r]].count(instantiated) == 0) {
          keep.push_back(r);
        }
      }
      frontier.Retain(keep);
    }
    // A negated literal with an unbound variable (unreachable while
    // ChoosePattern holds its guarantee) filters nothing: a ground
    // tuple never equals a tuple containing a variable, so the string
    // path keeps every binding and so do we.

    if (options.max_bindings != 0 && frontier.rows() > options.max_bindings) {
      result.error = "execution exceeded max_bindings (" +
                     std::to_string(options.max_bindings) + ") at literal " +
                     literal.ToString();
      result.bindings.clear();
      return result;
    }
    if (frontier.rows() == 0) break;  // negations cannot revive answers
  }

  result.ok = true;
  result.bindings = frontier.DecodeAll(dict);
  return result;
}

// The core left-to-right loop, talking to `source` directly (any runtime
// stack has already been interposed by the public entry points).
BindingsResult ExecuteForBindingsRaw(const ConjunctiveQuery& q,
                                     const Catalog& catalog, Source* source,
                                     const ExecutionOptions& options) {
  BindingsResult result;
  result.bindings.emplace_back();
  BoundVariables bound;
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);
  for (const Literal& literal : q.body()) {
    PlanContext context;
    context.live_bindings = static_cast<double>(
        std::max<std::size_t>(result.bindings.size(), 1));
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound, *model, context);
    if (!pattern.has_value()) {
      result.error = "literal " + literal.ToString() +
                     " has no usable access pattern at its position";
      result.bindings.clear();
      return result;
    }
    std::vector<Substitution> next;
    if (options.batch) {
      // Wave mode (default): every live binding's call for this literal
      // flies as one batched, deduplicated FetchBatch, then the results
      // are merged per binding in the original order — the answer set is
      // identical to the per-binding loop below, only the transport
      // scheduling differs.
      Wave wave;
      std::optional<std::string> error =
          RunWave(literal, *pattern, result.bindings, source, &wave);
      if (error.has_value()) {
        result.error = std::move(*error);
        result.bindings.clear();
        return result;
      }
      for (std::size_t b = 0; b < result.bindings.size(); ++b) {
        const Substitution& binding = result.bindings[b];
        const FetchResult& fetched = wave.fetched[wave.slot_of[b]];
        if (literal.positive()) {
          for (const Tuple& tuple : fetched.tuples) {
            std::optional<Substitution> extended =
                UnifyWithTuple(literal, tuple, binding);
            if (extended.has_value()) next.push_back(std::move(*extended));
          }
        } else {
          // All variables are bound (ChoosePattern guarantees it): probe
          // for the instantiated tuple, keep the binding iff absent.
          Tuple instantiated = binding.Apply(literal.args());
          bool present = false;
          for (const Tuple& tuple : fetched.tuples) {
            if (tuple == instantiated) {
              present = true;
              break;
            }
          }
          if (!present) next.push_back(binding);
        }
      }
      if (literal.positive()) BindVariables(literal, &bound);
    } else if (literal.positive()) {
      for (const Substitution& binding : result.bindings) {
        FetchResult fetched = source->Fetch(literal.relation(), *pattern,
                                            FetchInputs(literal, *pattern,
                                                        binding));
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
        for (const Tuple& tuple : fetched.tuples) {
          std::optional<Substitution> extended =
              UnifyWithTuple(literal, tuple, binding);
          if (extended.has_value()) next.push_back(std::move(*extended));
        }
      }
      BindVariables(literal, &bound);
    } else {
      // All variables are bound (ChoosePattern guarantees it): probe for
      // the instantiated tuple and keep the binding iff it is absent.
      for (const Substitution& binding : result.bindings) {
        FetchResult fetched = source->Fetch(literal.relation(), *pattern,
                                            FetchInputs(literal, *pattern,
                                                        binding));
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
        Tuple instantiated = binding.Apply(literal.args());
        bool present = false;
        for (const Tuple& tuple : fetched.tuples) {
          if (tuple == instantiated) {
            present = true;
            break;
          }
        }
        if (!present) next.push_back(binding);
      }
    }
    result.bindings = std::move(next);
    if (options.max_bindings != 0 &&
        result.bindings.size() > options.max_bindings) {
      result.error = "execution exceeded max_bindings (" +
                     std::to_string(options.max_bindings) + ") at literal " +
                     literal.ToString();
      result.bindings.clear();
      return result;
    }
    if (result.bindings.empty()) break;  // negations cannot revive answers
  }
  result.ok = true;
  return result;
}

// Routes a body to the pipelined loop when it can actually pipeline
// (depth > 1, wave mode, and at least two literals to overlap), to the
// operator-DAG driver for the default encoded batch mode, to the
// pre-DAG encoded loop when the DAG is off (--legacy-executor — kept as
// the byte-compatibility oracle), and to the historical string path
// otherwise — all four produce identical answers in identical witness
// order.
BindingsResult ExecuteBodyRaw(const ConjunctiveQuery& q,
                              const Catalog& catalog, Source* source,
                              const ExecutionOptions& options, Clock* clock,
                              PipelineCounters* counters,
                              OperatorCounters* op_counters) {
  if (options.batch && options.runtime.pipeline_depth > 1 &&
      q.body().size() >= 2) {
    return ExecuteForBindingsPipelined(q, catalog, source, options, clock,
                                       counters);
  }
  if (options.batch && options.dictionary && options.dag) {
    UnionChainsResult chains = ExecuteChainsDag({&q}, catalog, source,
                                                options, clock, op_counters);
    BindingsResult result;
    result.ok = chains.ok;
    result.error = std::move(chains.error);
    if (chains.ok) result.bindings = std::move(chains.bindings.front());
    return result;
  }
  if (options.batch && options.dictionary) {
    return ExecuteForBindingsEncoded(q, catalog, source, options);
  }
  return ExecuteForBindingsRaw(q, catalog, source, options);
}

// Empty body: the head must already be ground (overestimate null rows).
// Shared by the sequential per-disjunct loop and the concurrent union
// path, which handles true-queries inline before racing the chains.
ExecutionResult ExecuteTrueQuery(const ConjunctiveQuery& q) {
  ExecutionResult result;
  for (const Term& t : q.head_terms()) {
    if (!t.IsGround()) {
      result.error = "empty-body rule with non-ground head is not a plan: " +
                     q.ToString();
      return result;
    }
  }
  result.ok = true;
  result.tuples.insert(q.head_terms());
  return result;
}

// Projects the body's witnesses through `q`'s head into `result`'s tuple
// set (set semantics). False — with the error set and the tuples cleared
// — when some witness leaves a head term non-ground.
bool ProjectHead(const ConjunctiveQuery& q,
                 const std::vector<Substitution>& bindings,
                 ExecutionResult* result) {
  for (const Substitution& binding : bindings) {
    Tuple head = binding.Apply(q.head_terms());
    bool ground = true;
    for (const Term& t : head) {
      if (!t.IsGround()) {
        ground = false;
        break;
      }
    }
    if (!ground) {
      result->ok = false;
      result->error = "head not fully bound by executable body: " +
                      q.ToString();
      result->tuples.clear();
      return false;
    }
    result->tuples.insert(std::move(head));
  }
  return true;
}

ExecutionResult ExecuteRaw(const ConjunctiveQuery& q, const Catalog& catalog,
                           Source* source, const ExecutionOptions& options,
                           Clock* clock, PipelineCounters* counters,
                           OperatorCounters* op_counters) {
  if (q.IsTrueQuery()) return ExecuteTrueQuery(q);

  ExecutionResult result;
  BindingsResult body = ExecuteBodyRaw(q, catalog, source, options, clock,
                                       counters, op_counters);
  if (!body.ok) {
    result.error = std::move(body.error);
    return result;
  }
  result.ok = true;
  ProjectHead(q, body.bindings, &result);
  return result;
}

}  // namespace

BindingsResult ExecuteForBindings(const ConjunctiveQuery& q,
                                  const Catalog& catalog, Source* source,
                                  const ExecutionOptions& options) {
  const RuntimeOptions runtime = EffectiveRuntime(options);
  PipelineCounters counters;
  OperatorCounters op_counters;
  if (!runtime.Enabled()) {
    // No stack, but a caller-supplied clock (runtime.clock) still drives
    // overlap accounting for concurrent waves.
    BindingsResult result = ExecuteBodyRaw(q, catalog, source, options,
                                           runtime.clock, &counters,
                                           &op_counters);
    FoldExecutorCounters(&result.runtime, counters, op_counters);
    return result;
  }
  SourceStack stack(source, runtime);
  BindingsResult result = ExecuteBodyRaw(q, catalog, stack.source(), options,
                                         stack.clock(), &counters,
                                         &op_counters);
  result.runtime = stack.stats();
  FoldExecutorCounters(&result.runtime, counters, op_counters);
  DrainStats(options, &stack);
  return result;
}

ExecutionResult Execute(const ConjunctiveQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  const RuntimeOptions runtime = EffectiveRuntime(options);
  PipelineCounters counters;
  OperatorCounters op_counters;
  if (!runtime.Enabled()) {
    ExecutionResult result = ExecuteRaw(q, catalog, source, options,
                                        runtime.clock, &counters,
                                        &op_counters);
    FoldExecutorCounters(&result.runtime, counters, op_counters);
    return result;
  }
  SourceStack stack(source, runtime);
  ExecutionResult result = ExecuteRaw(q, catalog, stack.source(), options,
                                      stack.clock(), &counters, &op_counters);
  result.runtime = stack.stats();
  FoldExecutorCounters(&result.runtime, counters, op_counters);
  DrainStats(options, &stack);
  return result;
}

ExecutionResult Execute(const UnionQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  // One stack for the whole union: the cache carries results across
  // disjuncts (they typically share relations) and the budget is a
  // per-query, not per-disjunct, limit.
  const RuntimeOptions runtime = EffectiveRuntime(options);
  std::optional<SourceStack> stack;
  Source* effective = source;
  Clock* clock = runtime.clock;
  if (runtime.Enabled()) {
    stack.emplace(source, runtime);
    effective = stack->source();
    clock = stack->clock();
  }
  PipelineCounters counters;
  OperatorCounters op_counters;
  ExecutionResult result;
  result.ok = true;

  const auto finish = [&](ExecutionResult* r) {
    if (stack.has_value()) {
      r->runtime = stack->stats();
      FoldExecutorCounters(&r->runtime, counters, op_counters);
      DrainStats(options, &*stack);
    } else {
      FoldExecutorCounters(&r->runtime, counters, op_counters);
    }
  };

  if (options.batch && options.dictionary && options.dag &&
      options.disjunct_concurrency > 1 && runtime.pipeline_depth <= 1) {
    // Concurrent disjuncts: true-queries resolve inline (in disjunct
    // order), then every remaining chain races through one DAG drive —
    // each round overlaps one wave per runnable chain. Heads project in
    // disjunct order afterwards, so the answer set (and every error
    // string) matches the sequential loop below.
    std::vector<const ConjunctiveQuery*> bodies;
    std::vector<std::size_t> body_index;  // disjunct index of bodies[i]
    const std::vector<ConjunctiveQuery>& disjuncts = q.disjuncts();
    for (std::size_t d = 0; d < disjuncts.size(); ++d) {
      if (disjuncts[d].IsTrueQuery()) {
        ExecutionResult part = ExecuteTrueQuery(disjuncts[d]);
        if (!part.ok) {
          finish(&part);
          return part;
        }
        result.tuples.insert(part.tuples.begin(), part.tuples.end());
      } else {
        bodies.push_back(&disjuncts[d]);
        body_index.push_back(d);
      }
    }
    if (!bodies.empty()) {
      UnionChainsResult chains = ExecuteChainsDag(
          bodies, catalog, effective, options, clock, &op_counters);
      if (!chains.ok) {
        ExecutionResult part;
        part.error = std::move(chains.error);
        finish(&part);
        return part;
      }
      for (std::size_t i = 0; i < bodies.size(); ++i) {
        if (!ProjectHead(disjuncts[body_index[i]], chains.bindings[i],
                         &result)) {
          finish(&result);
          return result;
        }
      }
    }
    finish(&result);
    return result;
  }

  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    ExecutionResult part = ExecuteRaw(disjunct, catalog, effective, options,
                                      clock, &counters, &op_counters);
    if (!part.ok) {
      finish(&part);
      return part;
    }
    result.tuples.insert(part.tuples.begin(), part.tuples.end());
  }
  finish(&result);
  return result;
}

}  // namespace ucqn
