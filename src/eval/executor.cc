#include "eval/executor.h"

#include <vector>

#include "ast/substitution.h"
#include "schema/adornment.h"

namespace ucqn {

namespace {

// Builds the Fetch argument vector for `literal` under binding `binding`:
// ground values where known, empty elsewhere.
std::vector<std::optional<Term>> FetchInputs(const Literal& literal,
                                             const Substitution& binding) {
  std::vector<std::optional<Term>> inputs;
  inputs.reserve(literal.args().size());
  for (const Term& arg : literal.args()) {
    Term value = binding.Apply(arg);
    if (value.IsGround()) {
      inputs.emplace_back(std::move(value));
    } else {
      inputs.emplace_back(std::nullopt);
    }
  }
  return inputs;
}

// Extends `binding` so that the literal's arguments equal `tuple`;
// returns nullopt on mismatch (covers repeated variables and arguments
// already ground).
std::optional<Substitution> UnifyWithTuple(const Literal& literal,
                                           const Tuple& tuple,
                                           const Substitution& binding) {
  Substitution extended = binding;
  const std::vector<Term>& args = literal.args();
  if (args.size() != tuple.size()) return std::nullopt;
  for (std::size_t j = 0; j < args.size(); ++j) {
    Term value = extended.Apply(args[j]);
    if (value.IsGround()) {
      if (value != tuple[j]) return std::nullopt;
    } else {
      if (!extended.Bind(value, tuple[j])) return std::nullopt;
    }
  }
  return extended;
}

}  // namespace

BindingsResult ExecuteForBindings(const ConjunctiveQuery& q,
                                  const Catalog& catalog, Source* source,
                                  const ExecutionOptions& options) {
  BindingsResult result;
  result.bindings.emplace_back();
  BoundVariables bound;
  for (const Literal& literal : q.body()) {
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound, options.pattern_preference);
    if (!pattern.has_value()) {
      result.error = "literal " + literal.ToString() +
                     " has no usable access pattern at its position";
      result.bindings.clear();
      return result;
    }
    std::vector<Substitution> next;
    if (literal.positive()) {
      for (const Substitution& binding : result.bindings) {
        std::vector<Tuple> fetched =
            source->Fetch(literal.relation(), *pattern,
                          FetchInputs(literal, binding));
        for (const Tuple& tuple : fetched) {
          std::optional<Substitution> extended =
              UnifyWithTuple(literal, tuple, binding);
          if (extended.has_value()) next.push_back(std::move(*extended));
        }
      }
      BindVariables(literal, &bound);
    } else {
      // All variables are bound (ChoosePattern guarantees it): probe for
      // the instantiated tuple and keep the binding iff it is absent.
      for (const Substitution& binding : result.bindings) {
        std::vector<Tuple> fetched =
            source->Fetch(literal.relation(), *pattern,
                          FetchInputs(literal, binding));
        Tuple instantiated = binding.Apply(literal.args());
        bool present = false;
        for (const Tuple& tuple : fetched) {
          if (tuple == instantiated) {
            present = true;
            break;
          }
        }
        if (!present) next.push_back(binding);
      }
    }
    result.bindings = std::move(next);
    if (options.max_bindings != 0 &&
        result.bindings.size() > options.max_bindings) {
      result.error = "execution exceeded max_bindings (" +
                     std::to_string(options.max_bindings) + ") at literal " +
                     literal.ToString();
      result.bindings.clear();
      return result;
    }
    if (result.bindings.empty()) break;  // negations cannot revive answers
  }
  result.ok = true;
  return result;
}

ExecutionResult Execute(const ConjunctiveQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  ExecutionResult result;

  // Empty body: the head must already be ground (overestimate null rows).
  if (q.IsTrueQuery()) {
    for (const Term& t : q.head_terms()) {
      if (!t.IsGround()) {
        result.error = "empty-body rule with non-ground head is not a plan: " +
                       q.ToString();
        return result;
      }
    }
    result.ok = true;
    result.tuples.insert(q.head_terms());
    return result;
  }

  BindingsResult body = ExecuteForBindings(q, catalog, source, options);
  if (!body.ok) {
    result.error = std::move(body.error);
    return result;
  }
  result.ok = true;
  for (const Substitution& binding : body.bindings) {
    Tuple head = binding.Apply(q.head_terms());
    bool ground = true;
    for (const Term& t : head) {
      if (!t.IsGround()) {
        ground = false;
        break;
      }
    }
    if (!ground) {
      result.ok = false;
      result.error = "head not fully bound by executable body: " +
                     q.ToString();
      result.tuples.clear();
      return result;
    }
    result.tuples.insert(std::move(head));
  }
  return result;
}

ExecutionResult Execute(const UnionQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  ExecutionResult result;
  result.ok = true;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    ExecutionResult part = Execute(disjunct, catalog, source, options);
    if (!part.ok) return part;
    result.tuples.insert(part.tuples.begin(), part.tuples.end());
  }
  return result;
}

}  // namespace ucqn
