#include "eval/executor.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/substitution.h"
#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "schema/adornment.h"

namespace ucqn {

namespace {

// Resolves the model every pattern decision flows through: the caller's,
// or a StaticCostModel built from the legacy preference knob. `storage`
// keeps the fallback alive for the duration of the execution.
const CostModel* ResolveCostModel(const ExecutionOptions& options,
                                  std::optional<StaticCostModel>* storage) {
  if (options.cost_model != nullptr) return options.cost_model;
  storage->emplace(options.pattern_preference);
  return &**storage;
}

// The runtime configuration actually used: a stats sink needs the meter,
// so requesting one forces metering on.
RuntimeOptions EffectiveRuntime(const ExecutionOptions& options) {
  RuntimeOptions runtime = options.runtime;
  if (options.stats_sink != nullptr) runtime.metering = true;
  return runtime;
}

// Feeds one finished stack's observed metrics into the sink, if any.
void DrainStats(const ExecutionOptions& options, SourceStack* stack) {
  if (options.stats_sink != nullptr && stack->meter() != nullptr) {
    options.stats_sink->Observe(*stack->meter());
  }
}

// Builds the Fetch argument vector for `literal` under binding `binding`:
// ground values in the pattern's input slots, empty elsewhere. Output
// slots stay empty even when the binding knows their value — a source
// only accepts its declared inputs (Definition 1; the executor filters
// returned tuples against the binding itself), and leaking bound values
// into output slots would split the wave dedup below into per-binding
// calls for patterns that are not actually keyed on those values.
std::vector<std::optional<Term>> FetchInputs(const Literal& literal,
                                             const AccessPattern& pattern,
                                             const Substitution& binding) {
  std::vector<std::optional<Term>> inputs;
  inputs.reserve(literal.args().size());
  for (std::size_t j = 0; j < literal.args().size(); ++j) {
    Term value = binding.Apply(literal.args()[j]);
    if (pattern.IsInputSlot(j) && value.IsGround()) {
      inputs.emplace_back(std::move(value));
    } else {
      inputs.emplace_back(std::nullopt);
    }
  }
  return inputs;
}

// Extends `binding` so that the literal's arguments equal `tuple`;
// returns nullopt on mismatch (covers repeated variables and arguments
// already ground).
std::optional<Substitution> UnifyWithTuple(const Literal& literal,
                                           const Tuple& tuple,
                                           const Substitution& binding) {
  Substitution extended = binding;
  const std::vector<Term>& args = literal.args();
  if (args.size() != tuple.size()) return std::nullopt;
  for (std::size_t j = 0; j < args.size(); ++j) {
    Term value = extended.Apply(args[j]);
    if (value.IsGround()) {
      if (value != tuple[j]) return std::nullopt;
    } else {
      if (!extended.Bind(value, tuple[j])) return std::nullopt;
    }
  }
  return extended;
}

// Dedup key for one wave request. Term::ToString is injective on ground
// terms (constants are quoted) and 0x1f never occurs in a rendering, so
// distinct input vectors get distinct keys.
std::string RequestKey(const std::vector<std::optional<Term>>& inputs) {
  std::string key;
  for (const std::optional<Term>& value : inputs) {
    if (value.has_value()) key += value->ToString();
    key += '\x1f';
  }
  return key;
}

// One literal's wave: the deduplicated source calls serving all live
// bindings, issued as a single FetchBatch.
struct Wave {
  std::vector<FetchResult> fetched;  // one per distinct request
  std::vector<std::size_t> slot_of;  // binding index -> slot in `fetched`
};

// Builds and issues the wave for `literal` across `bindings`: identical
// (same ground input values) requests from different bindings collapse to
// one call even without a cache in the stack. Returns the error of the
// first failed call in request (first-occurrence) order, or nullopt.
std::optional<std::string> RunWave(const Literal& literal,
                                   const AccessPattern& pattern,
                                   const std::vector<Substitution>& bindings,
                                   Source* source, Wave* wave) {
  std::vector<std::vector<std::optional<Term>>> requests;
  std::unordered_map<std::string, std::size_t> index;
  wave->slot_of.resize(bindings.size());
  for (std::size_t b = 0; b < bindings.size(); ++b) {
    std::vector<std::optional<Term>> inputs =
        FetchInputs(literal, pattern, bindings[b]);
    auto [it, fresh] = index.try_emplace(RequestKey(inputs), requests.size());
    if (fresh) requests.push_back(std::move(inputs));
    wave->slot_of[b] = it->second;
  }
  wave->fetched = source->FetchBatch(literal.relation(), pattern, requests);
  for (const FetchResult& fetched : wave->fetched) {
    if (!fetched.ok()) {
      return "source call for literal " + literal.ToString() +
             " failed: " + fetched.error;
    }
  }
  return std::nullopt;
}

// What the pipelined loop did, merged into RuntimeStats by the public
// entry points (the stack itself cannot see executor-side scheduling).
struct PipelineCounters {
  std::uint64_t rounds = 0;
  std::uint64_t overlaps = 0;
};

// Inter-literal pipelining (RuntimeOptions::pipeline_depth > 1): instead
// of draining literal i's full wave before literal i+1 issues anything,
// each stage keeps a FIFO frontier of bindings waiting to run its
// literal, and every round services up to `pipeline_depth` non-empty
// stages at once — a chunk of at most max(1, parallelism) bindings per
// stage, each chunk issued as one deduplicated FetchBatchAsync wave, all
// of the round's waves resolved inside one clock overlap bracket so a
// SimulatedClock charges them max-over-waves. Bindings that clear a
// stage are appended to the next stage's frontier in order; because
// every frontier is consumed and produced FIFO along a single chain, the
// final bindings come out in exactly the depth-1 derivation order, and
// the answer set is identical at every depth — pipelining only changes
// transport scheduling.
//
// Differences from the one-wave-at-a-time path, by design:
//   - wave dedup applies per chunk (a cache layer still dedups across
//     chunks);
//   - max_bindings bounds the *total* live bindings across all stages
//     after each round (the honest measure of intermediate-result size
//     when several stages hold bindings at once);
//   - a failed call aborts with the error of the shallowest failing
//     stage of the round that observed it, which may name a different
//     literal than sequential execution would have reached first.
BindingsResult ExecuteForBindingsPipelined(const ConjunctiveQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const ExecutionOptions& options,
                                           Clock* clock,
                                           PipelineCounters* counters) {
  BindingsResult result;
  const std::vector<Literal>& body = q.body();
  const std::size_t n = body.size();
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);

  // The variables bound before each stage depend only on literal order,
  // not on data, so they can be precomputed.
  std::vector<BoundVariables> bound_before(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    bound_before[i + 1] = bound_before[i];
    if (body[i].positive()) BindVariables(body[i], &bound_before[i + 1]);
  }

  std::vector<std::deque<Substitution>> frontier(n);
  frontier[0].emplace_back();
  std::deque<Substitution> done;
  // Chosen lazily the first time bindings reach the stage (so an unusable
  // pattern only fails executions whose bindings actually get there, as
  // in the sequential path), then pinned for all of that stage's chunks.
  std::vector<std::optional<AccessPattern>> chosen(n);

  const std::size_t depth = options.runtime.pipeline_depth;
  const std::size_t chunk =
      std::max<std::size_t>(options.runtime.parallelism, 1);

  while (true) {
    // Service the deepest non-empty stages first: draining the pipe
    // bounds the number of bindings parked mid-chain.
    std::vector<std::size_t> stages;
    for (std::size_t i = n; i-- > 0;) {
      if (!frontier[i].empty()) {
        stages.push_back(i);
        if (stages.size() == depth) break;
      }
    }
    if (stages.empty()) break;
    std::sort(stages.begin(), stages.end());

    for (std::size_t i : stages) {
      if (chosen[i].has_value()) continue;
      PlanContext context;
      context.live_bindings = static_cast<double>(
          std::max<std::size_t>(frontier[i].size(), 1));
      chosen[i] = ChoosePattern(catalog, body[i], bound_before[i], *model,
                                context);
      if (!chosen[i].has_value()) {
        result.error = "literal " + body[i].ToString() +
                       " has no usable access pattern at its position";
        result.bindings.clear();
        return result;
      }
    }

    // Issue one chunk per stage as an async wave (issue order: ascending
    // literal), then resolve them all inside one overlap bracket.
    struct Lane {
      std::size_t stage = 0;
      std::vector<Substitution> batch;
      std::vector<std::size_t> slot_of;  // batch index -> request slot
      FetchFuture future;
    };
    std::vector<Lane> lanes;
    lanes.reserve(stages.size());
    for (std::size_t i : stages) {
      Lane lane;
      lane.stage = i;
      const std::size_t take = std::min(chunk, frontier[i].size());
      lane.batch.reserve(take);
      for (std::size_t k = 0; k < take; ++k) {
        lane.batch.push_back(std::move(frontier[i].front()));
        frontier[i].pop_front();
      }
      std::vector<std::vector<std::optional<Term>>> requests;
      std::unordered_map<std::string, std::size_t> index;
      lane.slot_of.resize(lane.batch.size());
      for (std::size_t b = 0; b < lane.batch.size(); ++b) {
        std::vector<std::optional<Term>> inputs =
            FetchInputs(body[i], *chosen[i], lane.batch[b]);
        auto [it, fresh] =
            index.try_emplace(RequestKey(inputs), requests.size());
        if (fresh) requests.push_back(std::move(inputs));
        lane.slot_of[b] = it->second;
      }
      lane.future = source->FetchBatchAsync(body[i].relation(), *chosen[i],
                                            std::move(requests));
      lanes.push_back(std::move(lane));
    }

    ++counters->rounds;
    const bool overlapped = lanes.size() >= 2;
    if (overlapped) ++counters->overlaps;
    if (overlapped && clock != nullptr) clock->BeginOverlap();
    std::vector<std::vector<FetchResult>> resolved(lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      if (overlapped && clock != nullptr) clock->BeginLane();
      resolved[l] = lanes[l].future.Take();
      if (overlapped && clock != nullptr) clock->EndLane();
    }
    if (overlapped && clock != nullptr) clock->EndOverlap();

    // Merge in ascending literal order; the shallowest failing stage of
    // the round reports its first failed request.
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      const Literal& literal = body[lane.stage];
      for (const FetchResult& fetched : resolved[l]) {
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
      }
      std::deque<Substitution>& out =
          lane.stage + 1 == n ? done : frontier[lane.stage + 1];
      for (std::size_t b = 0; b < lane.batch.size(); ++b) {
        const Substitution& binding = lane.batch[b];
        const FetchResult& fetched = resolved[l][lane.slot_of[b]];
        if (literal.positive()) {
          for (const Tuple& tuple : fetched.tuples) {
            std::optional<Substitution> extended =
                UnifyWithTuple(literal, tuple, binding);
            if (extended.has_value()) out.push_back(std::move(*extended));
          }
        } else {
          // All variables are bound (ChoosePattern guarantees it): probe
          // for the instantiated tuple, keep the binding iff absent.
          Tuple instantiated = binding.Apply(literal.args());
          bool present = false;
          for (const Tuple& tuple : fetched.tuples) {
            if (tuple == instantiated) {
              present = true;
              break;
            }
          }
          if (!present) out.push_back(binding);
        }
      }
    }

    if (options.max_bindings != 0) {
      std::size_t live = done.size();
      for (const std::deque<Substitution>& f : frontier) live += f.size();
      if (live > options.max_bindings) {
        result.error = "execution exceeded max_bindings (" +
                       std::to_string(options.max_bindings) +
                       ") across pipeline stages";
        result.bindings.clear();
        return result;
      }
    }
  }

  result.ok = true;
  result.bindings.assign(std::make_move_iterator(done.begin()),
                         std::make_move_iterator(done.end()));
  return result;
}

// The core left-to-right loop, talking to `source` directly (any runtime
// stack has already been interposed by the public entry points).
BindingsResult ExecuteForBindingsRaw(const ConjunctiveQuery& q,
                                     const Catalog& catalog, Source* source,
                                     const ExecutionOptions& options) {
  BindingsResult result;
  result.bindings.emplace_back();
  BoundVariables bound;
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);
  for (const Literal& literal : q.body()) {
    PlanContext context;
    context.live_bindings = static_cast<double>(
        std::max<std::size_t>(result.bindings.size(), 1));
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound, *model, context);
    if (!pattern.has_value()) {
      result.error = "literal " + literal.ToString() +
                     " has no usable access pattern at its position";
      result.bindings.clear();
      return result;
    }
    std::vector<Substitution> next;
    if (options.batch) {
      // Wave mode (default): every live binding's call for this literal
      // flies as one batched, deduplicated FetchBatch, then the results
      // are merged per binding in the original order — the answer set is
      // identical to the per-binding loop below, only the transport
      // scheduling differs.
      Wave wave;
      std::optional<std::string> error =
          RunWave(literal, *pattern, result.bindings, source, &wave);
      if (error.has_value()) {
        result.error = std::move(*error);
        result.bindings.clear();
        return result;
      }
      for (std::size_t b = 0; b < result.bindings.size(); ++b) {
        const Substitution& binding = result.bindings[b];
        const FetchResult& fetched = wave.fetched[wave.slot_of[b]];
        if (literal.positive()) {
          for (const Tuple& tuple : fetched.tuples) {
            std::optional<Substitution> extended =
                UnifyWithTuple(literal, tuple, binding);
            if (extended.has_value()) next.push_back(std::move(*extended));
          }
        } else {
          // All variables are bound (ChoosePattern guarantees it): probe
          // for the instantiated tuple, keep the binding iff absent.
          Tuple instantiated = binding.Apply(literal.args());
          bool present = false;
          for (const Tuple& tuple : fetched.tuples) {
            if (tuple == instantiated) {
              present = true;
              break;
            }
          }
          if (!present) next.push_back(binding);
        }
      }
      if (literal.positive()) BindVariables(literal, &bound);
    } else if (literal.positive()) {
      for (const Substitution& binding : result.bindings) {
        FetchResult fetched = source->Fetch(literal.relation(), *pattern,
                                            FetchInputs(literal, *pattern,
                                                        binding));
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
        for (const Tuple& tuple : fetched.tuples) {
          std::optional<Substitution> extended =
              UnifyWithTuple(literal, tuple, binding);
          if (extended.has_value()) next.push_back(std::move(*extended));
        }
      }
      BindVariables(literal, &bound);
    } else {
      // All variables are bound (ChoosePattern guarantees it): probe for
      // the instantiated tuple and keep the binding iff it is absent.
      for (const Substitution& binding : result.bindings) {
        FetchResult fetched = source->Fetch(literal.relation(), *pattern,
                                            FetchInputs(literal, *pattern,
                                                        binding));
        if (!fetched.ok()) {
          result.error = "source call for literal " + literal.ToString() +
                         " failed: " + fetched.error;
          result.bindings.clear();
          return result;
        }
        Tuple instantiated = binding.Apply(literal.args());
        bool present = false;
        for (const Tuple& tuple : fetched.tuples) {
          if (tuple == instantiated) {
            present = true;
            break;
          }
        }
        if (!present) next.push_back(binding);
      }
    }
    result.bindings = std::move(next);
    if (options.max_bindings != 0 &&
        result.bindings.size() > options.max_bindings) {
      result.error = "execution exceeded max_bindings (" +
                     std::to_string(options.max_bindings) + ") at literal " +
                     literal.ToString();
      result.bindings.clear();
      return result;
    }
    if (result.bindings.empty()) break;  // negations cannot revive answers
  }
  result.ok = true;
  return result;
}

// Routes a body to the pipelined loop when it can actually pipeline
// (depth > 1, wave mode, and at least two literals to overlap); all other
// configurations take the historical path, bit-identical to depth 1.
BindingsResult ExecuteBodyRaw(const ConjunctiveQuery& q,
                              const Catalog& catalog, Source* source,
                              const ExecutionOptions& options, Clock* clock,
                              PipelineCounters* counters) {
  if (options.batch && options.runtime.pipeline_depth > 1 &&
      q.body().size() >= 2) {
    return ExecuteForBindingsPipelined(q, catalog, source, options, clock,
                                       counters);
  }
  return ExecuteForBindingsRaw(q, catalog, source, options);
}

ExecutionResult ExecuteRaw(const ConjunctiveQuery& q, const Catalog& catalog,
                           Source* source, const ExecutionOptions& options,
                           Clock* clock, PipelineCounters* counters) {
  ExecutionResult result;

  // Empty body: the head must already be ground (overestimate null rows).
  if (q.IsTrueQuery()) {
    for (const Term& t : q.head_terms()) {
      if (!t.IsGround()) {
        result.error = "empty-body rule with non-ground head is not a plan: " +
                       q.ToString();
        return result;
      }
    }
    result.ok = true;
    result.tuples.insert(q.head_terms());
    return result;
  }

  BindingsResult body =
      ExecuteBodyRaw(q, catalog, source, options, clock, counters);
  if (!body.ok) {
    result.error = std::move(body.error);
    return result;
  }
  result.ok = true;
  for (const Substitution& binding : body.bindings) {
    Tuple head = binding.Apply(q.head_terms());
    bool ground = true;
    for (const Term& t : head) {
      if (!t.IsGround()) {
        ground = false;
        break;
      }
    }
    if (!ground) {
      result.ok = false;
      result.error = "head not fully bound by executable body: " +
                     q.ToString();
      result.tuples.clear();
      return result;
    }
    result.tuples.insert(std::move(head));
  }
  return result;
}

}  // namespace

BindingsResult ExecuteForBindings(const ConjunctiveQuery& q,
                                  const Catalog& catalog, Source* source,
                                  const ExecutionOptions& options) {
  const RuntimeOptions runtime = EffectiveRuntime(options);
  PipelineCounters counters;
  if (!runtime.Enabled()) {
    return ExecuteBodyRaw(q, catalog, source, options, nullptr, &counters);
  }
  SourceStack stack(source, runtime);
  BindingsResult result = ExecuteBodyRaw(q, catalog, stack.source(), options,
                                         stack.clock(), &counters);
  result.runtime = stack.stats();
  result.runtime.pipeline_rounds = counters.rounds;
  result.runtime.pipeline_overlaps = counters.overlaps;
  DrainStats(options, &stack);
  return result;
}

ExecutionResult Execute(const ConjunctiveQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  const RuntimeOptions runtime = EffectiveRuntime(options);
  PipelineCounters counters;
  if (!runtime.Enabled()) {
    return ExecuteRaw(q, catalog, source, options, nullptr, &counters);
  }
  SourceStack stack(source, runtime);
  ExecutionResult result = ExecuteRaw(q, catalog, stack.source(), options,
                                      stack.clock(), &counters);
  result.runtime = stack.stats();
  result.runtime.pipeline_rounds = counters.rounds;
  result.runtime.pipeline_overlaps = counters.overlaps;
  DrainStats(options, &stack);
  return result;
}

ExecutionResult Execute(const UnionQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options) {
  // One stack for the whole union: the cache carries results across
  // disjuncts (they typically share relations) and the budget is a
  // per-query, not per-disjunct, limit.
  const RuntimeOptions runtime = EffectiveRuntime(options);
  std::optional<SourceStack> stack;
  Source* effective = source;
  Clock* clock = nullptr;
  if (runtime.Enabled()) {
    stack.emplace(source, runtime);
    effective = stack->source();
    clock = stack->clock();
  }
  PipelineCounters counters;
  ExecutionResult result;
  result.ok = true;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    ExecutionResult part =
        ExecuteRaw(disjunct, catalog, effective, options, clock, &counters);
    if (!part.ok) {
      if (stack.has_value()) {
        part.runtime = stack->stats();
        part.runtime.pipeline_rounds = counters.rounds;
        part.runtime.pipeline_overlaps = counters.overlaps;
        DrainStats(options, &*stack);
      }
      return part;
    }
    result.tuples.insert(part.tuples.begin(), part.tuples.end());
  }
  if (stack.has_value()) {
    result.runtime = stack->stats();
    result.runtime.pipeline_rounds = counters.rounds;
    result.runtime.pipeline_overlaps = counters.overlaps;
    DrainStats(options, &*stack);
  }
  return result;
}

}  // namespace ucqn
