#ifndef UCQN_EVAL_DAG_EXECUTOR_H_
#define UCQN_EVAL_DAG_EXECUTOR_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "ast/substitution.h"
#include "eval/executor.h"
#include "eval/op/operator.h"
#include "eval/source.h"
#include "runtime/clock.h"
#include "schema/catalog.h"

namespace ucqn {

// Result of driving a set of disjunct chains through the operator DAG:
// either every chain ran to completion (ok, one binding vector per
// disjunct in input order, each in witness order), or some operator
// failed and the whole execution aborted with its error — no partial
// answers, matching the sequential executor's contract.
struct UnionChainsResult {
  bool ok = false;
  std::string error;
  std::vector<std::vector<Substitution>> bindings;
};

// The push-based DAG driver: lowers each disjunct into a chain of fetch
// operators over ColumnarFrontier morsels (eval/op/) feeding a
// Materialize sink, then drives all chains in rounds. Per round, up to
// ExecutionOptions::disjunct_concurrency chains (ascending disjunct
// order) each stage their deepest pending morsel; a single-lane round
// issues its wave synchronously (the exact FetchBatch call sequence of
// the sequential executor — this is what keeps every runtime ledger
// byte-identical at concurrency 1), while a multi-lane round issues all
// waves as FetchBatchAsync and resolves them inside one clock overlap
// bracket, so a SimulatedClock charges racing disjuncts max-over-lanes.
// All staging, fetching, and merging happens on the calling thread —
// concurrency is overlap of waves in flight, not executor threads — so
// answers are independent of `disjunct_concurrency` and, at the default
// morsel_rows = 0, byte-identical to the legacy encoded loop.
//
// `disjuncts` must be non-empty; empty-body disjuncts yield their single
// empty binding (callers handle ground-head projection). `clock` may be
// null (no overlap accounting). `source` is the effective source — any
// runtime stack has already been interposed by the caller.
UnionChainsResult ExecuteChainsDag(
    const std::vector<const ConjunctiveQuery*>& disjuncts,
    const Catalog& catalog, Source* source, const ExecutionOptions& options,
    Clock* clock, OperatorCounters* counters);

}  // namespace ucqn

#endif  // UCQN_EVAL_DAG_EXECUTOR_H_
