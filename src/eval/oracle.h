#ifndef UCQN_EVAL_ORACLE_H_
#define UCQN_EVAL_ORACLE_H_

#include <set>

#include "ast/query.h"
#include "eval/database.h"

namespace ucqn {

// Reference evaluation of a safe CQ¬/UCQ¬ against an instance, ignoring
// access patterns entirely — the semantics ANSWER(Q, D) that containment
// and the PLAN*/ANSWER* guarantees are stated against. Implemented as a
// straightforward backtracking join over the positive body followed by
// negative-literal checks, deliberately independent from the
// pattern-respecting executor so the two can cross-validate each other in
// the property tests.
//
// Requirements: the query must be safe (every variable in a positive body
// literal); ground head terms (constants/null) are passed through.
std::set<Tuple> OracleEvaluate(const ConjunctiveQuery& q, const Database& db);
std::set<Tuple> OracleEvaluate(const UnionQuery& q, const Database& db);

}  // namespace ucqn

#endif  // UCQN_EVAL_ORACLE_H_
