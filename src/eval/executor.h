#ifndef UCQN_EVAL_EXECUTOR_H_
#define UCQN_EVAL_EXECUTOR_H_

#include <set>
#include <string>

#include "ast/query.h"
#include "eval/source.h"
#include "runtime/source_stack.h"
#include "schema/adornment.h"
#include "schema/catalog.h"

namespace ucqn {

class CostModel;
class StatsCatalog;

// Knobs for plan execution.
struct ExecutionOptions {
  // Which usable access pattern to call per literal. kMostInputs (default)
  // pushes every available binding to the source; kFewestInputs fetches
  // broadly and filters client-side. bench_ablation measures the
  // difference in calls/tuples. Ignored when `cost_model` is set.
  PatternPreference pattern_preference = PatternPreference::kMostInputs;
  // The cost model every pattern decision flows through (src/cost/). Not
  // owned; must outlive the execution. When null (the default) the
  // executor builds a StaticCostModel from `pattern_preference` — the
  // bit-compatible historical behavior. An AdaptiveCostModel fed by a
  // StatsCatalog snapshot instead prices each candidate pattern by
  // observed latency and expected tuples, and ANSWER* additionally
  // reorders plan literals through it (see eval/answer_star.h).
  const CostModel* cost_model = nullptr;
  // When set, every execution that runs a source stack feeds the meter's
  // per-relation metrics into this catalog afterwards (metering is forced
  // on). Not owned. This closes the adaptive loop: run, observe, plan the
  // next query with an AdaptiveCostModel over the same catalog.
  StatsCatalog* stats_sink = nullptr;
  // Hard cap on the number of live variable bindings after any literal
  // (the intermediate-result size of the left-to-right join). Exceeding
  // it fails the execution rather than exhausting memory on a hostile
  // plan/source combination. 0 = unlimited.
  std::size_t max_bindings = 0;
  // Collect each literal's source calls across all live bindings into one
  // batched wave (deduplicated, then issued via Source::FetchBatch so a
  // parallel dispatcher can overlap them). Answers are identical to the
  // per-binding reference loop — waves only change transport scheduling —
  // so this is on by default; turn it off to run the reference semantics.
  bool batch = true;
  // Run the batch path dictionary-encoded (default): constants intern
  // into the process-wide TermDictionary, the binding frontier is stored
  // columnar (eval/frontier.h), wave dedup hashes flat id signatures,
  // and negated literals probe an id-keyed hash set — strings are
  // decoded only at result materialization. Answers, witness order, and
  // runtime ledgers are byte-identical to the string path (the
  // regression corpus pins this); turn it off to run the string-path
  // oracle. Ignored when `batch` is off (the reference loop is always
  // string-based).
  bool dictionary = true;
  // Run the encoded batch path through the push-based operator DAG
  // (eval/op/, eval/dag_executor.h) — the default executor. Each
  // disjunct lowers to a chain of fetch operators over ColumnarFrontier
  // morsels, which is what `morsel_rows` and `disjunct_concurrency`
  // below schedule. Answers, witness order, and runtime ledgers are
  // byte-identical to the pre-DAG encoded loop at the defaults (the
  // regression corpus pins this); turn it off (--legacy-executor) to run
  // that loop as the oracle. Ignored when `batch` or `dictionary` is
  // off, or when runtime.pipeline_depth > 1 (inter-literal pipelining
  // has its own loop).
  bool dag = true;
  // Rows per morsel pushed through the DAG. 0 (default) keeps each
  // whole frontier as one morsel — the byte-compatible schedule. When
  // set, wide frontiers split into chunks of at most this many rows
  // (witness order preserved), so one literal's work feeds the parallel
  // dispatcher as several waves instead of one.
  std::size_t morsel_rows = 0;
  // How many disjunct chains of a union may stage waves in the same
  // round. 1 (default) drives disjuncts to completion in order — the
  // sequential union, byte-identical ledgers. Values >= 2 let disjuncts
  // race: each round issues one wave per runnable chain and resolves
  // them inside one clock overlap bracket, so a SimulatedClock charges
  // the round max-over-lanes. Answers are identical at every setting —
  // concurrency only changes transport scheduling.
  std::size_t disjunct_concurrency = 1;
  // Source-access runtime configuration (src/runtime/): call caching,
  // retry/backoff, call/deadline budgets, metrics. Disabled by default —
  // the executor then talks to `source` directly. When any layer is
  // enabled, Execute wraps `source` in a per-call SourceStack (shared
  // across the disjuncts of a union) and reports what it did through the
  // result's `runtime` field.
  RuntimeOptions runtime;
};

// Result of executing a plan against sources.
struct ExecutionResult {
  bool ok = false;
  // Set only when !ok: why the plan could not be executed (e.g. a literal
  // had no usable access pattern at its position, or a source call failed
  // after exhausting its retries or budget).
  std::string error;
  // The answer tuples (set semantics). Head terms may include null for
  // overestimate plans.
  std::set<Tuple> tuples;
  // What the source-access runtime did, when ExecutionOptions::runtime
  // enabled any of its layers (zeroes otherwise).
  RuntimeStats runtime;
};

// Executes an *executable* CQ¬ left-to-right (Definition 3's reading of a
// plan): positive literals are source calls extending the current variable
// bindings, negative literals are membership probes filtering them out.
// Access patterns are chosen greedily per literal (most input slots
// usable). Fails — without partial answers — if some literal cannot be
// called at its position, if an empty-body rule has a non-ground head, or
// if a source call ultimately fails (transient error past its retries, or
// an exhausted call/deadline budget).
//
// An empty-body rule with ground head terms yields exactly its head tuple;
// this is how overestimate disjuncts whose answerable part is empty
// contribute their "benefit of the doubt" null row.
ExecutionResult Execute(const ConjunctiveQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options = {});

// Executes every disjunct and unions the results. Fails if any disjunct
// fails. The `false` query yields the empty set. A configured runtime
// stack (cache, budget, ...) is shared across all disjuncts.
ExecutionResult Execute(const UnionQuery& q, const Catalog& catalog,
                        Source* source, const ExecutionOptions& options = {});

// Like Execute, but returns the satisfying variable bindings of the body
// instead of projected head tuples — the raw witnesses (one per
// derivation; distinct bindings may project to the same head tuple). Used
// by the Δ-explanation machinery (eval/explain.h).
struct BindingsResult {
  bool ok = false;
  std::string error;
  std::vector<Substitution> bindings;
  RuntimeStats runtime;
};
BindingsResult ExecuteForBindings(const ConjunctiveQuery& q,
                                  const Catalog& catalog, Source* source,
                                  const ExecutionOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_EVAL_EXECUTOR_H_
