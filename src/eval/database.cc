#include "eval/database.h"

#include "ast/parser.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

std::string TupleToString(const Tuple& tuple) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (const Term& t : tuple) parts.push_back(t.ToString());
  return "(" + StrJoin(parts, ", ") + ")";
}

std::string TupleSetToString(const std::set<Tuple>& tuples) {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const Tuple& t : tuples) lines.push_back(TupleToString(t));
  return StrJoin(lines, "\n");
}

void Database::Insert(const std::string& relation, Tuple tuple) {
  for (const Term& t : tuple) {
    UCQN_CHECK_MSG(t.IsGround(), "database tuples must be ground");
  }
  auto it = relations_.find(relation);
  if (it != relations_.end() && !it->second.empty()) {
    UCQN_CHECK_MSG(it->second.begin()->size() == tuple.size(),
                   "relation used with inconsistent arities");
  }
  relations_[relation].insert(std::move(tuple));
}

bool Database::Remove(const std::string& relation, const Tuple& tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second.erase(tuple) > 0;
}

const std::set<Tuple>* Database::Find(const std::string& relation) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

bool Database::Contains(const std::string& relation,
                        const Tuple& tuple) const {
  const std::set<Tuple>* rel = Find(relation);
  return rel != nullptr && rel->count(tuple) > 0;
}

std::size_t Database::TupleCount(const std::string& relation) const {
  const std::set<Tuple>* rel = Find(relation);
  return rel == nullptr ? 0 : rel->size();
}

std::size_t Database::TotalTuples() const {
  std::size_t total = 0;
  for (const auto& [name, tuples] : relations_) total += tuples.size();
  return total;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, tuples] : relations_) {
    if (!tuples.empty()) names.push_back(name);
  }
  return names;
}

std::set<Term> Database::ActiveDomain() const {
  std::set<Term> domain;
  for (const auto& [name, tuples] : relations_) {
    for (const Tuple& tuple : tuples) {
      for (const Term& t : tuple) domain.insert(t);
    }
  }
  return domain;
}

std::optional<Database> Database::ParseFacts(std::string_view text,
                                             std::string* error) {
  std::optional<std::vector<UnionQuery>> program = ParseProgram(text, error);
  if (!program.has_value()) return std::nullopt;
  Database db;
  for (const UnionQuery& group : *program) {
    for (const ConjunctiveQuery& fact : group.disjuncts()) {
      if (!fact.body().empty()) {
        if (error != nullptr) {
          *error = "facts must have empty bodies: " + fact.ToString();
        }
        return std::nullopt;
      }
      for (const Term& t : fact.head_terms()) {
        if (!t.IsGround()) {
          if (error != nullptr) {
            *error = "facts must be ground: " + fact.ToString();
          }
          return std::nullopt;
        }
      }
      db.Insert(fact.head_name(), fact.head_terms());
    }
  }
  return db;
}

Database Database::MustParseFacts(std::string_view text) {
  std::string error;
  std::optional<Database> db = ParseFacts(text, &error);
  UCQN_CHECK_MSG(db.has_value(), error.c_str());
  return std::move(*db);
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [name, tuples] : relations_) {
    for (const Tuple& tuple : tuples) {
      std::vector<std::string> parts;
      parts.reserve(tuple.size());
      for (const Term& t : tuple) parts.push_back(t.ToString());
      lines.push_back(name + "(" + StrJoin(parts, ", ") + ").");
    }
  }
  return StrJoin(lines, "\n");
}

}  // namespace ucqn
