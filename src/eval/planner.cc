#include "eval/planner.h"

#include <cmath>
#include <vector>

#include "schema/adornment.h"

namespace ucqn {

CardinalityEstimates CardinalityEstimates::FromDatabase(const Database& db) {
  CardinalityEstimates estimates;
  for (const std::string& name : db.RelationNames()) {
    estimates.Set(name, static_cast<double>(db.TupleCount(name)));
  }
  return estimates;
}

CardinalityEstimates CardinalityEstimates::FromCatalog(
    const Catalog& catalog) {
  CardinalityEstimates estimates;
  for (const RelationSchema* schema : catalog.Relations()) {
    if (schema->cardinality().has_value()) {
      estimates.Set(schema->name(), *schema->cardinality());
    }
  }
  return estimates;
}

void CardinalityEstimates::Set(const std::string& relation,
                               double cardinality) {
  cardinalities_[relation] = cardinality;
}

double CardinalityEstimates::Get(const std::string& relation,
                                 double fallback) const {
  auto it = cardinalities_.find(relation);
  return it == cardinalities_.end() ? fallback : it->second;
}

namespace {

// Estimated number of tuples a call for `literal` returns, given the
// currently bound variables: every ground-or-bound argument position cuts
// the relation by the configured selectivity.
double EstimateFanout(const Literal& literal, const BoundVariables& bound,
                      const CardinalityEstimates& estimates,
                      const PlannerOptions& options) {
  double size = estimates.Get(literal.relation());
  for (const Term& arg : literal.args()) {
    if (arg.IsGround() || (arg.IsVariable() && bound.count(arg.name()) > 0)) {
      size *= options.bound_arg_selectivity;
    }
  }
  return size;
}

}  // namespace

std::optional<ConjunctiveQuery> OptimizeLiteralOrder(
    const ConjunctiveQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options) {
  const std::vector<Literal>& body = q.body();
  std::vector<bool> taken(body.size(), false);
  std::vector<Literal> ordered;
  ordered.reserve(body.size());
  BoundVariables bound;

  for (std::size_t step = 0; step < body.size(); ++step) {
    int best = -1;
    bool best_is_filter = false;
    double best_fanout = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (taken[i]) continue;
      if (!CanExecuteNext(catalog, body[i], bound)) continue;
      const bool filter =
          body[i].negative() || AllVariablesBound(body[i], bound);
      const double fanout =
          filter ? 0.0 : EstimateFanout(body[i], bound, estimates, options);
      const bool better =
          best < 0 || (filter && !best_is_filter) ||
          (filter == best_is_filter && fanout < best_fanout);
      if (better) {
        best = static_cast<int>(i);
        best_is_filter = filter;
        best_fanout = fanout;
      }
    }
    if (best < 0) return std::nullopt;  // not orderable
    taken[static_cast<std::size_t>(best)] = true;
    const Literal& chosen = body[static_cast<std::size_t>(best)];
    ordered.push_back(chosen);
    if (chosen.positive()) BindVariables(chosen, &bound);
  }
  // Orderability also requires the head variables to be bound.
  for (const Term& v : q.AllVariables()) {
    if (bound.count(v.name()) == 0) return std::nullopt;
  }
  return q.WithBody(std::move(ordered));
}

std::optional<UnionQuery> OptimizeLiteralOrder(
    const UnionQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    std::optional<ConjunctiveQuery> ordered =
        OptimizeLiteralOrder(disjunct, catalog, estimates, options);
    if (!ordered.has_value()) return std::nullopt;
    out.AddDisjunct(std::move(*ordered));
  }
  return out;
}

}  // namespace ucqn
