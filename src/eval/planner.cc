#include "eval/planner.h"

#include <algorithm>
#include <vector>

#include "schema/adornment.h"

namespace ucqn {

std::optional<ConjunctiveQuery> OptimizeLiteralOrder(const ConjunctiveQuery& q,
                                                     const Catalog& catalog,
                                                     const CostModel& model) {
  const std::vector<Literal>& body = q.body();
  std::vector<bool> taken(body.size(), false);
  std::vector<Literal> ordered;
  ordered.reserve(body.size());
  BoundVariables bound;
  PlanContext context;  // running estimate of live bindings

  for (std::size_t step = 0; step < body.size(); ++step) {
    int best = -1;
    LiteralScore best_score;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (taken[i]) continue;
      if (!CanExecuteNext(catalog, body[i], bound)) continue;
      const LiteralScore score =
          model.ScoreLiteral(catalog, body[i], bound, context);
      if (best < 0 || BetterLiteralScore(score, best_score)) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    if (best < 0) return std::nullopt;  // not orderable
    taken[static_cast<std::size_t>(best)] = true;
    const Literal& chosen = body[static_cast<std::size_t>(best)];
    ordered.push_back(chosen);
    if (!best_score.filter) {
      // Expanding literals multiply the live bindings every later literal
      // is probed with; filters keep them (at most) level.
      context.live_bindings = std::max(
          1.0, context.live_bindings * model.ExpectedFanout(chosen, bound));
    }
    if (chosen.positive()) BindVariables(chosen, &bound);
  }
  // Orderability also requires the head variables to be bound.
  for (const Term& v : q.AllVariables()) {
    if (bound.count(v.name()) == 0) return std::nullopt;
  }
  return q.WithBody(std::move(ordered));
}

std::optional<UnionQuery> OptimizeLiteralOrder(const UnionQuery& q,
                                               const Catalog& catalog,
                                               const CostModel& model) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    std::optional<ConjunctiveQuery> ordered =
        OptimizeLiteralOrder(disjunct, catalog, model);
    if (!ordered.has_value()) return std::nullopt;
    out.AddDisjunct(std::move(*ordered));
  }
  return out;
}

namespace {

StaticCostModel ModelFromOptions(const CardinalityEstimates& estimates,
                                 const PlannerOptions& options) {
  StaticCostOptions cost_options;
  cost_options.bound_arg_selectivity = options.bound_arg_selectivity;
  cost_options.fallback_cardinality = options.fallback_cardinality;
  return StaticCostModel(PatternPreference::kMostInputs, estimates,
                         cost_options);
}

}  // namespace

std::optional<ConjunctiveQuery> OptimizeLiteralOrder(
    const ConjunctiveQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options) {
  return OptimizeLiteralOrder(q, catalog, ModelFromOptions(estimates, options));
}

std::optional<UnionQuery> OptimizeLiteralOrder(
    const UnionQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options) {
  return OptimizeLiteralOrder(q, catalog, ModelFromOptions(estimates, options));
}

}  // namespace ucqn
