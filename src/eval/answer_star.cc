#include "eval/answer_star.h"

#include <algorithm>

#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "eval/planner.h"
#include "util/logging.h"

namespace ucqn {

namespace {

// With a cost model in play, the literal order PLAN* emitted (body order)
// is itself a plan-quality decision: route it through the model. A
// disjunct the model cannot order (not orderable under the greedy rule)
// keeps its PLAN* order, which is executable by construction.
UnionQuery ReorderPlan(const UnionQuery& plan, const Catalog& catalog,
                       const CostModel& model) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : plan.disjuncts()) {
    std::optional<ConjunctiveQuery> ordered =
        OptimizeLiteralOrder(disjunct, catalog, model);
    out.AddDisjunct(ordered.has_value() ? std::move(*ordered) : disjunct);
  }
  return out;
}

}  // namespace

AnswerStarReport AnswerStar(const UnionQuery& q, const Catalog& catalog,
                            Source* source, const ExecutionOptions& options) {
  AnswerStarReport report;
  report.plans = PlanStar(q, catalog);

  UnionQuery under_plan = report.plans.under;
  UnionQuery over_plan = report.plans.over;
  if (options.cost_model != nullptr) {
    under_plan = ReorderPlan(under_plan, catalog, *options.cost_model);
    over_plan = ReorderPlan(over_plan, catalog, *options.cost_model);
  }

  // One stack for both plans: Qᵘ and Qᵒ overlap heavily (the underestimate
  // drops unanswerable parts of the overestimate's disjuncts), so sharing
  // the cache absorbs the duplicate calls. The stats sink, if any, is
  // drained once from this shared stack (the per-plan Execute calls run
  // with runtime and sink disabled).
  std::optional<SourceStack> stack;
  Source* effective = source;
  ExecutionOptions plan_options = options;
  RuntimeOptions runtime = options.runtime;
  if (options.stats_sink != nullptr) runtime.metering = true;
  if (runtime.Enabled()) {
    stack.emplace(source, runtime);
    effective = stack->source();
    plan_options.runtime = RuntimeOptions{};
    // Inter-literal pipelining is an executor-side decision, not a stack
    // layer, so it must survive the handoff to the per-plan Execute calls
    // — along with the shared clock, so overlapped waves are charged
    // against the same timeline the outer stack's layers sleep on.
    plan_options.runtime.pipeline_depth = runtime.pipeline_depth;
    plan_options.runtime.clock = stack->clock();
    plan_options.stats_sink = nullptr;
  }

  ExecutionResult under =
      Execute(under_plan, catalog, effective, plan_options);
  ExecutionResult over =
      under.ok ? Execute(over_plan, catalog, effective, plan_options)
               : ExecutionResult{};
  if (stack.has_value()) {
    report.runtime = stack->stats();
    if (options.stats_sink != nullptr && stack->meter() != nullptr) {
      options.stats_sink->Observe(*stack->meter());
    }
  }
  // The executor-side scheduling counters (pipelining rounds, operator-DAG
  // disjunct/morsel/anti-join work) live in the per-plan results, not the
  // shared stack; fold both plans' counts into the report — whether or not
  // a stack ran, since the executor did either way.
  report.runtime.pipeline_rounds =
      under.runtime.pipeline_rounds + over.runtime.pipeline_rounds;
  report.runtime.pipeline_overlaps =
      under.runtime.pipeline_overlaps + over.runtime.pipeline_overlaps;
  report.runtime.disjuncts_executed =
      under.runtime.disjuncts_executed + over.runtime.disjuncts_executed;
  report.runtime.morsels = under.runtime.morsels + over.runtime.morsels;
  report.runtime.antijoin_build_tuples = under.runtime.antijoin_build_tuples +
                                         over.runtime.antijoin_build_tuples;
  if (!under.ok || !over.ok) {
    report.error = !under.ok ? "underestimate plan failed: " + under.error
                             : "overestimate plan failed: " + over.error;
    return report;
  }
  report.ok = true;

  report.under = std::move(under.tuples);
  report.over = std::move(over.tuples);
  std::set_difference(report.over.begin(), report.over.end(),
                      report.under.begin(), report.under.end(),
                      std::inserter(report.delta, report.delta.begin()));
  report.complete = report.delta.empty();
  for (const Tuple& tuple : report.delta) {
    for (const Term& t : tuple) {
      if (t.IsNull()) {
        report.delta_has_nulls = true;
        break;
      }
    }
    if (report.delta_has_nulls) break;
  }
  if (!report.complete && !report.delta_has_nulls && !report.over.empty()) {
    report.completeness_lower_bound =
        static_cast<double>(report.under.size()) /
        static_cast<double>(report.over.size());
  }
  return report;
}

std::string AnswerStarReport::Summary() const {
  if (!ok) return "ANSWER* failed: " + error;
  std::string out = TupleSetToString(under);
  if (!out.empty()) out += "\n";
  if (complete) {
    out += "answer is complete";
    return out;
  }
  out += "answer is not known to be complete\n";
  out += "these tuples may be part of the answer:\n";
  out += TupleSetToString(delta);
  if (completeness_lower_bound.has_value()) {
    out += "\nanswer is at least " +
           std::to_string(under.size()) + "/" + std::to_string(over.size()) +
           " complete";
  }
  return out;
}

}  // namespace ucqn
