#include "eval/answer_star.h"

#include <algorithm>

#include "util/logging.h"

namespace ucqn {

AnswerStarReport AnswerStar(const UnionQuery& q, const Catalog& catalog,
                            Source* source, const ExecutionOptions& options) {
  AnswerStarReport report;
  report.plans = PlanStar(q, catalog);

  // One stack for both plans: Qᵘ and Qᵒ overlap heavily (the underestimate
  // drops unanswerable parts of the overestimate's disjuncts), so sharing
  // the cache absorbs the duplicate calls.
  std::optional<SourceStack> stack;
  Source* effective = source;
  ExecutionOptions plan_options = options;
  if (options.runtime.Enabled()) {
    stack.emplace(source, options.runtime);
    effective = stack->source();
    plan_options.runtime = RuntimeOptions{};
  }

  ExecutionResult under =
      Execute(report.plans.under, catalog, effective, plan_options);
  ExecutionResult over =
      under.ok ? Execute(report.plans.over, catalog, effective, plan_options)
               : ExecutionResult{};
  if (stack.has_value()) report.runtime = stack->stats();
  if (!under.ok || !over.ok) {
    report.error = !under.ok ? "underestimate plan failed: " + under.error
                             : "overestimate plan failed: " + over.error;
    return report;
  }
  report.ok = true;

  report.under = std::move(under.tuples);
  report.over = std::move(over.tuples);
  std::set_difference(report.over.begin(), report.over.end(),
                      report.under.begin(), report.under.end(),
                      std::inserter(report.delta, report.delta.begin()));
  report.complete = report.delta.empty();
  for (const Tuple& tuple : report.delta) {
    for (const Term& t : tuple) {
      if (t.IsNull()) {
        report.delta_has_nulls = true;
        break;
      }
    }
    if (report.delta_has_nulls) break;
  }
  if (!report.complete && !report.delta_has_nulls && !report.over.empty()) {
    report.completeness_lower_bound =
        static_cast<double>(report.under.size()) /
        static_cast<double>(report.over.size());
  }
  return report;
}

std::string AnswerStarReport::Summary() const {
  if (!ok) return "ANSWER* failed: " + error;
  std::string out = TupleSetToString(under);
  if (!out.empty()) out += "\n";
  if (complete) {
    out += "answer is complete";
    return out;
  }
  out += "answer is not known to be complete\n";
  out += "these tuples may be part of the answer:\n";
  out += TupleSetToString(delta);
  if (completeness_lower_bound.has_value()) {
    out += "\nanswer is at least " +
           std::to_string(under.size()) + "/" + std::to_string(over.size()) +
           " complete";
  }
  return out;
}

}  // namespace ucqn
