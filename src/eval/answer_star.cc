#include "eval/answer_star.h"

#include <algorithm>

#include "eval/executor.h"
#include "util/logging.h"

namespace ucqn {

AnswerStarReport AnswerStar(const UnionQuery& q, const Catalog& catalog,
                            Source* source) {
  AnswerStarReport report;
  report.plans = PlanStar(q, catalog);

  ExecutionResult under = Execute(report.plans.under, catalog, source);
  UCQN_CHECK_MSG(under.ok, under.error.c_str());
  ExecutionResult over = Execute(report.plans.over, catalog, source);
  UCQN_CHECK_MSG(over.ok, over.error.c_str());

  report.under = std::move(under.tuples);
  report.over = std::move(over.tuples);
  std::set_difference(report.over.begin(), report.over.end(),
                      report.under.begin(), report.under.end(),
                      std::inserter(report.delta, report.delta.begin()));
  report.complete = report.delta.empty();
  for (const Tuple& tuple : report.delta) {
    for (const Term& t : tuple) {
      if (t.IsNull()) {
        report.delta_has_nulls = true;
        break;
      }
    }
    if (report.delta_has_nulls) break;
  }
  if (!report.complete && !report.delta_has_nulls && !report.over.empty()) {
    report.completeness_lower_bound =
        static_cast<double>(report.under.size()) /
        static_cast<double>(report.over.size());
  }
  return report;
}

std::string AnswerStarReport::Summary() const {
  std::string out = TupleSetToString(under);
  if (!out.empty()) out += "\n";
  if (complete) {
    out += "answer is complete";
    return out;
  }
  out += "answer is not known to be complete\n";
  out += "these tuples may be part of the answer:\n";
  out += TupleSetToString(delta);
  if (completeness_lower_bound.has_value()) {
    out += "\nanswer is at least " +
           std::to_string(under.size()) + "/" + std::to_string(over.size()) +
           " complete";
  }
  return out;
}

}  // namespace ucqn
