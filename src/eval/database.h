#ifndef UCQN_EVAL_DATABASE_H_
#define UCQN_EVAL_DATABASE_H_

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ast/term.h"

namespace ucqn {

// A tuple of ground terms (constants, possibly null).
using Tuple = std::vector<Term>;

// Renders e.g. `(1, "Knuth", null)`.
std::string TupleToString(const Tuple& tuple);

// Renders a set of tuples, one per line, in sorted order.
std::string TupleSetToString(const std::set<Tuple>& tuples);

// An in-memory relational instance D. Relations are sets of ground tuples;
// iteration order is deterministic (lexicographic) so runs are
// reproducible.
class Database {
 public:
  Database() = default;

  // Inserts `tuple` into `relation`. CHECK-fails if the tuple contains
  // variables or if the relation was previously used with another arity.
  void Insert(const std::string& relation, Tuple tuple);

  // Removes `tuple` from `relation`; returns true when it was present.
  bool Remove(const std::string& relation, const Tuple& tuple);

  // The tuples of `relation`; nullptr if the relation has no tuples.
  const std::set<Tuple>* Find(const std::string& relation) const;

  bool Contains(const std::string& relation, const Tuple& tuple) const;

  // Number of tuples in `relation` (0 if absent).
  std::size_t TupleCount(const std::string& relation) const;

  // Total number of tuples across all relations.
  std::size_t TotalTuples() const;

  // Relation names with at least one tuple, sorted.
  std::vector<std::string> RelationNames() const;

  // All constants appearing in any tuple (the active domain).
  std::set<Term> ActiveDomain() const;

  // Parses facts, one ground atom per rule-with-empty-body:
  //   B(1, "Knuth", "TAOCP").
  //   L(1).
  // Returns nullopt and sets `*error` on malformed or non-ground input.
  static std::optional<Database> ParseFacts(std::string_view text,
                                            std::string* error);

  // CHECK-failing variant for fact blocks embedded in tests and examples.
  static Database MustParseFacts(std::string_view text);

  // Renders all facts, sorted, one per line.
  std::string ToString() const;

 private:
  std::map<std::string, std::set<Tuple>> relations_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_DATABASE_H_
