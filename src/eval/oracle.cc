#include "eval/oracle.h"

#include <vector>

#include "ast/substitution.h"
#include "util/logging.h"

namespace ucqn {

namespace {

class OracleSearch {
 public:
  OracleSearch(const ConjunctiveQuery& q, const Database& db,
               std::set<Tuple>* out)
      : q_(q), db_(db), out_(out) {
    for (const Literal& l : q.body()) {
      if (l.positive()) {
        positives_.push_back(&l);
      } else {
        negatives_.push_back(&l);
      }
    }
  }

  void Run() { Extend(0, Substitution()); }

 private:
  void Extend(std::size_t index, const Substitution& binding) {
    if (index == positives_.size()) {
      Emit(binding);
      return;
    }
    const Literal* literal = positives_[index];
    const std::set<Tuple>* tuples = db_.Find(literal->relation());
    if (tuples == nullptr) return;
    for (const Tuple& tuple : *tuples) {
      if (tuple.size() != literal->args().size()) continue;
      Substitution extended = binding;
      if (!MatchArgs(literal->args(), tuple, &extended)) continue;
      Extend(index + 1, extended);
    }
  }

  void Emit(const Substitution& binding) {
    for (const Literal* literal : negatives_) {
      Tuple instantiated = binding.Apply(literal->args());
      // An unsafe negative literal (some variable occurs only under
      // negation — the paper's own Example 3) is satisfiable by a fresh
      // domain value, hence always true under the unrestricted-domain
      // semantics the paper's equivalences assume.
      bool ground = true;
      for (const Term& t : instantiated) {
        if (!t.IsGround()) {
          ground = false;
          break;
        }
      }
      if (!ground) continue;
      if (db_.Contains(literal->relation(), instantiated)) return;
    }
    Tuple head = binding.Apply(q_.head_terms());
    for (const Term& t : head) {
      UCQN_CHECK_MSG(t.IsGround(), "oracle evaluation requires safe queries");
    }
    out_->insert(std::move(head));
  }

  const ConjunctiveQuery& q_;
  const Database& db_;
  std::set<Tuple>* out_;
  std::vector<const Literal*> positives_;
  std::vector<const Literal*> negatives_;
};

}  // namespace

std::set<Tuple> OracleEvaluate(const ConjunctiveQuery& q, const Database& db) {
  std::set<Tuple> out;
  OracleSearch(q, db, &out).Run();
  return out;
}

std::set<Tuple> OracleEvaluate(const UnionQuery& q, const Database& db) {
  std::set<Tuple> out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    std::set<Tuple> part = OracleEvaluate(disjunct, db);
    out.insert(part.begin(), part.end());
  }
  return out;
}

}  // namespace ucqn
