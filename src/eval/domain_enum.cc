#include "eval/domain_enum.h"

#include <algorithm>
#include <functional>
#include <string>

#include "ast/substitution.h"
#include "eval/executor.h"
#include "schema/adornment.h"
#include "util/logging.h"

namespace ucqn {

namespace {

std::string CallKey(const std::string& relation, const AccessPattern& pattern,
                    const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (const auto& t : inputs) {
    key += "|";
    if (t.has_value()) key += t->ToString();
  }
  return key;
}

}  // namespace

DomainEnumResult EnumerateDomain(const Catalog& catalog, Source* source,
                                 const std::vector<Term>& seeds,
                                 const DomainEnumOptions& options) {
  DomainEnumResult result;
  for (const Term& t : seeds) {
    if (t.IsGround()) result.domain.insert(t);
  }
  std::set<std::string> already_called;

  bool changed = true;
  while (changed && !result.budget_exhausted) {
    changed = false;
    for (const RelationSchema* schema : catalog.Relations()) {
      for (const AccessPattern& pattern : schema->patterns()) {
        const std::vector<std::size_t> input_slots = pattern.InputSlots();
        // Enumerate assignments of current-domain values to input slots.
        std::vector<std::optional<Term>> inputs(pattern.arity());
        // Snapshot the domain so the iteration space is stable while new
        // values are harvested into result.domain.
        const std::vector<Term> snapshot(result.domain.begin(),
                                         result.domain.end());
        std::function<void(std::size_t)> assign = [&](std::size_t k) {
          if (result.budget_exhausted) return;
          if (k == input_slots.size()) {
            std::string key = CallKey(schema->name(), pattern, inputs);
            if (!already_called.insert(key).second) return;
            if (result.source_calls >= options.max_calls) {
              result.budget_exhausted = true;
              return;
            }
            ++result.source_calls;
            FetchResult fetched = source->Fetch(schema->name(), pattern, inputs);
            if (!fetched.ok()) {
              // Best-effort: a failed call contributes no values. Dropping
              // it keeps the domain sound (a subset of the reachable one).
              ++result.source_errors;
              return;
            }
            for (const Tuple& tuple : fetched.tuples) {
              for (const Term& value : tuple) {
                if (result.domain.insert(value).second) changed = true;
              }
            }
            return;
          }
          for (const Term& value : snapshot) {
            inputs[input_slots[k]] = value;
            assign(k + 1);
          }
        };
        assign(0);
      }
    }
  }
  return result;
}

namespace {

// Evaluates one dismissed disjunct with domain assistance: the literals are
// processed answerable-part-first, then the unanswerable positives, then
// the unanswerable negatives; any input-slot variable that is still
// unbound ranges over the enumerated domain.
class DomainAssistedEvaluator {
 public:
  DomainAssistedEvaluator(const Catalog& catalog, Source* source,
                          const std::set<Term>& domain,
                          std::uint64_t max_calls, std::uint64_t* calls,
                          std::uint64_t* errors)
      : catalog_(catalog),
        source_(source),
        domain_(domain.begin(), domain.end()),
        max_calls_(max_calls),
        calls_(calls),
        errors_(errors) {}

  void Evaluate(const DisjunctPlan& plan, std::set<Tuple>* out) {
    if (!plan.answerable.has_value()) return;  // unsatisfiable disjunct
    std::vector<Literal> order = plan.answerable->body();
    for (const Literal& l : plan.unanswerable) {
      if (l.positive()) order.push_back(l);
    }
    for (const Literal& l : plan.unanswerable) {
      if (l.negative()) order.push_back(l);
    }
    std::vector<Substitution> bindings(1);
    for (const Literal& literal : order) {
      std::vector<Substitution> next;
      for (const Substitution& binding : bindings) {
        Step(literal, binding, &next);
      }
      bindings = std::move(next);
      if (bindings.empty()) return;
    }
    for (const Substitution& binding : bindings) {
      Tuple head = binding.Apply(plan.original.head_terms());
      bool ground = std::all_of(head.begin(), head.end(),
                                [](const Term& t) { return t.IsGround(); });
      if (ground) out->insert(std::move(head));
    }
  }

 private:
  // Processes one literal under one binding, appending extended bindings.
  void Step(const Literal& literal, const Substitution& binding,
            std::vector<Substitution>* next) {
    const RelationSchema* schema = catalog_.Find(literal.relation());
    if (schema == nullptr || schema->patterns().empty()) return;
    // Pick the pattern needing the fewest domain-enumerated variables.
    const AccessPattern* best = nullptr;
    std::size_t best_unbound = 0;
    for (const AccessPattern& p : schema->patterns()) {
      if (p.arity() != literal.args().size()) continue;
      std::size_t unbound = 0;
      for (std::size_t j = 0; j < p.arity(); ++j) {
        if (p.IsInputSlot(j) &&
            !binding.Apply(literal.args()[j]).IsGround()) {
          ++unbound;
        }
      }
      if (best == nullptr || unbound < best_unbound ||
          (unbound == best_unbound && p.InputCount() > best->InputCount())) {
        best = &p;
        best_unbound = unbound;
      }
    }
    if (best == nullptr) return;
    EnumerateAndFetch(literal, *best, binding, next);
  }

  void EnumerateAndFetch(const Literal& literal, const AccessPattern& pattern,
                         const Substitution& binding,
                         std::vector<Substitution>* next) {
    // Collect the distinct unbound variables sitting in input slots (for a
    // negative literal: all unbound variables — the probe needs a fully
    // ground tuple).
    std::vector<Term> to_enumerate;
    for (std::size_t j = 0; j < literal.args().size(); ++j) {
      const Term value = binding.Apply(literal.args()[j]);
      const bool needs_value = literal.negative() || pattern.IsInputSlot(j);
      if (needs_value && !value.IsGround() &&
          std::find(to_enumerate.begin(), to_enumerate.end(), value) ==
              to_enumerate.end()) {
        to_enumerate.push_back(value);
      }
    }
    std::function<void(std::size_t, const Substitution&)> assign =
        [&](std::size_t k, const Substitution& current) {
          if (*calls_ >= max_calls_) return;
          if (k == to_enumerate.size()) {
            Fetch(literal, pattern, current, next);
            return;
          }
          for (const Term& value : domain_) {
            Substitution extended = current;
            if (!extended.Bind(to_enumerate[k], value)) continue;
            assign(k + 1, extended);
          }
        };
    assign(0, binding);
  }

  void Fetch(const Literal& literal, const AccessPattern& pattern,
             const Substitution& binding, std::vector<Substitution>* next) {
    std::vector<std::optional<Term>> inputs;
    inputs.reserve(literal.args().size());
    for (const Term& arg : literal.args()) {
      Term value = binding.Apply(arg);
      if (value.IsGround()) {
        inputs.emplace_back(std::move(value));
      } else {
        inputs.emplace_back(std::nullopt);
      }
    }
    ++*calls_;
    FetchResult result = source_->Fetch(literal.relation(), pattern, inputs);
    if (!result.ok()) {
      // Drop the binding in both polarities: claiming a positive match or
      // a verified absence without source confirmation would break the
      // underestimate's soundness guarantee.
      ++*errors_;
      return;
    }
    const std::vector<Tuple>& fetched = result.tuples;
    if (literal.positive()) {
      for (const Tuple& tuple : fetched) {
        Substitution extended = binding;
        bool ok = true;
        for (std::size_t j = 0; j < tuple.size() && ok; ++j) {
          Term value = extended.Apply(literal.args()[j]);
          if (value.IsGround()) {
            ok = value == tuple[j];
          } else {
            ok = extended.Bind(value, tuple[j]);
          }
        }
        if (ok) next->push_back(std::move(extended));
      }
    } else {
      Tuple instantiated = binding.Apply(literal.args());
      for (const Tuple& tuple : fetched) {
        if (tuple == instantiated) return;  // present: binding filtered out
      }
      next->push_back(binding);
    }
  }

  const Catalog& catalog_;
  Source* source_;
  std::vector<Term> domain_;
  std::uint64_t max_calls_;
  std::uint64_t* calls_;
  std::uint64_t* errors_;
};

}  // namespace

ImprovedUnderestimate ImproveUnderestimate(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const DomainEnumOptions& options) {
  ImprovedUnderestimate result;
  PlanStarResult plans = PlanStar(q, catalog);
  ExecutionResult base = Execute(plans.under, catalog, source);
  UCQN_CHECK_MSG(base.ok, base.error.c_str());
  result.tuples = base.tuples;

  // Seed dom(x) with the query's own constants (null is not a source value).
  std::vector<Term> seeds;
  for (const ConjunctiveQuery& d : q.disjuncts()) {
    for (const Term& c : d.Constants()) {
      if (!c.IsNull()) seeds.push_back(c);
    }
  }
  result.domain = EnumerateDomain(catalog, source, seeds, options);

  DomainAssistedEvaluator evaluator(catalog, source, result.domain.domain,
                                    options.max_calls,
                                    &result.evaluation_calls,
                                    &result.evaluation_errors);
  for (const DisjunctPlan& plan : plans.disjuncts) {
    if (plan.unanswerable.empty()) continue;  // already exact in Q^u
    std::set<Tuple> extra;
    evaluator.Evaluate(plan, &extra);
    for (const Tuple& tuple : extra) {
      if (result.tuples.insert(tuple).second) result.gained.insert(tuple);
    }
  }
  return result;
}

}  // namespace ucqn
