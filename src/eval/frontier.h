#ifndef UCQN_EVAL_FRONTIER_H_
#define UCQN_EVAL_FRONTIER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/substitution.h"
#include "dict/term_dictionary.h"

namespace ucqn {

// The executor's live bindings in columnar form: one contiguous id
// column per bound variable, rows in derivation order. This is the
// id-encoded replacement for a vector<Substitution> on the hot path —
// extending the frontier through a literal's fetched tuples appends to
// flat uint32 columns instead of copying a hash map per binding, and
// filtering through a negated literal compacts the columns through a
// selection vector instead of rebuilding the vector.
//
// Row order is the paper's witness order (left-to-right derivation):
// every operation here preserves it, which is what lets the encoded
// executor decode back to exactly the Substitution sequence the string
// path produces.
class ColumnarFrontier {
 public:
  static constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);

  // Starts as the unit frontier: one row binding no variables (the
  // empty substitution every execution begins from).
  ColumnarFrontier() = default;

  std::size_t rows() const { return rows_; }
  std::size_t width() const { return vars_.size(); }
  const std::vector<std::string>& vars() const { return vars_; }

  // The column bound to `var`, or kNoColumn.
  std::size_t ColumnOf(const std::string& var) const {
    auto it = var_index_.find(var);
    return it == var_index_.end() ? kNoColumn : it->second;
  }

  const std::vector<std::uint32_t>& Column(std::size_t c) const {
    return columns_[c];
  }
  std::vector<std::uint32_t>& MutableColumn(std::size_t c) {
    return columns_[c];
  }

  // Appends an empty column for `var` (must be unbound) and returns its
  // index. The caller fills it to the row count it is building toward.
  std::size_t AddVar(const std::string& var);

  // Declares the row count after the caller has filled all columns to
  // exactly `rows` entries.
  void SetRows(std::size_t rows) { rows_ = rows; }

  // Keeps exactly the rows in `selection` (ascending row indices),
  // compacting every column in place. The anti-join filter of a
  // negated literal.
  void Retain(const std::vector<std::size_t>& selection);

  // Decodes row `row` back into the Substitution the string-path
  // executor would have built — the result-materialization boundary.
  Substitution DecodeRow(std::size_t row, const TermDictionary& dict) const;

  // All rows, in witness order.
  std::vector<Substitution> DecodeAll(const TermDictionary& dict) const;

 private:
  std::vector<std::string> vars_;
  std::unordered_map<std::string, std::size_t> var_index_;
  std::vector<std::vector<std::uint32_t>> columns_;
  std::size_t rows_ = 1;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_FRONTIER_H_
