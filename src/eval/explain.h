#ifndef UCQN_EVAL_EXPLAIN_H_
#define UCQN_EVAL_EXPLAIN_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "eval/answer_star.h"
#include "eval/source.h"
#include "schema/catalog.h"

namespace ucqn {

// Example 7's reading of a Δ tuple: the binding β produced by the
// answerable part gives rise to a *partially instantiated query* — e.g.
// for Δ ∋ (a, null),
//
//   Q1ᵒ(a, y) :- R(a, b), not S(b), B(a, y).
//
// "there may be one or more y values such that (a, y) is in the answer,
// but {y | B(a,y)} is unknowable under B's access pattern". This module
// reconstructs those readings for every Δ tuple.
struct DeltaExplanation {
  // The Δ tuple being explained (may contain null).
  Tuple tuple;
  // Which disjunct of the original query produced it.
  std::size_t disjunct_index = 0;
  // The original disjunct with the answerable part's binding β applied:
  // answerable literals fully ground, unanswerable literals mentioning
  // only β's values and the still-unknown variables.
  ConjunctiveQuery partially_instantiated;

  std::string ToString() const;
};

// Re-derives, for each tuple of `report.delta`, every witnessing binding
// of the answerable parts and renders the partially instantiated
// disjuncts. Re-executes the answerable parts against `source` (cheap —
// they are the same calls ANSWER* already made; wrap the source in a
// CachingSource to make them free).
std::vector<DeltaExplanation> ExplainDelta(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const AnswerStarReport& report);

}  // namespace ucqn

#endif  // UCQN_EVAL_EXPLAIN_H_
