#ifndef UCQN_EVAL_EXPLAIN_H_
#define UCQN_EVAL_EXPLAIN_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "cost/cost_model.h"
#include "eval/answer_star.h"
#include "eval/source.h"
#include "schema/catalog.h"

namespace ucqn {

// Example 7's reading of a Δ tuple: the binding β produced by the
// answerable part gives rise to a *partially instantiated query* — e.g.
// for Δ ∋ (a, null),
//
//   Q1ᵒ(a, y) :- R(a, b), not S(b), B(a, y).
//
// "there may be one or more y values such that (a, y) is in the answer,
// but {y | B(a,y)} is unknowable under B's access pattern". This module
// reconstructs those readings for every Δ tuple.
struct DeltaExplanation {
  // The Δ tuple being explained (may contain null).
  Tuple tuple;
  // Which disjunct of the original query produced it.
  std::size_t disjunct_index = 0;
  // The original disjunct with the answerable part's binding β applied:
  // answerable literals fully ground, unanswerable literals mentioning
  // only β's values and the still-unknown variables.
  ConjunctiveQuery partially_instantiated;

  std::string ToString() const;
};

// Re-derives, for each tuple of `report.delta`, every witnessing binding
// of the answerable parts and renders the partially instantiated
// disjuncts. Re-executes the answerable parts against `source` (cheap —
// they are the same calls ANSWER* already made; wrap the source in a
// CachingSource to make them free).
std::vector<DeltaExplanation> ExplainDelta(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const AnswerStarReport& report);

// One literal's pattern decision as the executor would make it: the
// chosen adornment, every rejected candidate, and the cost the model
// assigned each — the observable trace of the cost layer (src/cost/).
struct LiteralPlanStep {
  Literal literal;
  // All declared patterns of the literal's relation with usability, cost,
  // and the winner flagged. `decision.chosen` is empty when the literal
  // cannot be called at its position (the plan is not executable there).
  PatternDecision decision;
  // The scheduling score the model gave this literal at its position.
  LiteralScore score;
};

// The per-literal decision trace of executing `q`'s body left to right
// under `model` — what `ucqnc --explain` prints.
struct PlanExplanation {
  // False when some literal has no usable pattern at its position; the
  // steps up to and including the failing literal are still reported.
  bool ok = false;
  std::string model;  // the cost model's name()
  std::vector<LiteralPlanStep> steps;

  // e.g. "  Lookup(x, v): io cost=35200.0 (chosen), oo cost=250500.0".
  std::string ToString() const;
};

// Walks `q`'s body in order, recording every pattern decision `model`
// makes (with the same live-binding estimates the planner uses). Purely
// static — no source calls are issued.
PlanExplanation ExplainPlan(const ConjunctiveQuery& q, const Catalog& catalog,
                            const CostModel& model);

// Per-disjunct traces for a union plan, in disjunct order.
std::vector<PlanExplanation> ExplainPlan(const UnionQuery& q,
                                         const Catalog& catalog,
                                         const CostModel& model);

}  // namespace ucqn

#endif  // UCQN_EVAL_EXPLAIN_H_
