#ifndef UCQN_EVAL_PLANNER_H_
#define UCQN_EVAL_PLANNER_H_

#include <map>
#include <optional>
#include <string>

#include "ast/query.h"
#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

// Per-relation cardinality estimates driving the greedy plan reorderer.
// Real mediators get these from service metadata; tests and benches build
// them from an instance.
class CardinalityEstimates {
 public:
  CardinalityEstimates() = default;

  // Uses the actual tuple counts of `db`.
  static CardinalityEstimates FromDatabase(const Database& db);

  // Uses the `@N` cardinality annotations of `catalog` (relations without
  // one keep the per-call fallback).
  static CardinalityEstimates FromCatalog(const Catalog& catalog);

  void Set(const std::string& relation, double cardinality);
  // Returns the estimate, or `fallback` for unknown relations.
  double Get(const std::string& relation, double fallback = 1000.0) const;

 private:
  std::map<std::string, double> cardinalities_;
};

struct PlannerOptions {
  // The fraction of a relation's tuples expected to survive each bound
  // argument position (a crude uniform-selectivity model — enough to rank
  // candidate literals, which is all the greedy planner needs).
  double bound_arg_selectivity = 0.2;
};

// Greedy cost-aware literal ordering for an orderable CQ¬ (the executor
// runs plans left to right, so literal order is the entire join order):
// at every step, among the literals executable next, prefer
//   1. negative literals and fully-bound positives (pure filters,
//      fanout <= 1), then
//   2. the positive literal with the smallest estimated result size
//      (cardinality * selectivity^bound_args).
// Algorithm ANSWERABLE instead picks literals in body order — sound, but
// it can put a huge scan in front of a selective probe; bench_planner
// quantifies the difference in source calls and tuples moved.
//
// Returns nullopt when `q` is not orderable (no executable ordering
// exists) — callers fall back to PLAN*'s approximations. Unsatisfiable
// queries are ordered like any other (they execute to the empty answer);
// dropping them outright is PLAN*'s job.
std::optional<ConjunctiveQuery> OptimizeLiteralOrder(
    const ConjunctiveQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options = {});

// Applies OptimizeLiteralOrder to every disjunct; nullopt if any disjunct
// is not orderable.
std::optional<UnionQuery> OptimizeLiteralOrder(
    const UnionQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_EVAL_PLANNER_H_
