#ifndef UCQN_EVAL_PLANNER_H_
#define UCQN_EVAL_PLANNER_H_

#include <optional>
#include <string>

#include "ast/query.h"
#include "cost/cost_model.h"
#include "cost/estimates.h"
#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

struct PlannerOptions {
  // The fraction of a relation's tuples expected to survive each bound
  // argument position (a crude uniform-selectivity model — enough to rank
  // candidate literals, which is all the greedy planner needs).
  double bound_arg_selectivity = 0.2;
  // The cardinality assumed for a relation the estimates do not cover.
  // This is the documented fallback everywhere an unknown relation is
  // priced: EstimateFanout treats it exactly like a relation whose
  // estimate is this value (see cost/estimates.h).
  double fallback_cardinality = kDefaultFallbackCardinality;
};

// Greedy cost-aware literal ordering for an orderable CQ¬ (the executor
// runs plans left to right, so literal order is the entire join order):
// at every step, among the literals executable next, the cost model's
// ScoreLiteral picks the winner. Under the default StaticCostModel that
// means
//   1. negative literals and fully-bound positives (pure filters,
//      fanout <= 1), then
//   2. the positive literal with the smallest estimated result size
//      (cardinality * selectivity^bound_args);
// an AdaptiveCostModel additionally prices each candidate's observed p50
// call latency, so a slow service is scheduled as late as its fanout
// allows. Algorithm ANSWERABLE instead picks literals in body order —
// sound, but it can put a huge scan in front of a selective probe;
// bench_planner quantifies the difference in source calls and tuples
// moved.
//
// Returns nullopt when `q` is not orderable (no executable ordering
// exists) — callers fall back to PLAN*'s approximations. Unsatisfiable
// queries are ordered like any other (they execute to the empty answer);
// dropping them outright is PLAN*'s job.
std::optional<ConjunctiveQuery> OptimizeLiteralOrder(
    const ConjunctiveQuery& q, const Catalog& catalog, const CostModel& model);

// Applies OptimizeLiteralOrder to every disjunct; nullopt if any disjunct
// is not orderable.
std::optional<UnionQuery> OptimizeLiteralOrder(const UnionQuery& q,
                                               const Catalog& catalog,
                                               const CostModel& model);

// Legacy entry points: build a StaticCostModel from `estimates` and
// `options` and delegate — bit-compatible with the pre-cost-layer greedy
// planner.
std::optional<ConjunctiveQuery> OptimizeLiteralOrder(
    const ConjunctiveQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options = {});
std::optional<UnionQuery> OptimizeLiteralOrder(
    const UnionQuery& q, const Catalog& catalog,
    const CardinalityEstimates& estimates, const PlannerOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_EVAL_PLANNER_H_
