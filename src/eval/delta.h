#ifndef UCQN_EVAL_DELTA_H_
#define UCQN_EVAL_DELTA_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/query.h"
#include "ast/substitution.h"
#include "eval/database.h"
#include "eval/source.h"
#include "schema/catalog.h"

namespace ucqn {

// ---------------------------------------------------------------------------
// Delta feeds: per-relation insert/delete tuple sets, propagated through the
// materialized per-disjunct chains of a standing query so answers stay
// current without re-running unaffected literals (ROADMAP "incremental
// evaluation under source updates"; Kara/Nikolic/Olteanu/Zhang's
// delta-propagation discipline specialised to the left-to-right executable
// plans PLAN* emits).
// ---------------------------------------------------------------------------

// One relation's update batch as the client states it. Deletes apply before
// inserts, so R_new = (R_old \ deletes) ∪ inserts: a tuple named in both
// sets ends up present (delete-then-reinsert within one batch is a no-op).
struct RelationDelta {
  std::string relation;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

// The same update normalized against the pre-update instance: `inserted`
// holds only tuples that actually appeared (I \ R_old), `deleted` only
// tuples that actually vanished ((R_old ∩ D) \ I). Maintenance and scoped
// cache invalidation both work off the effective sets, so a delta that
// re-states existing tuples touches nothing.
struct AppliedDelta {
  std::string relation;
  std::set<Tuple> inserted;
  std::set<Tuple> deleted;

  bool empty() const { return inserted.empty() && deleted.empty(); }
  // inserted ∪ deleted — the tuples a cache entry must be probed against.
  std::vector<Tuple> ChangedTuples() const;
};

// Applies `delta` to `db` (deletes first, then inserts) and returns the
// effective delta. Returns nullopt and sets `*error` (when non-null) on
// non-ground tuples or an arity mismatch with existing rows of the
// relation; `db` is left unchanged on error.
std::optional<AppliedDelta> ApplyDelta(Database* db, const RelationDelta& delta,
                                       std::string* error = nullptr);

// One stage of a materialized chain: the literal and the access pattern it
// was compiled with. Patterns never change the answer set (only the call
// cost), so the Build-time choice is recorded once and reused for every
// maintenance fetch.
struct MaintainedStage {
  Literal literal;
  AccessPattern pattern;
};

// One executable plan disjunct with every intermediate binding frontier
// retained — the chain-granular build-side state of the operator DAG
// (AccessScan → HashJoin → HashAntiJoin → Materialize), kept as per-stage
// substitution frontiers. frontiers[k] holds the rows surviving stages
// [0, k): frontiers[0] is the single empty binding, frontiers[n] the full
// witness set. Rows are duplicate-free derivations — each row bijectively
// determines the tuple it used at every earlier positive stage — so set
// maintenance needs no multiplicity counters: deleting a base tuple deletes
// exactly the rows whose recorded derivation used it.
struct MaintainedChain {
  ConjunctiveQuery plan;
  std::vector<MaintainedStage> stages;
  std::vector<std::vector<Substitution>> frontiers;
};

// Compiles `plan` (an executable PLAN* disjunct) into a chain and
// materializes every frontier against `source`. Returns nullopt and sets
// `*error` when a literal has no usable pattern at its position or a
// source call fails.
std::optional<MaintainedChain> BuildMaintainedChain(
    const ConjunctiveQuery& plan, const Catalog& catalog, Source* source,
    std::string* error);

// The maintenance engine: applies one normalized multi-relation update
// batch to a materialized chain. Per affected chain it runs
//
//   1. a delete pass — drop every row whose derivation used a deleted tuple
//      at a positive stage, or whose anti-join probe now finds an inserted
//      tuple (anti-join inputs flip sign: an insert *deletes* downstream
//      rows);
//   2. an insert pass over the affected positions in ascending order —
//      delta-join the surviving base rows of frontiers[k] against the
//      inserted tuples (positive stage), or revive the base rows whose
//      probe tuple was deleted (negated stage), then propagate each fresh
//      row forward through the remaining stages with ordinary fetches
//      against the post-update database.
//
// Rows appended by step 2 are excluded from later positions' delta-joins
// (their forward propagation already saw the fully-updated relations), so
// each new derivation is produced exactly once even under self-joins and
// multi-relation batches. The database behind `source` must already hold
// the post-update state for *every* relation in the batch before the first
// Maintain call.
class DeltaApplier {
 public:
  // Does not own `deltas`; it must outlive the applier.
  explicit DeltaApplier(const std::vector<AppliedDelta>& deltas);

  // True when no effective delta touches any stage relation of `chain`.
  bool Unaffected(const MaintainedChain& chain) const;

  // Incrementally re-establishes every frontier of `chain`. On a source
  // failure returns false, sets `*error`, and leaves the chain in an
  // unspecified state — rebuild it from scratch.
  bool Maintain(MaintainedChain* chain, Source* source,
                std::string* error) const;

 private:
  std::map<std::string, const AppliedDelta*> by_relation_;
};

// The maintained ANSWER* report of a standing query: certain answers,
// possible answers, and the completeness verdict, shaped exactly like
// AnswerStarReport so re-emitted answers are byte-identical to a fresh run.
struct StandingAnswers {
  std::set<Tuple> under;
  std::set<Tuple> over;
  std::set<Tuple> delta;  // over \ under
  bool complete = false;
  bool delta_has_nulls = false;
  std::optional<double> completeness_lower_bound;
};

// A registered standing query: the PLAN* under- and over-plans compiled
// into materialized chains whose frontiers are kept current under delta
// feeds. Build once (a full evaluation), then ApplyDeltas after each
// update batch; Answers() projects the retained frontiers without touching
// any source.
class StandingQuery {
 public:
  // Compiles `q` with PLAN* and materializes every chain against `source`.
  // Returns nullptr and sets `*error` on an unanswerable disjunct position
  // or a source failure.
  static std::unique_ptr<StandingQuery> Build(const UnionQuery& q,
                                              const Catalog& catalog,
                                              Source* source,
                                              std::string* error);

  const UnionQuery& query() const { return query_; }
  // Relations any maintained stage reads — the standing query's read set.
  const std::set<std::string>& relations() const { return relations_; }

  // Maintains every chain for one update batch. The database behind
  // `source` must already hold the post-update state for all relations in
  // `deltas` (apply the whole batch with ApplyDelta first, then call this
  // once — not once per relation with interleaved database updates).
  // Returns false and sets `*error` on a source failure; the query is then
  // in an unspecified state and must be rebuilt (see Build).
  bool ApplyDeltas(const std::vector<AppliedDelta>& deltas, Source* source,
                   std::string* error);

  // Projects the maintained frontiers into the ANSWER*-shaped report.
  StandingAnswers Answers() const;

 private:
  StandingQuery() = default;

  UnionQuery query_;
  std::vector<MaintainedChain> under_chains_;
  std::vector<MaintainedChain> over_chains_;
  // Ground answers contributed by true-query (empty-body) disjuncts; fixed
  // at build time, immune to deltas.
  std::set<Tuple> under_fixed_;
  std::set<Tuple> over_fixed_;
  std::set<std::string> relations_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_DELTA_H_
