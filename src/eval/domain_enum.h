#ifndef UCQN_EVAL_DOMAIN_ENUM_H_
#define UCQN_EVAL_DOMAIN_ENUM_H_

#include <cstdint>
#include <set>
#include <vector>

#include "ast/query.h"
#include "eval/source.h"
#include "feasibility/plan_star.h"
#include "schema/catalog.h"

namespace ucqn {

struct DomainEnumOptions {
  // Hard cap on source calls spent enumerating the domain; domain
  // enumeration is "possibly costly" (Section 4.2), so callers bound it.
  std::uint64_t max_calls = 100000;
};

// The dom(x) view of Example 8, computed dynamically: the set of constants
// obtainable from the sources, starting from `seeds` (e.g. constants in
// the query) and closing under source calls — any declared pattern whose
// input slots can be filled from the current domain is called and all
// returned values are harvested (Duschka–Levy recursive domain
// enumeration [DL97]).
struct DomainEnumResult {
  std::set<Term> domain;
  std::uint64_t source_calls = 0;
  // True if max_calls stopped the fixpoint early (domain may be partial —
  // still sound for underestimates).
  bool budget_exhausted = false;
  // Source calls that failed (flaky sources). Their values are simply not
  // harvested — the domain stays sound, possibly smaller.
  std::uint64_t source_errors = 0;
};

DomainEnumResult EnumerateDomain(const Catalog& catalog, Source* source,
                                 const std::vector<Term>& seeds,
                                 const DomainEnumOptions& options = {});

// The improved underestimate of Section 4.2: disjuncts that PLAN*
// dismissed (non-empty unanswerable part) are re-evaluated with dom(x)
// atoms supplying bindings for otherwise-unbindable variables, e.g.
//
//   Q₁ᵘ(x,y) :- R(x,z), not S(z), dom(y), B(x,y)
//
// Every tuple produced is a genuine answer (the witnesses were checked
// against the sources), so the result extends ANSWER*'s underestimate
// while remaining sound.
struct ImprovedUnderestimate {
  // The union of the plain underestimate and the domain-assisted answers.
  std::set<Tuple> tuples;
  // How many of those came only from domain enumeration.
  std::set<Tuple> gained;
  DomainEnumResult domain;
  // Source calls spent evaluating the domain-assisted disjuncts (on top of
  // domain.source_calls).
  std::uint64_t evaluation_calls = 0;
  // Evaluation calls that failed. The affected bindings are dropped —
  // conservative in both polarities, so `tuples` remains an underestimate.
  std::uint64_t evaluation_errors = 0;
};

ImprovedUnderestimate ImproveUnderestimate(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const DomainEnumOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_EVAL_DOMAIN_ENUM_H_
