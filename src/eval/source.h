#ifndef UCQN_EVAL_SOURCE_H_
#define UCQN_EVAL_SOURCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

// Accounting for calls against a limited-access source — the observable
// "cost" of a plan when sources are remote web services.
struct SourceStats {
  std::uint64_t calls = 0;
  std::uint64_t tuples_returned = 0;

  void Reset() { *this = SourceStats{}; }
};

// The runtime face of a relation with access patterns: one Fetch per
// web-service operation (Section 1). Implementations must enforce the
// pattern — a call that fails to supply a value for every input slot is a
// contract violation.
class Source {
 public:
  virtual ~Source() = default;

  // Calls `relation` through `pattern`. `inputs` has one entry per slot;
  // entries at input slots must hold ground terms, entries at output slots
  // are ignored. Returns every tuple of the relation agreeing with the
  // supplied input values. Note the source does NOT filter on output
  // slots — per the paper's footnote 4, output-side selections are the
  // caller's job.
  virtual std::vector<Tuple> Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) = 0;
};

// A `Source` serving an in-memory Database, enforcing the catalog's
// declared patterns and recording per-relation statistics. This is the
// simulated stand-in for the paper's remote web services: identical
// interface contract (values required at input slots, no output-side
// filtering), with call accounting in place of network cost.
class DatabaseSource : public Source {
 public:
  // Does not take ownership; `db` and `catalog` must outlive the source.
  DatabaseSource(const Database* db, const Catalog* catalog)
      : db_(db), catalog_(catalog) {}

  std::vector<Tuple> Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  // Aggregate statistics across all relations.
  const SourceStats& stats() const { return stats_; }
  // Per-relation statistics (empty entry if never called).
  const std::map<std::string, SourceStats>& per_relation_stats() const {
    return per_relation_stats_;
  }
  void ResetStats();

 private:
  const Database* db_;
  const Catalog* catalog_;
  SourceStats stats_;
  std::map<std::string, SourceStats> per_relation_stats_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_SOURCE_H_
