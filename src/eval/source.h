#ifndef UCQN_EVAL_SOURCE_H_
#define UCQN_EVAL_SOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

// Accounting for calls against a limited-access source — the observable
// "cost" of a plan when sources are remote web services.
struct SourceStats {
  std::uint64_t calls = 0;
  std::uint64_t tuples_returned = 0;

  void Reset() { *this = SourceStats{}; }
};

// Outcome of a source call. In-memory sources always succeed; sources that
// model (or are) remote services can fail transiently, and the runtime
// layer (src/runtime/) retries, budgets, and reports those failures
// instead of aborting the process.
enum class FetchStatus {
  kOk,
  // The call failed in a way that may succeed if retried (network blip,
  // throttling, service restart).
  kTransientError,
  // A per-query call or deadline budget refused the call; retrying within
  // the same query cannot succeed.
  kBudgetExhausted,
};

// Status-or-tuples result of Source::Fetch. `tuples` is meaningful only
// when ok(); `error` is meaningful only when !ok().
struct FetchResult {
  FetchStatus status = FetchStatus::kOk;
  std::string error;
  std::vector<Tuple> tuples;

  bool ok() const { return status == FetchStatus::kOk; }

  static FetchResult Ok(std::vector<Tuple> tuples) {
    FetchResult r;
    r.tuples = std::move(tuples);
    return r;
  }
  static FetchResult TransientError(std::string error) {
    FetchResult r;
    r.status = FetchStatus::kTransientError;
    r.error = std::move(error);
    return r;
  }
  static FetchResult BudgetExhausted(std::string error) {
    FetchResult r;
    r.status = FetchStatus::kBudgetExhausted;
    r.error = std::move(error);
    return r;
  }
};

// Completion token for one batched wave in flight: the future-shaped half
// of Source::FetchBatchAsync. Single-shot — Take() resolves the wave,
// returns its results (request order, like FetchBatch), and consumes the
// future; calling Take() twice or on a default-constructed future is a
// programming error.
//
// Two states cover today's transports:
//   Ready    — the results already exist (a fully-cached wave, a test
//              double); Take() just hands them over.
//   Deferred — the work is captured as a closure; Take() runs it. The
//              default Source wrapper defers the synchronous FetchBatch,
//              so resolution happens at Take() time on the caller's
//              thread. A truly asynchronous transport would issue the
//              wave at creation and have Take() block on completion; the
//              contract (issue order preserved, results in request order,
//              one resolution per future) is the same either way.
class FetchFuture {
 public:
  FetchFuture() = default;

  static FetchFuture Ready(std::vector<FetchResult> results) {
    FetchFuture f;
    f.ready_ = true;
    f.results_ = std::move(results);
    return f;
  }
  static FetchFuture Deferred(
      std::function<std::vector<FetchResult>()> resolve) {
    FetchFuture f;
    f.resolve_ = std::move(resolve);
    return f;
  }

  // False for a default-constructed or already-taken future.
  bool valid() const { return ready_ || resolve_ != nullptr; }

  // Resolves the wave: result i answers the request i the future was
  // created for. Consumes the future (valid() becomes false).
  std::vector<FetchResult> Take();

 private:
  bool ready_ = false;
  std::vector<FetchResult> results_;
  std::function<std::vector<FetchResult>()> resolve_;
};

// The runtime face of a relation with access patterns: one Fetch per
// web-service operation (Section 1). Implementations must enforce the
// pattern — a call that fails to supply a value for every input slot is a
// contract violation (a programming error, CHECK-failed), while transport
// failures are reported through FetchResult's status channel.
class Source {
 public:
  virtual ~Source() = default;

  // Calls `relation` through `pattern`. `inputs` has one entry per slot;
  // entries at input slots must hold ground terms, entries at output slots
  // are ignored. On success returns every tuple of the relation agreeing
  // with the supplied input values. Note the source does NOT filter on
  // output slots — per the paper's footnote 4, output-side selections are
  // the caller's job.
  virtual FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) = 0;

  // One wave of calls against the same (relation, pattern): result i
  // answers inputs[i], in order. The executor issues each literal's full
  // set of per-binding calls through this so the runtime stack can overlap
  // them (runtime/parallel_source.h); the default implementation simply
  // loops over Fetch, so plain sources keep today's sequential behavior
  // and stats. Overrides must preserve per-request semantics: batching is
  // a transport optimization, never a semantic change.
  virtual std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs);

  // Future-shaped counterpart of FetchBatch: issues (or stages) one wave
  // and returns a completion token whose Take() yields exactly what
  // FetchBatch would have returned for the same inputs. `inputs` is taken
  // by value because the wave may outlive the caller's frame. The default
  // implementation defers the virtual FetchBatch into the token, so every
  // decorator's batch semantics (caching, retry rounds, metering,
  // parallel fan-out) carry over to async callers unchanged — resolution
  // simply happens at Take() time. The executor uses this to keep
  // multiple literals' waves in flight (ExecutionOptions::runtime
  // .pipeline_depth); a SimulatedClock charges overlapping resolutions
  // max-over-waves via its overlap bracket (runtime/clock.h).
  //
  // Contract for overrides: one future per call, Take() returns results
  // in request order, and interleaving several futures' Take() calls must
  // yield the same per-request results as sequential FetchBatch calls in
  // issue order.
  virtual FetchFuture FetchBatchAsync(
      std::string relation, AccessPattern pattern,
      std::vector<std::vector<std::optional<Term>>> inputs);

  // Convenience for call sites whose source cannot fail (in-memory
  // databases, tests): returns the tuples, CHECK-failing on any error.
  std::vector<Tuple> FetchOrDie(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs);
};

// A `Source` serving an in-memory Database, enforcing the catalog's
// declared patterns and recording per-relation statistics. This is the
// simulated stand-in for the paper's remote web services: identical
// interface contract (values required at input slots, no output-side
// filtering), with call accounting in place of network cost.
//
// Fetch is safe to call from multiple threads (a ParallelSource worker
// pool fans batched waves out over the transport); the database itself is
// read-only during execution, so only the statistics need the lock. The
// stats accessors are meant for after-the-wave inspection, not for
// concurrent reading while a wave is in flight.
class DatabaseSource : public Source {
 public:
  // Does not take ownership; `db` and `catalog` must outlive the source.
  DatabaseSource(const Database* db, const Catalog* catalog)
      : db_(db), catalog_(catalog) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  // Aggregate statistics across all relations.
  const SourceStats& stats() const { return stats_; }
  // Per-relation statistics (empty entry if never called).
  const std::map<std::string, SourceStats>& per_relation_stats() const {
    return per_relation_stats_;
  }
  void ResetStats();

 private:
  const Database* db_;
  const Catalog* catalog_;
  std::mutex mu_;
  SourceStats stats_;
  std::map<std::string, SourceStats> per_relation_stats_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_SOURCE_H_
