#include "eval/explain.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "eval/executor.h"
#include "schema/adornment.h"
#include "util/logging.h"

namespace ucqn {

std::string DeltaExplanation::ToString() const {
  return TupleToString(tuple) + " from disjunct " +
         std::to_string(disjunct_index) + ": " +
         partially_instantiated.ToString();
}

std::vector<DeltaExplanation> ExplainDelta(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const AnswerStarReport& report) {
  (void)q;  // the per-disjunct detail lives in report.plans
  std::vector<DeltaExplanation> explanations;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < report.plans.disjuncts.size(); ++i) {
    const DisjunctPlan& plan = report.plans.disjuncts[i];
    // Only dismissed disjuncts can contribute Δ tuples: fully answerable
    // ones feed the underestimate too, so their tuples never sit in Δ.
    if (!plan.over.has_value() || plan.unanswerable.empty()) continue;
    // Re-derive the answerable part's witnesses. The answerable part is
    // executable by construction; empty bodies yield the single trivial
    // binding (the bare "benefit of the doubt" row).
    BindingsResult witnesses =
        ExecuteForBindings(*plan.answerable, catalog, source);
    UCQN_CHECK_MSG(witnesses.ok, witnesses.error.c_str());
    for (const Substitution& binding : witnesses.bindings) {
      Tuple tuple = binding.Apply(plan.over->head_terms());
      bool ground = true;
      for (const Term& t : tuple) ground = ground && t.IsGround();
      if (!ground || report.delta.count(tuple) == 0) continue;
      DeltaExplanation explanation;
      explanation.tuple = std::move(tuple);
      explanation.disjunct_index = i;
      explanation.partially_instantiated =
          plan.original.Substitute(binding);
      if (seen.insert(explanation.ToString()).second) {
        explanations.push_back(std::move(explanation));
      }
    }
  }
  return explanations;
}

std::string PlanExplanation::ToString() const {
  std::string out = "cost model: " + model + "\n";
  for (const LiteralPlanStep& step : steps) {
    out += "  " + step.literal.ToString() + " -> " + step.decision.ToString();
    if (!step.score.filter && step.decision.chosen.has_value()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", step.score.cost);
      out += " [score=" + std::string(buf) + "]";
    }
    if (step.score.filter) out += " [filter]";
    out += "\n";
  }
  if (!ok) out += "  plan is not executable at the last literal\n";
  return out;
}

PlanExplanation ExplainPlan(const ConjunctiveQuery& q, const Catalog& catalog,
                            const CostModel& model) {
  PlanExplanation explanation;
  explanation.model = model.name();
  BoundVariables bound;
  PlanContext context;  // same running estimate the planner keeps
  for (const Literal& literal : q.body()) {
    LiteralPlanStep step;
    step.literal = literal;
    std::optional<AccessPattern> pattern = ChoosePattern(
        catalog, literal, bound, model, context, &step.decision);
    step.score = model.ScoreLiteral(catalog, literal, bound, context);
    const bool executable = pattern.has_value();
    explanation.steps.push_back(std::move(step));
    if (!executable) return explanation;  // ok stays false
    if (!explanation.steps.back().score.filter) {
      context.live_bindings = std::max(
          1.0, context.live_bindings * model.ExpectedFanout(literal, bound));
    }
    if (literal.positive()) BindVariables(literal, &bound);
  }
  explanation.ok = true;
  return explanation;
}

std::vector<PlanExplanation> ExplainPlan(const UnionQuery& q,
                                         const Catalog& catalog,
                                         const CostModel& model) {
  std::vector<PlanExplanation> explanations;
  explanations.reserve(q.disjuncts().size());
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    explanations.push_back(ExplainPlan(disjunct, catalog, model));
  }
  return explanations;
}

}  // namespace ucqn
