#include "eval/explain.h"

#include <set>

#include "eval/executor.h"
#include "util/logging.h"

namespace ucqn {

std::string DeltaExplanation::ToString() const {
  return TupleToString(tuple) + " from disjunct " +
         std::to_string(disjunct_index) + ": " +
         partially_instantiated.ToString();
}

std::vector<DeltaExplanation> ExplainDelta(const UnionQuery& q,
                                           const Catalog& catalog,
                                           Source* source,
                                           const AnswerStarReport& report) {
  (void)q;  // the per-disjunct detail lives in report.plans
  std::vector<DeltaExplanation> explanations;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < report.plans.disjuncts.size(); ++i) {
    const DisjunctPlan& plan = report.plans.disjuncts[i];
    // Only dismissed disjuncts can contribute Δ tuples: fully answerable
    // ones feed the underestimate too, so their tuples never sit in Δ.
    if (!plan.over.has_value() || plan.unanswerable.empty()) continue;
    // Re-derive the answerable part's witnesses. The answerable part is
    // executable by construction; empty bodies yield the single trivial
    // binding (the bare "benefit of the doubt" row).
    BindingsResult witnesses =
        ExecuteForBindings(*plan.answerable, catalog, source);
    UCQN_CHECK_MSG(witnesses.ok, witnesses.error.c_str());
    for (const Substitution& binding : witnesses.bindings) {
      Tuple tuple = binding.Apply(plan.over->head_terms());
      bool ground = true;
      for (const Term& t : tuple) ground = ground && t.IsGround();
      if (!ground || report.delta.count(tuple) == 0) continue;
      DeltaExplanation explanation;
      explanation.tuple = std::move(tuple);
      explanation.disjunct_index = i;
      explanation.partially_instantiated =
          plan.original.Substitute(binding);
      if (seen.insert(explanation.ToString()).second) {
        explanations.push_back(std::move(explanation));
      }
    }
  }
  return explanations;
}

}  // namespace ucqn
