#ifndef UCQN_EVAL_SOURCE_ADAPTERS_H_
#define UCQN_EVAL_SOURCE_ADAPTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/source.h"

namespace ucqn {

// Note: the call-memoizing cache adapter lives in the source-access
// runtime layer as runtime/caching_source.h (LRU, eviction counters,
// invalidation hooks), alongside the retry/fault-injection/metrics
// decorators it composes with.

// A Source over an in-memory Database that answers keyed calls through a
// hash index instead of DatabaseSource's full scan: the first call for a
// given (relation, pattern) builds a map from input-slot projections to
// matching tuples, and every later call is a lookup. Semantics are
// identical to DatabaseSource (asserted by the adapter tests); only the
// access path differs — this is the "production" source the benches use
// for large instances.
//
// Thread-safe: Fetch may be called concurrently from a parallel
// dispatcher's pool threads (lazy index builds and stats updates are
// serialized under one lock; the underlying Database is read-only).
class IndexedDatabaseSource : public Source {
 public:
  // Does not take ownership; `db` and `catalog` must outlive the source.
  IndexedDatabaseSource(const Database* db, const Catalog* catalog)
      : db_(db), catalog_(catalog) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  const SourceStats& stats() const { return stats_; }
  std::size_t index_count() const { return indexes_.size(); }

 private:
  struct Index {
    // Keyed by the concatenated rendering of the input-slot values.
    std::unordered_map<std::string, std::vector<Tuple>> buckets;
  };

  // Requires mu_ to be held (node-based map: returned reference stays
  // valid across later inserts, but builds must not race).
  const Index& GetOrBuildIndexLocked(const std::string& relation,
                                     const AccessPattern& pattern);

  const Database* db_;
  const Catalog* catalog_;
  std::mutex mu_;
  SourceStats stats_;
  std::map<std::string, Index> indexes_;  // keyed by relation + "^" + word
};

// Routes each relation to its own backend — the mediator picture, where
// every relation family lives at a different remote service. Fetching an
// un-routed relation is a wiring bug and CHECK-fails.
class CompositeSource : public Source {
 public:
  CompositeSource() = default;

  // Does not take ownership; `source` must outlive the adapter.
  void Route(const std::string& relation, Source* source);

  bool HasRoute(const std::string& relation) const {
    return routes_.count(relation) > 0;
  }

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  // A wave is per-literal, hence per-relation, so the whole batch routes
  // to one backend — forwarded intact so that backend's own stack (and
  // any batching it does) sees the wave as a unit.
  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

 private:
  std::map<std::string, Source*> routes_;
};

}  // namespace ucqn

#endif  // UCQN_EVAL_SOURCE_ADAPTERS_H_
