#ifndef UCQN_EVAL_ANSWER_STAR_H_
#define UCQN_EVAL_ANSWER_STAR_H_

#include <optional>
#include <set>
#include <string>

#include "ast/query.h"
#include "eval/executor.h"
#include "eval/source.h"
#include "feasibility/plan_star.h"

namespace ucqn {

// Output of algorithm ANSWER* (Fig. 4): runtime under-/over-estimates of
// the exact answer plus the completeness information reported to the user.
struct AnswerStarReport {
  // False only when a source call failed (transient error past its
  // retries, or an exhausted call/deadline budget); `error` says why. The
  // estimate sets are empty in that case. With infallible sources (the
  // in-memory ones) this is always true: PLAN*'s plans are executable by
  // construction.
  bool ok = false;
  std::string error;
  // ansᵤ = ANSWER(Qᵘ, D): every tuple here is a guaranteed answer.
  std::set<Tuple> under;
  // ansₒ = ANSWER(Qᵒ, D): every actual answer appears here, possibly with
  // null in columns the overestimate could not compute.
  std::set<Tuple> over;
  // Δ = ansₒ \ ansᵤ: tuples that *may* be part of the answer.
  std::set<Tuple> delta;
  // Δ = ∅: the answer is complete even if the query is infeasible
  // (Example 5 — the unanswerable part turned out to be irrelevant).
  bool complete = false;
  // True if some Δ tuple carries null (Example 7's "unknown value" rows).
  bool delta_has_nulls = false;
  // |ansᵤ| / |ansₒ|, reported only when Δ is non-empty and null-free — the
  // "answer is at least X complete" message of Fig. 4.
  std::optional<double> completeness_lower_bound;
  // The compiled plans, for diagnostics.
  PlanStarResult plans;
  // What the source-access runtime did across both plan executions, when
  // ExecutionOptions::runtime enabled any of its layers.
  RuntimeStats runtime;

  // The user-facing messages of Fig. 4, verbatim in spirit.
  std::string Summary() const;
};

// Algorithm ANSWER*: compiles Q with PLAN*, evaluates both plans against
// the sources, and reports the underestimate together with completeness
// information. The plans produced by PLAN* are always executable, so on
// well-formed catalogs this can fail (report.ok == false) only through the
// source failure channel. A runtime stack configured via
// `options.runtime` is shared across both plan executions — exactly the
// duplicate-call shape (Qᵘ's calls are a subset of Qᵒ's) where caching
// pays off; with `options.runtime.parallelism` > 1 the shared stack's
// parallel dispatcher also overlaps each literal's batched wave of calls
// across both plans; see bench_runtime.
AnswerStarReport AnswerStar(const UnionQuery& q, const Catalog& catalog,
                            Source* source,
                            const ExecutionOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_EVAL_ANSWER_STAR_H_
