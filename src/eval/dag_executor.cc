#include "eval/dag_executor.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>

#include "cost/cost_model.h"
#include "dict/term_dictionary.h"
#include "eval/frontier.h"
#include "eval/op/lowering.h"
#include "eval/op/operators.h"

namespace ucqn {

namespace {

const CostModel* ResolveCostModel(const ExecutionOptions& options,
                                  std::optional<StaticCostModel>* storage) {
  if (options.cost_model != nullptr) return options.cost_model;
  storage->emplace(options.pattern_preference);
  return &**storage;
}

// One disjunct's compiled chain plus its execution state: a FIFO morsel
// queue in front of every fetch operator, and the sink. A chain is done
// when every queue has drained (all its morsels either died or were
// materialized).
struct Chain {
  const ConjunctiveQuery* q = nullptr;
  std::vector<FetchOperator> ops;
  std::vector<std::deque<ColumnarFrontier>> queues;
  MaterializeOp materialize;
  bool done = false;

  static constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);

  // The deepest stage holding a pending morsel (draining deep-first
  // bounds the rows parked mid-chain, as in the pipelined executor), or
  // kNoStage when the chain has no work left.
  std::size_t DeepestStage() const {
    for (std::size_t i = queues.size(); i-- > 0;) {
      if (!queues[i].empty()) return i;
    }
    return kNoStage;
  }
};

// Enqueues `out`, split into chunks of at most `morsel_rows` rows
// (0 = unsplit — the byte-compatible default where a whole frontier is
// one morsel). Chunks keep row order, so witness order survives
// splitting.
void EnqueueMorsels(ColumnarFrontier&& out, std::size_t morsel_rows,
                    std::deque<ColumnarFrontier>* queue) {
  if (morsel_rows == 0 || out.rows() <= morsel_rows) {
    queue->push_back(std::move(out));
    return;
  }
  for (std::size_t start = 0; start < out.rows(); start += morsel_rows) {
    const std::size_t end = std::min(start + morsel_rows, out.rows());
    ColumnarFrontier chunk;
    for (const std::string& var : out.vars()) chunk.AddVar(var);
    for (std::size_t c = 0; c < out.width(); ++c) {
      chunk.MutableColumn(c).assign(out.Column(c).begin() + start,
                                    out.Column(c).begin() + end);
    }
    chunk.SetRows(end - start);
    queue->push_back(std::move(chunk));
  }
}

}  // namespace

UnionChainsResult ExecuteChainsDag(
    const std::vector<const ConjunctiveQuery*>& disjuncts,
    const Catalog& catalog, Source* source, const ExecutionOptions& options,
    Clock* clock, OperatorCounters* counters) {
  UnionChainsResult result;
  TermDictionary& dict = TermDictionary::Global();
  std::optional<StaticCostModel> fallback_model;
  const CostModel* model = ResolveCostModel(options, &fallback_model);

  std::vector<Chain> chains;
  chains.reserve(disjuncts.size());
  for (const ConjunctiveQuery* q : disjuncts) {
    Chain chain;
    chain.q = q;
    const std::vector<Literal>& body = q->body();
    if (body.empty()) {
      // An empty body satisfies the one empty binding it started from.
      chain.materialize.Push(ColumnarFrontier(), dict);
      chain.done = true;
      ++counters->disjuncts_executed;
      chains.push_back(std::move(chain));
      continue;
    }
    std::vector<OperatorKind> kinds = LowerOperatorKinds(*q);
    chain.ops.reserve(body.size());
    for (std::size_t i = 0; i < body.size(); ++i) {
      chain.ops.emplace_back(kinds[i], &body[i], &catalog, model, counters);
    }
    chain.queues.resize(body.size());
    chain.queues[0].emplace_back();  // the unit frontier every plan seeds
    chains.push_back(std::move(chain));
  }

  const std::size_t concurrency =
      std::max<std::size_t>(options.disjunct_concurrency, 1);

  struct Lane {
    Chain* chain = nullptr;
    std::size_t stage = 0;
    PendingWave wave;
    FetchFuture future;
    std::vector<FetchResult> fetched;
  };

  while (true) {
    // Collect this round's lanes: the first `concurrency` chains (in
    // disjunct order) with pending morsels each stage their deepest one.
    // At concurrency 1 this degenerates to driving chain 0 to completion
    // before chain 1 starts a wave — the sequential union order, so the
    // shared cache observes the exact same call sequence.
    std::vector<Lane> lanes;
    for (Chain& chain : chains) {
      if (lanes.size() == concurrency) break;
      if (chain.done) continue;
      const std::size_t stage = chain.DeepestStage();
      if (stage == Chain::kNoStage) {
        chain.done = true;
        ++counters->disjuncts_executed;
        continue;
      }
      Lane lane;
      lane.chain = &chain;
      lane.stage = stage;
      ColumnarFrontier morsel = std::move(chain.queues[stage].front());
      chain.queues[stage].pop_front();
      if (!chain.ops[stage].Stage(std::move(morsel), &lane.wave)) {
        ++counters->disjuncts_executed;
        result.error = chain.ops[stage].error();
        return result;
      }
      lanes.push_back(std::move(lane));
    }
    if (lanes.empty()) break;

    if (lanes.size() == 1) {
      // Synchronous wave: the same FetchBatch the sequential executor
      // issues, so cache/retry/parallel ledgers stay byte-identical.
      Lane& lane = lanes.front();
      const FetchOperator& op = lane.chain->ops[lane.stage];
      lane.fetched = source->FetchBatch(op.literal().relation(),
                                        *op.pattern(), lane.wave.requests);
    } else {
      // Concurrent waves: issue in ascending disjunct order, resolve all
      // inside one overlap bracket (a SimulatedClock charges the round
      // max-over-lanes; see runtime/clock.h).
      for (Lane& lane : lanes) {
        const FetchOperator& op = lane.chain->ops[lane.stage];
        lane.future =
            source->FetchBatchAsync(op.literal().relation(), *op.pattern(),
                                    std::move(lane.wave.requests));
      }
      if (clock != nullptr) clock->BeginOverlap();
      for (Lane& lane : lanes) {
        if (clock != nullptr) clock->BeginLane();
        lane.fetched = lane.future.Take();
        if (clock != nullptr) clock->EndLane();
      }
      if (clock != nullptr) clock->EndOverlap();
    }

    // Merge in ascending disjunct order; the first failing lane aborts
    // the whole union, exactly like a failing disjunct of the sequential
    // loop (no partial answers).
    for (Lane& lane : lanes) {
      Chain& chain = *lane.chain;
      FetchOperator& op = chain.ops[lane.stage];
      ColumnarFrontier out;
      if (!op.Absorb(std::move(lane.wave), std::move(lane.fetched), &out)) {
        ++counters->disjuncts_executed;
        result.error = op.error();
        return result;
      }
      if (options.max_bindings != 0 &&
          op.rows_out() > options.max_bindings) {
        ++counters->disjuncts_executed;
        result.error = "execution exceeded max_bindings (" +
                       std::to_string(options.max_bindings) +
                       ") at literal " + op.literal().ToString();
        return result;
      }
      // A dead morsel is simply not pushed downstream — later operators
      // never see it, never choose a pattern, never error, reproducing
      // the sequential loop's break on an empty frontier.
      if (out.rows() == 0) continue;
      if (lane.stage + 1 == chain.ops.size()) {
        chain.materialize.Push(out, dict);
      } else {
        EnqueueMorsels(std::move(out), options.morsel_rows,
                       &chain.queues[lane.stage + 1]);
      }
    }
  }

  result.ok = true;
  result.bindings.reserve(chains.size());
  for (Chain& chain : chains) {
    result.bindings.push_back(std::move(chain.materialize.bindings()));
  }
  return result;
}

}  // namespace ucqn
