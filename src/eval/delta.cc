#include "eval/delta.h"

#include <algorithm>
#include <utility>

#include "cost/cost_model.h"
#include "feasibility/plan_star.h"
#include "schema/adornment.h"

namespace ucqn {

std::vector<Tuple> AppliedDelta::ChangedTuples() const {
  std::vector<Tuple> changed;
  changed.reserve(inserted.size() + deleted.size());
  changed.insert(changed.end(), inserted.begin(), inserted.end());
  changed.insert(changed.end(), deleted.begin(), deleted.end());
  return changed;
}

std::optional<AppliedDelta> ApplyDelta(Database* db,
                                       const RelationDelta& delta,
                                       std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<AppliedDelta> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  // Validate the whole batch up front so a bad tuple cannot leave the
  // database half-updated (Database::Insert CHECK-fails where this API
  // must report).
  const std::set<Tuple>* existing = db->Find(delta.relation);
  std::optional<std::size_t> arity;
  if (existing != nullptr && !existing->empty()) {
    arity = existing->begin()->size();
  }
  for (const std::vector<Tuple>* batch : {&delta.deletes, &delta.inserts}) {
    for (const Tuple& tuple : *batch) {
      for (const Term& t : tuple) {
        if (!t.IsGround()) {
          return fail("delta tuples must be ground: " + delta.relation +
                      TupleToString(tuple));
        }
      }
      if (arity.has_value() && tuple.size() != *arity) {
        return fail("delta arity mismatch for " + delta.relation + ": got " +
                    std::to_string(tuple.size()) + ", relation has " +
                    std::to_string(*arity));
      }
      if (!arity.has_value()) arity = tuple.size();
    }
  }

  AppliedDelta applied;
  applied.relation = delta.relation;
  // Deletes first: only tuples actually present vanish, and a tuple also
  // named in `inserts` is about to come back, so it never counts as
  // effectively deleted.
  for (const Tuple& tuple : delta.deletes) {
    if (std::find(delta.inserts.begin(), delta.inserts.end(), tuple) !=
        delta.inserts.end()) {
      continue;
    }
    if (db->Remove(delta.relation, tuple)) applied.deleted.insert(tuple);
  }
  for (const Tuple& tuple : delta.inserts) {
    if (db->Contains(delta.relation, tuple)) continue;
    db->Insert(delta.relation, tuple);
    applied.inserted.insert(tuple);
  }
  return applied;
}

namespace {

// These two mirror the executor's reference per-binding loop
// (eval/executor.cc) exactly: maintenance fetches must produce the same
// extensions a from-scratch run would, or maintained frontiers drift from
// the oracle.

std::vector<std::optional<Term>> FetchInputs(const Literal& literal,
                                             const AccessPattern& pattern,
                                             const Substitution& binding) {
  std::vector<std::optional<Term>> inputs;
  inputs.reserve(literal.args().size());
  for (std::size_t j = 0; j < literal.args().size(); ++j) {
    Term value = binding.Apply(literal.args()[j]);
    if (pattern.IsInputSlot(j) && value.IsGround()) {
      inputs.emplace_back(std::move(value));
    } else {
      inputs.emplace_back(std::nullopt);
    }
  }
  return inputs;
}

std::optional<Substitution> UnifyWithTuple(const Literal& literal,
                                           const Tuple& tuple,
                                           const Substitution& binding) {
  Substitution extended = binding;
  const std::vector<Term>& args = literal.args();
  if (args.size() != tuple.size()) return std::nullopt;
  for (std::size_t j = 0; j < args.size(); ++j) {
    Term value = extended.Apply(args[j]);
    if (value.IsGround()) {
      if (value != tuple[j]) return std::nullopt;
    } else {
      if (!extended.Bind(value, tuple[j])) return std::nullopt;
    }
  }
  return extended;
}

// Extends one frontier row through one stage with an ordinary fetch,
// appending the surviving extensions to `out`.
bool ExtendRow(const MaintainedStage& stage, const Substitution& row,
               Source* source, std::vector<Substitution>* out,
               std::string* error) {
  FetchResult fetched =
      source->Fetch(stage.literal.relation(), stage.pattern,
                    FetchInputs(stage.literal, stage.pattern, row));
  if (!fetched.ok()) {
    *error = "source call for literal " + stage.literal.ToString() +
             " failed: " + fetched.error;
    return false;
  }
  if (stage.literal.positive()) {
    for (const Tuple& tuple : fetched.tuples) {
      std::optional<Substitution> extended =
          UnifyWithTuple(stage.literal, tuple, row);
      if (extended.has_value()) out->push_back(std::move(*extended));
    }
    return true;
  }
  // Negative literal: all variables are bound (ChoosePattern guarantees
  // it), so the instantiated atom either appears among the fetched tuples
  // (row blocked) or not (row passes unchanged).
  const Tuple instantiated = row.Apply(stage.literal.args());
  for (const Tuple& tuple : fetched.tuples) {
    if (tuple == instantiated) return true;
  }
  out->push_back(row);
  return true;
}

}  // namespace

std::optional<MaintainedChain> BuildMaintainedChain(
    const ConjunctiveQuery& plan, const Catalog& catalog, Source* source,
    std::string* error) {
  MaintainedChain chain;
  chain.plan = plan;
  chain.frontiers.emplace_back(1);  // the single empty binding
  BoundVariables bound;
  // Pattern choice never changes the answer set, only the call cost, so
  // the static model's pick is as good as any for maintenance fetches.
  const StaticCostModel model;
  std::size_t position = 0;
  for (const Literal& literal : plan.body()) {
    ++position;
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound, model);
    if (!pattern.has_value()) {
      *error = "literal " + literal.ToString() +
               " has no usable access pattern at its position";
      return std::nullopt;
    }
    chain.stages.push_back({literal, *pattern});
    std::vector<Substitution> next;
    for (const Substitution& row : chain.frontiers.back()) {
      if (!ExtendRow(chain.stages.back(), row, source, &next, error)) {
        return std::nullopt;
      }
    }
    // Unlike the executor, an empty frontier does not end the walk: every
    // stage keeps a (possibly empty) frontier so a later insert can revive
    // the chain from any position.
    chain.frontiers.push_back(std::move(next));
    if (literal.positive()) BindVariables(literal, &bound);
  }
  return chain;
}

DeltaApplier::DeltaApplier(const std::vector<AppliedDelta>& deltas) {
  for (const AppliedDelta& delta : deltas) {
    if (!delta.empty()) by_relation_[delta.relation] = &delta;
  }
}

bool DeltaApplier::Unaffected(const MaintainedChain& chain) const {
  for (const MaintainedStage& stage : chain.stages) {
    if (by_relation_.count(stage.literal.relation()) > 0) return false;
  }
  return true;
}

namespace {

// Appends `rows` to frontiers[from] and extends them through the remaining
// stages with ordinary fetches (the database already holds the post-update
// state), appending the survivors at every level.
bool PropagateForward(MaintainedChain* chain, std::size_t from,
                      std::vector<Substitution> rows, Source* source,
                      std::string* error) {
  for (std::size_t s = from;; ++s) {
    std::vector<Substitution>& frontier = chain->frontiers[s];
    frontier.insert(frontier.end(), rows.begin(), rows.end());
    if (rows.empty() || s == chain->stages.size()) return true;
    std::vector<Substitution> next;
    for (const Substitution& row : rows) {
      if (!ExtendRow(chain->stages[s], row, source, &next, error)) {
        return false;
      }
    }
    rows = std::move(next);
  }
}

}  // namespace

bool DeltaApplier::Maintain(MaintainedChain* chain, Source* source,
                            std::string* error) const {
  const std::size_t n = chain->stages.size();
  std::vector<const AppliedDelta*> delta_at(n, nullptr);
  bool affected = false;
  for (std::size_t k = 0; k < n; ++k) {
    auto it = by_relation_.find(chain->stages[k].literal.relation());
    if (it != by_relation_.end()) {
      delta_at[k] = it->second;
      affected = true;
    }
  }
  if (!affected) return true;

  // Delete pass: a frontier row past stage k dies when its derivation used
  // a now-deleted tuple there (positive), or its anti-join probe tuple was
  // inserted (negated — the insert flips the filter against it). The row
  // itself records the probe: Apply(args) reproduces exactly the tuple the
  // derivation consumed, so no multiplicity counting is needed.
  for (std::size_t s = 1; s <= n; ++s) {
    std::vector<Substitution>& rows = chain->frontiers[s];
    rows.erase(
        std::remove_if(
            rows.begin(), rows.end(),
            [&](const Substitution& row) {
              for (std::size_t k = 0; k < s; ++k) {
                const AppliedDelta* delta = delta_at[k];
                if (delta == nullptr) continue;
                const Tuple used = row.Apply(chain->stages[k].literal.args());
                if (chain->stages[k].literal.positive()
                        ? delta->deleted.count(used) > 0
                        : delta->inserted.count(used) > 0) {
                  return true;
                }
              }
              return false;
            }),
        rows.end());
  }

  // Rows appended below are produced against the fully-updated database,
  // so later positions' delta-joins must skip them: snapshot each
  // frontier's post-delete size as the "base" region.
  std::vector<std::size_t> base_end(n + 1);
  for (std::size_t s = 0; s <= n; ++s) base_end[s] = chain->frontiers[s].size();

  // Insert pass, affected positions in ascending order. Each position k
  // pairs surviving base rows of frontiers[k] with the change at stage k —
  // new tuples for a positive stage, removed probe targets for a negated
  // one (the delete *revives* the row) — and propagates the fresh rows
  // forward. A derivation whose first changed position is k is produced
  // here and nowhere else: earlier positions didn't make it (base rows are
  // old derivations) and later positions won't see it (base_end).
  for (std::size_t k = 0; k < n; ++k) {
    const AppliedDelta* delta = delta_at[k];
    if (delta == nullptr) continue;
    const MaintainedStage& stage = chain->stages[k];
    std::vector<Substitution> fresh;
    if (stage.literal.positive()) {
      if (delta->inserted.empty()) continue;
      for (std::size_t r = 0; r < base_end[k]; ++r) {
        const Substitution& row = chain->frontiers[k][r];
        for (const Tuple& tuple : delta->inserted) {
          std::optional<Substitution> extended =
              UnifyWithTuple(stage.literal, tuple, row);
          if (extended.has_value()) fresh.push_back(std::move(*extended));
        }
      }
    } else {
      if (delta->deleted.empty()) continue;
      for (std::size_t r = 0; r < base_end[k]; ++r) {
        const Substitution& row = chain->frontiers[k][r];
        if (delta->deleted.count(row.Apply(stage.literal.args())) > 0) {
          fresh.push_back(row);
        }
      }
    }
    if (!PropagateForward(chain, k + 1, std::move(fresh), source, error)) {
      return false;
    }
  }
  return true;
}

namespace {

// Mirrors the executor's ProjectHead/ExecuteTrueQuery handling for one
// plan: empty-body disjuncts contribute their (ground) head directly;
// chain disjuncts are compiled and materialized.
bool AddPlanDisjuncts(const UnionQuery& plan, const Catalog& catalog,
                      Source* source, std::vector<MaintainedChain>* chains,
                      std::set<Tuple>* fixed, std::string* error) {
  for (const ConjunctiveQuery& disjunct : plan.disjuncts()) {
    if (disjunct.IsTrueQuery()) {
      for (const Term& t : disjunct.head_terms()) {
        if (!t.IsGround()) {
          *error = "empty-body rule with non-ground head is not a plan";
          return false;
        }
      }
      fixed->insert(disjunct.head_terms());
      continue;
    }
    std::optional<MaintainedChain> chain =
        BuildMaintainedChain(disjunct, catalog, source, error);
    if (!chain.has_value()) return false;
    chains->push_back(std::move(*chain));
  }
  return true;
}

void ProjectChain(const MaintainedChain& chain, std::set<Tuple>* out) {
  const std::vector<Substitution>& witnesses = chain.frontiers.back();
  for (const Substitution& row : witnesses) {
    Tuple head = row.Apply(chain.plan.head_terms());
    bool ground = true;
    for (const Term& t : head) ground = ground && t.IsGround();
    // PLAN* only emits executable plans (head variables bound by the body,
    // or replaced by Δ-null in the overestimate), so this never fires for
    // chains built through Build().
    if (ground) out->insert(std::move(head));
  }
}

}  // namespace

std::unique_ptr<StandingQuery> StandingQuery::Build(const UnionQuery& q,
                                                    const Catalog& catalog,
                                                    Source* source,
                                                    std::string* error) {
  std::unique_ptr<StandingQuery> standing(new StandingQuery());
  standing->query_ = q;
  const PlanStarResult plans = PlanStar(q, catalog);
  if (!AddPlanDisjuncts(plans.under, catalog, source,
                        &standing->under_chains_, &standing->under_fixed_,
                        error) ||
      !AddPlanDisjuncts(plans.over, catalog, source, &standing->over_chains_,
                        &standing->over_fixed_, error)) {
    return nullptr;
  }
  for (const std::vector<MaintainedChain>* chains :
       {&standing->under_chains_, &standing->over_chains_}) {
    for (const MaintainedChain& chain : *chains) {
      for (const MaintainedStage& stage : chain.stages) {
        standing->relations_.insert(stage.literal.relation());
      }
    }
  }
  return standing;
}

bool StandingQuery::ApplyDeltas(const std::vector<AppliedDelta>& deltas,
                                Source* source, std::string* error) {
  const DeltaApplier applier(deltas);
  for (std::vector<MaintainedChain>* chains : {&under_chains_, &over_chains_}) {
    for (MaintainedChain& chain : *chains) {
      if (!applier.Maintain(&chain, source, error)) return false;
    }
  }
  return true;
}

StandingAnswers StandingQuery::Answers() const {
  StandingAnswers out;
  out.under = under_fixed_;
  out.over = over_fixed_;
  for (const MaintainedChain& chain : under_chains_) {
    ProjectChain(chain, &out.under);
  }
  for (const MaintainedChain& chain : over_chains_) {
    ProjectChain(chain, &out.over);
  }
  // Identical to AnswerStar's report assembly, so re-emitted standing
  // answers are byte-for-byte what a fresh run would print.
  std::set_difference(out.over.begin(), out.over.end(), out.under.begin(),
                      out.under.end(),
                      std::inserter(out.delta, out.delta.begin()));
  out.complete = out.delta.empty();
  for (const Tuple& tuple : out.delta) {
    for (const Term& t : tuple) {
      if (t.IsNull()) {
        out.delta_has_nulls = true;
        break;
      }
    }
    if (out.delta_has_nulls) break;
  }
  if (!out.complete && !out.delta_has_nulls && !out.over.empty()) {
    out.completeness_lower_bound = static_cast<double>(out.under.size()) /
                                   static_cast<double>(out.over.size());
  }
  return out;
}

}  // namespace ucqn
