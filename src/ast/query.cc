#include "ast/query.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

namespace {

void AppendUnique(std::vector<Term>* out, const Term& t) {
  if (std::find(out->begin(), out->end(), t) == out->end()) out->push_back(t);
}

}  // namespace

std::vector<Term> ConjunctiveQuery::FreeVariables() const {
  std::vector<Term> vars;
  for (const Term& t : head_terms_) {
    if (t.IsVariable()) AppendUnique(&vars, t);
  }
  return vars;
}

std::vector<Term> ConjunctiveQuery::AllVariables() const {
  std::vector<Term> vars = FreeVariables();
  for (const Literal& l : body_) {
    for (const Term& t : l.args()) {
      if (t.IsVariable()) AppendUnique(&vars, t);
    }
  }
  return vars;
}

std::vector<Term> ConjunctiveQuery::BodyVariables() const {
  std::vector<Term> vars;
  for (const Literal& l : body_) {
    for (const Term& t : l.args()) {
      if (t.IsVariable()) AppendUnique(&vars, t);
    }
  }
  return vars;
}

std::vector<Term> ConjunctiveQuery::Constants() const {
  std::vector<Term> consts;
  for (const Term& t : head_terms_) {
    if (t.IsGround()) AppendUnique(&consts, t);
  }
  for (const Literal& l : body_) {
    for (const Term& t : l.args()) {
      if (t.IsGround()) AppendUnique(&consts, t);
    }
  }
  return consts;
}

std::vector<Literal> ConjunctiveQuery::PositiveBody() const {
  std::vector<Literal> out;
  for (const Literal& l : body_) {
    if (l.positive()) out.push_back(l);
  }
  return out;
}

std::vector<Literal> ConjunctiveQuery::NegativeBody() const {
  std::vector<Literal> out;
  for (const Literal& l : body_) {
    if (l.negative()) out.push_back(l);
  }
  return out;
}

bool ConjunctiveQuery::HasNegation() const {
  for (const Literal& l : body_) {
    if (l.negative()) return true;
  }
  return false;
}

bool ConjunctiveQuery::IsSafe() const {
  std::unordered_set<std::string> covered;
  for (const Literal& l : body_) {
    if (!l.positive()) continue;
    for (const Term& t : l.args()) {
      if (t.IsVariable()) covered.insert(t.name());
    }
  }
  for (const Term& t : AllVariables()) {
    if (covered.count(t.name()) == 0) return false;
  }
  return true;
}

bool ConjunctiveQuery::IsUnsatisfiable() const {
  std::unordered_set<Atom, AtomHash> positives;
  for (const Literal& l : body_) {
    if (l.positive()) positives.insert(l.atom());
  }
  for (const Literal& l : body_) {
    if (l.negative() && positives.count(l.atom()) > 0) return true;
  }
  return false;
}

bool ConjunctiveQuery::ContainsNull() const {
  for (const Term& t : head_terms_) {
    if (t.IsNull()) return true;
  }
  for (const Literal& l : body_) {
    for (const Term& t : l.args()) {
      if (t.IsNull()) return true;
    }
  }
  return false;
}

std::set<std::string> ConjunctiveQuery::RelationNames() const {
  std::set<std::string> names;
  for (const Literal& l : body_) names.insert(l.relation());
  return names;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const Substitution& subst) const {
  std::vector<Literal> body;
  body.reserve(body_.size());
  for (const Literal& l : body_) body.push_back(subst.Apply(l));
  return ConjunctiveQuery(head_name_, subst.Apply(head_terms_),
                          std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::string& suffix) const {
  Substitution subst;
  for (const Term& v : AllVariables()) {
    subst.Bind(v, Term::Variable(v.name() + suffix));
  }
  return Substitute(subst);
}

ConjunctiveQuery ConjunctiveQuery::WithExtraLiteral(
    const Literal& literal) const {
  std::vector<Literal> body = body_;
  body.push_back(literal);
  return ConjunctiveQuery(head_name_, head_terms_, std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::WithBody(std::vector<Literal> body) const {
  return ConjunctiveQuery(head_name_, head_terms_, std::move(body));
}

bool ConjunctiveQuery::BodyContains(const Literal& literal) const {
  return std::find(body_.begin(), body_.end(), literal) != body_.end();
}

bool ConjunctiveQuery::PositiveBodyContains(const Atom& atom) const {
  return BodyContains(Literal::Positive(atom));
}

bool ConjunctiveQuery::NegativeBodyContains(const Atom& atom) const {
  return BodyContains(Literal::Negative(atom));
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> head_parts;
  head_parts.reserve(head_terms_.size());
  for (const Term& t : head_terms_) head_parts.push_back(t.ToString());
  std::string head =
      head_name_ + "(" + StrJoin(head_parts, ", ") + ")";
  if (body_.empty()) return head + ".";
  std::vector<std::string> body_parts;
  body_parts.reserve(body_.size());
  for (const Literal& l : body_) body_parts.push_back(l.ToString());
  return head + " :- " + StrJoin(body_parts, ", ") + ".";
}

std::size_t ConjunctiveQuery::Hash() const {
  std::size_t seed = 0;
  HashCombine(&seed, head_name_);
  for (const Term& t : head_terms_) HashCombine(&seed, t.Hash());
  for (const Literal& l : body_) HashCombine(&seed, l.Hash());
  return seed;
}

UnionQuery::UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
    : disjuncts_(std::move(disjuncts)) {
  for (std::size_t i = 1; i < disjuncts_.size(); ++i) {
    UCQN_CHECK_MSG(disjuncts_[i].head_name() == disjuncts_[0].head_name() &&
                       disjuncts_[i].head_arity() == disjuncts_[0].head_arity(),
                   "all disjuncts of a union must share head name and arity");
  }
}

UnionQuery::UnionQuery(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

const std::string& UnionQuery::head_name() const {
  UCQN_CHECK_MSG(!disjuncts_.empty(), "false query has no head");
  return disjuncts_[0].head_name();
}

std::size_t UnionQuery::head_arity() const {
  UCQN_CHECK_MSG(!disjuncts_.empty(), "false query has no head");
  return disjuncts_[0].head_arity();
}

bool UnionQuery::IsSafe() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.IsSafe()) return false;
  }
  return true;
}

bool UnionQuery::HasNegation() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.HasNegation()) return true;
  }
  return false;
}

bool UnionQuery::ContainsNull() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.ContainsNull()) return true;
  }
  return false;
}

std::set<std::string> UnionQuery::RelationNames() const {
  std::set<std::string> names;
  for (const ConjunctiveQuery& q : disjuncts_) {
    std::set<std::string> qnames = q.RelationNames();
    names.insert(qnames.begin(), qnames.end());
  }
  return names;
}

void UnionQuery::AddDisjunct(ConjunctiveQuery q) {
  if (!disjuncts_.empty()) {
    UCQN_CHECK_MSG(q.head_name() == disjuncts_[0].head_name() &&
                       q.head_arity() == disjuncts_[0].head_arity(),
                   "all disjuncts of a union must share head name and arity");
  }
  disjuncts_.push_back(std::move(q));
}

UnionQuery UnionQuery::DropUnsatisfiable() const {
  std::vector<ConjunctiveQuery> kept;
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.IsUnsatisfiable()) kept.push_back(q);
  }
  return UnionQuery(std::move(kept));
}

std::string UnionQuery::ToString() const {
  if (disjuncts_.empty()) return "false.";
  std::vector<std::string> lines;
  lines.reserve(disjuncts_.size());
  for (const ConjunctiveQuery& q : disjuncts_) lines.push_back(q.ToString());
  return StrJoin(lines, "\n");
}

}  // namespace ucqn
