#ifndef UCQN_AST_SUBSTITUTION_H_
#define UCQN_AST_SUBSTITUTION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ast/term.h"

namespace ucqn {

// A substitution maps variables (by name) to terms. Applying it to a term
// replaces bound variables and leaves everything else unchanged. Used both
// as containment mappings (Section 5.1) and as variable bindings during
// plan execution.
class Substitution {
 public:
  Substitution() = default;

  // Binds variable `var` to `value`. If `var` is already bound, returns
  // true iff the existing binding equals `value` (no rebinding).
  bool Bind(const Term& var, const Term& value);

  // Returns the binding for `var`, if any.
  std::optional<Term> Lookup(const Term& var) const;

  // True if `var` has a binding.
  bool IsBound(const Term& var) const;

  // Applies the substitution: bound variables are replaced, unbound
  // variables and ground terms pass through.
  Term Apply(const Term& t) const;
  std::vector<Term> Apply(const std::vector<Term>& ts) const;
  Atom Apply(const Atom& a) const;
  Literal Apply(const Literal& l) const;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // Iteration over (variable name, term) pairs, unspecified order.
  const std::unordered_map<std::string, Term>& map() const { return map_; }

  std::string ToString() const;

 private:
  std::unordered_map<std::string, Term> map_;
};

// Attempts to extend `subst` so that Apply(pattern) == target argument-wise.
// `pattern`'s variables may be bound; `target` is treated as fixed (its
// variables are NOT bound — they act as constants, which is exactly the
// "frozen query" view used by containment mappings). Returns false and
// leaves `subst` in an unspecified-but-valid state on mismatch; callers
// should match against a copy when backtracking.
bool MatchArgs(const std::vector<Term>& pattern,
               const std::vector<Term>& target, Substitution* subst);

}  // namespace ucqn

#endif  // UCQN_AST_SUBSTITUTION_H_
