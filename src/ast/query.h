#ifndef UCQN_AST_QUERY_H_
#define UCQN_AST_QUERY_H_

#include <cstddef>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "ast/substitution.h"
#include "ast/term.h"

namespace ucqn {

// A conjunctive query with negation (CQ¬) in Datalog rule form:
//
//   Q(z̄) :- R1(x̄1), ..., not Rk(x̄k).
//
// The head terms z̄ are the distinguished (free) terms; body variables not
// in the head are implicitly existentially quantified. Plain conjunctive
// queries (CQ) are the special case with no negative literals.
//
// Head terms are usually variables but may be constants — in particular the
// distinguished `null` constant used by overestimate plans (Section 4.2).
// A query with an empty body is the paper's `true` (non-executable).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string head_name, std::vector<Term> head_terms,
                   std::vector<Literal> body)
      : head_name_(std::move(head_name)),
        head_terms_(std::move(head_terms)),
        body_(std::move(body)) {}

  const std::string& head_name() const { return head_name_; }
  const std::vector<Term>& head_terms() const { return head_terms_; }
  const std::vector<Literal>& body() const { return body_; }
  std::size_t head_arity() const { return head_terms_.size(); }

  // free(Q): the distinguished variables, i.e. variables in the head, in
  // order of first occurrence.
  std::vector<Term> FreeVariables() const;

  // vars(Q): all variables, head first then body, in order of first
  // occurrence.
  std::vector<Term> AllVariables() const;

  // Variables occurring in the body only (still ordered by occurrence).
  std::vector<Term> BodyVariables() const;

  // Constants (including null) occurring anywhere in the query.
  std::vector<Term> Constants() const;

  // Q⁺ / Q⁻: the positive / negative literals in body order.
  std::vector<Literal> PositiveBody() const;
  std::vector<Literal> NegativeBody() const;
  bool HasNegation() const;

  // Safety (Section 2): every variable of the query appears in a positive
  // body literal.
  bool IsSafe() const;

  // Proposition 8: a CQ¬ is unsatisfiable iff some atom occurs both
  // positively and negatively. Quadratic-time syntactic check.
  bool IsUnsatisfiable() const;

  // True if the body is empty (the paper's `true` query).
  bool IsTrueQuery() const { return body_.empty(); }

  // True if the head or body mentions the null term.
  bool ContainsNull() const;

  // Relation names used in the body, deduplicated.
  std::set<std::string> RelationNames() const;

  // Applies `subst` to head terms and body.
  ConjunctiveQuery Substitute(const Substitution& subst) const;

  // Returns a copy with every variable renamed to name+`suffix`. Used by
  // the reductions of Section 5 to keep variable namespaces disjoint.
  ConjunctiveQuery RenameVariables(const std::string& suffix) const;

  // Returns a copy with `literal` appended to the body. The paper writes
  // this P, R(x̄) (conjunction of P with an extra atom).
  ConjunctiveQuery WithExtraLiteral(const Literal& literal) const;

  // Returns a copy with the given body (same head).
  ConjunctiveQuery WithBody(std::vector<Literal> body) const;

  // Membership tests against the body.
  bool BodyContains(const Literal& literal) const;
  // True if the positive body contains `atom`.
  bool PositiveBodyContains(const Atom& atom) const;
  // True if the negative body contains `atom` (negated).
  bool NegativeBodyContains(const Atom& atom) const;

  // Renders the rule, e.g. `Q(x, y) :- R(x, z), not S(z).`
  // An empty body renders as `Q(x, y).`
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head_name_ == b.head_name_ && a.head_terms_ == b.head_terms_ &&
           a.body_ == b.body_;
  }
  friend bool operator!=(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return !(a == b);
  }

  std::size_t Hash() const;

 private:
  std::string head_name_;
  std::vector<Term> head_terms_;
  std::vector<Literal> body_;
};

struct ConjunctiveQueryHash {
  std::size_t operator()(const ConjunctiveQuery& q) const { return q.Hash(); }
};

// A union of conjunctive queries with negation (UCQ¬): Q1 ∨ ... ∨ Qk, all
// with the same head name and arity. The empty union is the paper's
// `false` query (vacuously executable, returns no tuples).
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts);
  // Lifts a single CQ¬ into a one-disjunct union.
  explicit UnionQuery(ConjunctiveQuery q);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::size_t size() const { return disjuncts_.size(); }
  bool IsFalseQuery() const { return disjuncts_.empty(); }

  // Head name/arity shared by all disjuncts. Must not be called on the
  // empty union.
  const std::string& head_name() const;
  std::size_t head_arity() const;

  // Safety requires every disjunct safe (the shared-free-variables
  // condition is satisfied by construction: positional heads).
  bool IsSafe() const;

  // True if any disjunct has a negative literal.
  bool HasNegation() const;

  // True if any disjunct mentions null.
  bool ContainsNull() const;

  // Relation names used across all disjuncts.
  std::set<std::string> RelationNames() const;

  // Appends a disjunct (head name/arity checked against existing ones).
  void AddDisjunct(ConjunctiveQuery q);

  // Returns a copy without unsatisfiable disjuncts.
  UnionQuery DropUnsatisfiable() const;

  // Renders one rule per line.
  std::string ToString() const;

  friend bool operator==(const UnionQuery& a, const UnionQuery& b) {
    return a.disjuncts_ == b.disjuncts_;
  }
  friend bool operator!=(const UnionQuery& a, const UnionQuery& b) {
    return !(a == b);
  }

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

inline std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& q) {
  return os << q.ToString();
}
inline std::ostream& operator<<(std::ostream& os, const UnionQuery& q) {
  return os << q.ToString();
}

}  // namespace ucqn

#endif  // UCQN_AST_QUERY_H_
