#ifndef UCQN_AST_PARSER_H_
#define UCQN_AST_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/query.h"

namespace ucqn {

// Datalog-style concrete syntax for CQ¬ / UCQ¬ queries.
//
//   Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
//
// * Identifiers starting with a lowercase letter or '_' are variables.
// * Identifiers starting with an uppercase letter, numbers, and quoted
//   strings ("...") are constants; relation names may be any identifier.
// * `null` is the distinguished null term.
// * `not` (or `!`) negates the following atom.
// * A rule with no body is written `Q(x).` (the paper's `true`); the empty
//   union prints as `false.` but cannot be written as a rule.
// * `#` and `%` start comments that run to end of line.
//
// A union query is a sequence of rules with the same head name and arity.
// A program is a sequence of rules with possibly different heads; rules
// with the same head name are grouped, in order of first appearance.

// Parses a single rule. Returns nullopt and sets `*error` on failure.
std::optional<ConjunctiveQuery> ParseRule(std::string_view text,
                                          std::string* error);

// Parses one or more rules sharing a head into a union query.
std::optional<UnionQuery> ParseUnionQuery(std::string_view text,
                                          std::string* error);

// Parses a sequence of rules with arbitrary heads, grouping rules by head
// name in order of first appearance.
std::optional<std::vector<UnionQuery>> ParseProgram(std::string_view text,
                                                    std::string* error);

// CHECK-failing variants for tests, examples, and benchmarks where the
// query text is a literal known to be valid.
ConjunctiveQuery MustParseRule(std::string_view text);
UnionQuery MustParseUnionQuery(std::string_view text);
std::vector<UnionQuery> MustParseProgram(std::string_view text);

// Parses a single term (variable, constant, or null), mostly for tests.
std::optional<Term> ParseTerm(std::string_view text, std::string* error);

}  // namespace ucqn

#endif  // UCQN_AST_PARSER_H_
