#include "ast/term.h"

#include <cctype>

#include "util/logging.h"

namespace ucqn {

Term Term::Variable(std::string name) {
  UCQN_CHECK_MSG(!name.empty(), "variable name must be non-empty");
  return Term(TermKind::kVariable, std::move(name));
}

Term Term::Constant(std::string name) {
  return Term(TermKind::kConstant, std::move(name));
}

Term Term::Null() { return Term(TermKind::kNull, "null"); }

namespace {

// A constant prints without quotes when the parser would read it back as a
// constant: it must not look like a variable (lowercase-led identifier) or
// like the keyword `null`.
bool ConstantNeedsQuotes(const std::string& name) {
  if (name.empty()) return true;
  if (name == "null") return true;
  unsigned char first = static_cast<unsigned char>(name[0]);
  if (std::islower(first)) return true;
  for (char c : name) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_') return true;
  }
  return false;
}

}  // namespace

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kVariable:
      return name_;
    case TermKind::kNull:
      return "null";
    case TermKind::kConstant:
      if (ConstantNeedsQuotes(name_)) return "\"" + name_ + "\"";
      return name_;
  }
  return name_;  // unreachable
}

}  // namespace ucqn
