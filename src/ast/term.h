#ifndef UCQN_AST_TERM_H_
#define UCQN_AST_TERM_H_

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "util/hash.h"

namespace ucqn {

// The kind of a term appearing in an atom or in a query head.
enum class TermKind {
  kVariable,  // e.g. x, isbn — lowercase identifiers in the paper's syntax
  kConstant,  // e.g. "Knuth", 42 — uninterpreted constants
  kNull,      // the distinguished null used by overestimate plans (Ex. 7)
};

// A term: a variable, a constant, or the distinguished `null`.
//
// Terms are immutable value types. `null` compares equal only to itself and
// is treated by the containment and evaluation machinery as a constant with
// a reserved name; the feasibility algorithms additionally give it the
// special "unknown value" reading from Section 4.2 of the paper.
class Term {
 public:
  // Constructs a variable term named `name`.
  static Term Variable(std::string name);
  // Constructs a constant term with value `name`.
  static Term Constant(std::string name);
  // Returns the distinguished null term.
  static Term Null();

  Term() : kind_(TermKind::kConstant) {}

  TermKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  bool IsVariable() const { return kind_ == TermKind::kVariable; }
  bool IsConstant() const { return kind_ == TermKind::kConstant; }
  bool IsNull() const { return kind_ == TermKind::kNull; }
  // True for constants and null, i.e. anything that is not a variable.
  bool IsGround() const { return kind_ != TermKind::kVariable; }

  // Renders the term the way the parser reads it: variables verbatim,
  // constants quoted if they could be mistaken for a variable, and `null`.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.name_ == b.name_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.name_ < b.name_;
  }

  std::size_t Hash() const {
    std::size_t seed = static_cast<std::size_t>(kind_);
    HashCombine(&seed, name_);
    return seed;
  }

 private:
  Term(TermKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  TermKind kind_;
  std::string name_;
};

struct TermHash {
  std::size_t operator()(const Term& t) const { return t.Hash(); }
};

// Streams the parser-readable form; also picked up by gtest for readable
// assertion failures.
inline std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

}  // namespace ucqn

#endif  // UCQN_AST_TERM_H_
