#ifndef UCQN_AST_ATOM_H_
#define UCQN_AST_ATOM_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "ast/term.h"

namespace ucqn {

// An atom R(t1, ..., tk): a relation name applied to a list of terms.
class Atom {
 public:
  Atom() = default;
  Atom(std::string relation, std::vector<Term> args)
      : relation_(std::move(relation)), args_(std::move(args)) {}

  const std::string& relation() const { return relation_; }
  const std::vector<Term>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }

  // Variables occurring in the atom, in order of first occurrence.
  std::vector<Term> Variables() const;

  // True if no argument is a variable.
  bool IsGround() const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation_ == b.relation_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.relation_ != b.relation_) return a.relation_ < b.relation_;
    return a.args_ < b.args_;
  }

  std::size_t Hash() const;

 private:
  std::string relation_;
  std::vector<Term> args_;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const { return a.Hash(); }
};

// A literal: an atom or its negation. The paper writes R̂(x̄) for either.
class Literal {
 public:
  Literal() : positive_(true) {}
  Literal(Atom atom, bool positive)
      : atom_(std::move(atom)), positive_(positive) {}

  // Convenience factories matching the paper's notation.
  static Literal Positive(Atom atom) { return Literal(std::move(atom), true); }
  static Literal Negative(Atom atom) { return Literal(std::move(atom), false); }

  const Atom& atom() const { return atom_; }
  bool positive() const { return positive_; }
  bool negative() const { return !positive_; }

  const std::string& relation() const { return atom_.relation(); }
  const std::vector<Term>& args() const { return atom_.args(); }

  // Variables occurring in the literal, in order of first occurrence.
  std::vector<Term> Variables() const { return atom_.Variables(); }

  // Returns the literal with the opposite sign.
  Literal Negated() const { return Literal(atom_, !positive_); }

  std::string ToString() const;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.positive_ == b.positive_ && a.atom_ == b.atom_;
  }
  friend bool operator!=(const Literal& a, const Literal& b) {
    return !(a == b);
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.positive_ != b.positive_) return a.positive_ < b.positive_;
    return a.atom_ < b.atom_;
  }

  std::size_t Hash() const;

 private:
  Atom atom_;
  bool positive_;
};

struct LiteralHash {
  std::size_t operator()(const Literal& l) const { return l.Hash(); }
};

inline std::ostream& operator<<(std::ostream& os, const Atom& a) {
  return os << a.ToString();
}
inline std::ostream& operator<<(std::ostream& os, const Literal& l) {
  return os << l.ToString();
}

}  // namespace ucqn

#endif  // UCQN_AST_ATOM_H_
