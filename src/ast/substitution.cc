#include "ast/substitution.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

bool Substitution::Bind(const Term& var, const Term& value) {
  UCQN_CHECK_MSG(var.IsVariable(), "can only bind variables");
  auto [it, inserted] = map_.emplace(var.name(), value);
  if (inserted) return true;
  return it->second == value;
}

std::optional<Term> Substitution::Lookup(const Term& var) const {
  if (!var.IsVariable()) return std::nullopt;
  auto it = map_.find(var.name());
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool Substitution::IsBound(const Term& var) const {
  return var.IsVariable() && map_.count(var.name()) > 0;
}

Term Substitution::Apply(const Term& t) const {
  if (!t.IsVariable()) return t;
  auto it = map_.find(t.name());
  if (it == map_.end()) return t;
  return it->second;
}

std::vector<Term> Substitution::Apply(const std::vector<Term>& ts) const {
  std::vector<Term> out;
  out.reserve(ts.size());
  for (const Term& t : ts) out.push_back(Apply(t));
  return out;
}

Atom Substitution::Apply(const Atom& a) const {
  return Atom(a.relation(), Apply(a.args()));
}

Literal Substitution::Apply(const Literal& l) const {
  return Literal(Apply(l.atom()), l.positive());
}

std::string Substitution::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(map_.size());
  for (const auto& [name, term] : map_) {
    parts.push_back(name + "/" + term.ToString());
  }
  std::sort(parts.begin(), parts.end());
  return "{" + StrJoin(parts, ", ") + "}";
}

bool MatchArgs(const std::vector<Term>& pattern,
               const std::vector<Term>& target, Substitution* subst) {
  if (pattern.size() != target.size()) return false;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const Term& p = pattern[i];
    const Term& t = target[i];
    if (p.IsVariable()) {
      if (!subst->Bind(p, t)) return false;
    } else {
      // Ground pattern terms must match the target exactly.
      if (p != t) return false;
    }
  }
  return true;
}

}  // namespace ucqn
