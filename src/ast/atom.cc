#include "ast/atom.h"

#include <algorithm>

#include "util/hash.h"
#include "util/strings.h"

namespace ucqn {

std::vector<Term> Atom::Variables() const {
  std::vector<Term> vars;
  for (const Term& t : args_) {
    if (t.IsVariable() && std::find(vars.begin(), vars.end(), t) == vars.end()) {
      vars.push_back(t);
    }
  }
  return vars;
}

bool Atom::IsGround() const {
  for (const Term& t : args_) {
    if (t.IsVariable()) return false;
  }
  return true;
}

std::string Atom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const Term& t : args_) parts.push_back(t.ToString());
  return relation_ + "(" + StrJoin(parts, ", ") + ")";
}

std::size_t Atom::Hash() const {
  std::size_t seed = 0;
  HashCombine(&seed, relation_);
  for (const Term& t : args_) HashCombine(&seed, t.Hash());
  return seed;
}

std::string Literal::ToString() const {
  if (positive_) return atom_.ToString();
  return "not " + atom_.ToString();
}

std::size_t Literal::Hash() const {
  std::size_t seed = atom_.Hash();
  HashCombine(&seed, positive_);
  return seed;
}

}  // namespace ucqn
