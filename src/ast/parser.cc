#include "ast/parser.h"

#include <cctype>
#include <map>

#include "util/logging.h"

namespace ucqn {

namespace {

enum class TokenKind {
  kIdentifier,  // bare identifier or number
  kString,      // quoted string (quotes stripped)
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,  // :-
  kBang,     // !
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

// A hand-rolled tokenizer + recursive-descent parser. Queries are tiny, so
// clarity of error messages matters more than speed here.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) { Advance(); }

  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }
  bool AtEnd() const { return current_.kind == TokenKind::kEnd; }

  std::optional<ConjunctiveQuery> ParseOneRule() {
    // head
    if (current_.kind != TokenKind::kIdentifier) {
      return Fail("expected rule head identifier");
    }
    std::string head_name = current_.text;
    Advance();
    std::vector<Term> head_terms;
    if (!ParseTermList(&head_terms)) return std::nullopt;

    std::vector<Literal> body;
    if (current_.kind == TokenKind::kDot) {
      Advance();
      return ConjunctiveQuery(head_name, std::move(head_terms),
                              std::move(body));
    }
    if (current_.kind != TokenKind::kImplies) {
      return Fail("expected ':-' or '.' after rule head");
    }
    Advance();
    while (true) {
      std::optional<Literal> lit = ParseLiteral();
      if (!lit.has_value()) return std::nullopt;
      body.push_back(std::move(*lit));
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      if (current_.kind == TokenKind::kDot) {
        Advance();
        break;
      }
      return Fail("expected ',' or '.' in rule body");
    }
    return ConjunctiveQuery(head_name, std::move(head_terms), std::move(body));
  }

  std::optional<Term> ParseOneTerm() {
    std::optional<Term> t = ParseTermToken();
    if (!t.has_value()) return std::nullopt;
    if (!AtEnd()) return FailTerm("trailing input after term");
    return t;
  }

 private:
  std::optional<ConjunctiveQuery> Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(current_.offset);
    }
    return std::nullopt;
  }
  std::optional<Term> FailTerm(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(current_.offset);
    }
    return std::nullopt;
  }

  std::optional<Literal> ParseLiteral() {
    bool positive = true;
    if (current_.kind == TokenKind::kBang) {
      positive = false;
      Advance();
    } else if (current_.kind == TokenKind::kIdentifier &&
               current_.text == "not") {
      positive = false;
      Advance();
    }
    if (current_.kind != TokenKind::kIdentifier) {
      Fail("expected relation name");
      return std::nullopt;
    }
    std::string relation = current_.text;
    Advance();
    std::vector<Term> args;
    if (!ParseTermList(&args)) return std::nullopt;
    return Literal(Atom(std::move(relation), std::move(args)), positive);
  }

  bool ParseTermList(std::vector<Term>* out) {
    if (current_.kind != TokenKind::kLParen) {
      Fail("expected '('");
      return false;
    }
    Advance();
    if (current_.kind == TokenKind::kRParen) {
      Advance();
      return true;  // zero-ary atom
    }
    while (true) {
      std::optional<Term> t = ParseTermToken();
      if (!t.has_value()) return false;
      out->push_back(std::move(*t));
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      if (current_.kind == TokenKind::kRParen) {
        Advance();
        return true;
      }
      Fail("expected ',' or ')' in term list");
      return false;
    }
  }

  std::optional<Term> ParseTermToken() {
    if (current_.kind == TokenKind::kString) {
      Term t = Term::Constant(current_.text);
      Advance();
      return t;
    }
    if (current_.kind != TokenKind::kIdentifier) {
      return FailTerm("expected term");
    }
    std::string text = current_.text;
    Advance();
    if (text == "null") return Term::Null();
    unsigned char first = static_cast<unsigned char>(text[0]);
    if (std::islower(first) || text[0] == '_') {
      return Term::Variable(text);
    }
    return Term::Constant(text);  // uppercase identifier or number
  }

  void Advance() {
    SkipWhitespaceAndComments();
    current_.offset = pos_;
    if (pos_ >= text_.size()) {
      current_ = {TokenKind::kEnd, "", pos_};
      return;
    }
    char c = text_[pos_];
    if (c == '(') {
      current_ = {TokenKind::kLParen, "(", pos_++};
      return;
    }
    if (c == ')') {
      current_ = {TokenKind::kRParen, ")", pos_++};
      return;
    }
    if (c == ',') {
      current_ = {TokenKind::kComma, ",", pos_++};
      return;
    }
    if (c == '.') {
      current_ = {TokenKind::kDot, ".", pos_++};
      return;
    }
    if (c == '!') {
      current_ = {TokenKind::kBang, "!", pos_++};
      return;
    }
    if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
      current_ = {TokenKind::kImplies, ":-", pos_};
      pos_ += 2;
      return;
    }
    if (c == '"') {
      std::size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) {
        error_ = "unterminated string at offset " + std::to_string(start - 1);
        current_ = {TokenKind::kEnd, "", pos_};
        return;
      }
      current_ = {TokenKind::kString,
                  std::string(text_.substr(start, pos_ - start)), start - 1};
      ++pos_;  // closing quote
      return;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {TokenKind::kIdentifier,
                  std::string(text_.substr(start, pos_ - start)), start};
      return;
    }
    error_ = std::string("unexpected character '") + c + "' at offset " +
             std::to_string(pos_);
    current_ = {TokenKind::kEnd, "", pos_};
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' || c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
  std::string error_;
};

}  // namespace

std::optional<ConjunctiveQuery> ParseRule(std::string_view text,
                                          std::string* error) {
  Parser parser(text);
  std::optional<ConjunctiveQuery> rule = parser.ParseOneRule();
  if (!rule.has_value() || parser.failed()) {
    if (error != nullptr) *error = parser.error();
    return std::nullopt;
  }
  if (!parser.AtEnd()) {
    if (error != nullptr) *error = "trailing input after rule";
    return std::nullopt;
  }
  return rule;
}

std::optional<std::vector<UnionQuery>> ParseProgram(std::string_view text,
                                                    std::string* error) {
  Parser parser(text);
  std::vector<std::string> head_order;
  std::map<std::string, std::vector<ConjunctiveQuery>> grouped;
  while (!parser.AtEnd()) {
    std::optional<ConjunctiveQuery> rule = parser.ParseOneRule();
    if (!rule.has_value() || parser.failed()) {
      if (error != nullptr) *error = parser.error();
      return std::nullopt;
    }
    auto it = grouped.find(rule->head_name());
    if (it == grouped.end()) {
      head_order.push_back(rule->head_name());
      grouped[rule->head_name()].push_back(std::move(*rule));
    } else {
      if (it->second[0].head_arity() != rule->head_arity()) {
        if (error != nullptr) {
          *error = "head " + rule->head_name() +
                   " used with inconsistent arities";
        }
        return std::nullopt;
      }
      it->second.push_back(std::move(*rule));
    }
  }
  std::vector<UnionQuery> out;
  out.reserve(head_order.size());
  for (const std::string& name : head_order) {
    out.push_back(UnionQuery(std::move(grouped[name])));
  }
  return out;
}

std::optional<UnionQuery> ParseUnionQuery(std::string_view text,
                                          std::string* error) {
  std::optional<std::vector<UnionQuery>> program = ParseProgram(text, error);
  if (!program.has_value()) return std::nullopt;
  if (program->size() != 1) {
    if (error != nullptr) {
      *error = "expected rules with a single head, got " +
               std::to_string(program->size()) + " heads";
    }
    return std::nullopt;
  }
  return std::move(program->front());
}

std::optional<Term> ParseTerm(std::string_view text, std::string* error) {
  Parser parser(text);
  std::optional<Term> t = parser.ParseOneTerm();
  if (!t.has_value() && error != nullptr) *error = parser.error();
  return t;
}

ConjunctiveQuery MustParseRule(std::string_view text) {
  std::string error;
  std::optional<ConjunctiveQuery> rule = ParseRule(text, &error);
  UCQN_CHECK_MSG(rule.has_value(), error.c_str());
  return std::move(*rule);
}

UnionQuery MustParseUnionQuery(std::string_view text) {
  std::string error;
  std::optional<UnionQuery> q = ParseUnionQuery(text, &error);
  UCQN_CHECK_MSG(q.has_value(), error.c_str());
  return std::move(*q);
}

std::vector<UnionQuery> MustParseProgram(std::string_view text) {
  std::string error;
  std::optional<std::vector<UnionQuery>> p = ParseProgram(text, &error);
  UCQN_CHECK_MSG(p.has_value(), error.c_str());
  return std::move(*p);
}

}  // namespace ucqn
