#ifndef UCQN_UTIL_HASH_H_
#define UCQN_UTIL_HASH_H_

#include <cstddef>
#include <functional>

namespace ucqn {

// Combines `seed` with the hash of `value`, boost-style. Used to build
// hashes for composite AST values (terms, atoms, queries) so they can key
// unordered containers and memoization tables.
template <typename T>
void HashCombine(std::size_t* seed, const T& value) {
  std::hash<T> hasher;
  *seed ^= hasher(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace ucqn

#endif  // UCQN_UTIL_HASH_H_
