#ifndef UCQN_UTIL_LOGGING_H_
#define UCQN_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Lightweight invariant-checking macros.
//
// The library does not use exceptions; internal invariant violations are
// programming errors and abort with a message pointing at the failing
// expression. User-facing fallible operations (parsing, executing a plan
// against sources) report failures through their return types instead.

#define UCQN_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UCQN_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define UCQN_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UCQN_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // UCQN_UTIL_LOGGING_H_
