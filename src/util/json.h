#ifndef UCQN_UTIL_JSON_H_
#define UCQN_UTIL_JSON_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ucqn {

// A minimal JSON document model for the places where the repo's ad-hoc
// emitters meet external input: the daemon's line-delimited protocol
// (server/protocol.h) and the cache/stats snapshot files
// (server/snapshot.h). Unlike the special-purpose reader in
// cost/stats_catalog.cc this one handles the full value grammar —
// strings with escapes (cache keys embed arbitrary constant text),
// arrays (tuples), booleans and null (the distinguished null term).
//
// It is still deliberately small: no streaming, no number fidelity
// beyond double, objects keep insertion order and are scanned linearly.
// Inputs are protocol lines and snapshot files, both bounded.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed reads; the value must have the matching kind.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Convenience readers over Find: the default when the key is absent or
  // has the wrong kind.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  // Builders.
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  // Serializes compactly (no added whitespace beyond ", " / ": "),
  // matching the style of the repo's hand-rolled emitters. Numbers that
  // hold integral values print without a decimal point.
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one JSON document. Trailing non-whitespace is an error. Returns
// nullopt and sets `*error` (with an offset) on malformed input.
// Supported escapes: \" \\ \/ \b \f \n \r \t and \uXXXX (encoded to
// UTF-8; unpaired surrogates are rejected).
std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error = nullptr);

// Quotes and escapes `s` as a JSON string literal (including the
// surrounding double quotes). Control characters become \u00XX.
std::string JsonQuote(const std::string& s);

}  // namespace ucqn

#endif  // UCQN_UTIL_JSON_H_
