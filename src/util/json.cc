#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ucqn {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

std::string FormatJsonNumber(double n) {
  // Integral values (counters, TTLs, ids) print without a decimal point
  // so round-trips stay byte-stable with the repo's hand-rolled emitters.
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    return buf;
  }
  if (!std::isfinite(n)) return "0";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ < text_.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool AppendCodepoint(unsigned long cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return true;
  }

  bool ParseHex4(unsigned long* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned long value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned long>(c - 'A' + 10);
      else return Fail("bad \\u escape digit");
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned long cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned long low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendCodepoint(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    const double value = std::atof(text_.substr(start, pos_ - start).c_str());
    if (!std::isfinite(value)) return Fail("number out of range");
    *out = JsonValue::Number(value);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      *out = JsonValue::Object();
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->Set(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      *out = JsonValue::Array();
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->Append(std::move(value));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValue::String(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!Literal("true", 4)) return false;
      *out = JsonValue::Bool(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false", 5)) return false;
      *out = JsonValue::Bool(false);
      return true;
    }
    if (c == 'n') {
      if (!Literal("null", 4)) return false;
      *out = JsonValue::Null();
      return true;
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return FormatJsonNumber(number_);
    case Kind::kString:
      return JsonQuote(string_);
    case Kind::kArray: {
      std::string out = "[";
      bool first = true;
      for (const JsonValue& v : items_) {
        if (!first) out += ", ";
        first = false;
        out += v.Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ", ";
        first = false;
        out += JsonQuote(k) + ": " + v.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error) {
  Parser parser(text);
  JsonValue value;
  if (!parser.Parse(&value)) {
    if (error != nullptr) *error = parser.error();
    return std::nullopt;
  }
  return value;
}

}  // namespace ucqn
