#ifndef UCQN_UTIL_STRINGS_H_
#define UCQN_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ucqn {

// Joins the elements of `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
// dropping empty pieces. Handy for parsing schema declarations.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` consists only of the characters in `alphabet`.
bool ConsistsOf(std::string_view text, std::string_view alphabet);

}  // namespace ucqn

#endif  // UCQN_UTIL_STRINGS_H_
