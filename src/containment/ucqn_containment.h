#ifndef UCQN_CONTAINMENT_UCQN_CONTAINMENT_H_
#define UCQN_CONTAINMENT_UCQN_CONTAINMENT_H_

#include <cstdint>

#include "ast/query.h"
#include "containment/homomorphism.h"

namespace ucqn {

// Counters for the Theorem 12/13 recursion. The benches use these to
// exhibit the Π₂ᴾ behaviour (nodes explode as negated literals are added).
struct ContainmentStats {
  // Recursion-tree nodes expanded (each corresponds to one query
  // "P, N₁(x̄₁), ..., Nₘ(x̄ₘ) ⊑ Q" check).
  std::uint64_t nodes_expanded = 0;
  // Memoization hits on the adjoined-atom-set cache.
  std::uint64_t cache_hits = 0;
  // Deepest recursion reached (number of adjoined atoms).
  std::uint64_t max_depth = 0;
  // True if the node budget was exhausted; the answer is then the
  // conservative `false` ("not known to be contained").
  bool aborted = false;
  // Work done by the underlying containment-mapping searches.
  HomomorphismStats homomorphism;

  void Add(const ContainmentStats& other) {
    nodes_expanded += other.nodes_expanded;
    cache_hits += other.cache_hits;
    if (other.max_depth > max_depth) max_depth = other.max_depth;
    aborted = aborted || other.aborted;
    homomorphism.Add(other.homomorphism);
  }
};

struct ContainmentOptions {
  // Safety valve for the worst-case Π₂ᴾ search; 0 means unlimited. When the
  // budget is exhausted, Contained() returns false and sets stats.aborted.
  std::uint64_t max_nodes = 0;
};

// CONT(CQ¬ ⊑ UCQ¬) via Theorem 13 [WL03]: P ⊑ Q iff P is unsatisfiable, or
// some disjunct Qᵢ admits a containment mapping σ : vars(Qᵢ) → terms(P)
// witnessing P⁺ ⊑ Qᵢ⁺ such that for every negative literal ¬R(ȳ) of Qᵢ,
// R(σȳ) is not in P⁺ and (P, R(σȳ)) ⊑ Q holds recursively.
//
// With negation-free queries this degenerates to the classic homomorphism
// test, so the same entry point is optimal for CQ and UCQ as well — the
// paper's "single uniform algorithm".
//
// The paper's standing assumption is that queries are safe. Disjuncts of Q
// that are unsafe (some variable occurs only under negation — e.g. the
// paper's own Example 3) participate only through witnesses σ that are
// total on their negative literals' variables; other candidate mappings
// are rejected. P need not be safe.
bool Contained(const ConjunctiveQuery& P, const UnionQuery& Q,
               ContainmentStats* stats = nullptr,
               const ContainmentOptions& options = {});

// CONT(UCQ¬): ∨ᵢPᵢ ⊑ Q iff every Pᵢ ⊑ Q.
bool Contained(const UnionQuery& P, const UnionQuery& Q,
               ContainmentStats* stats = nullptr,
               const ContainmentOptions& options = {});

// Convenience: single-CQ¬ right-hand side.
bool Contained(const ConjunctiveQuery& P, const ConjunctiveQuery& Q,
               ContainmentStats* stats = nullptr,
               const ContainmentOptions& options = {});

// P ≡ Q: containment both ways.
bool Equivalent(const UnionQuery& P, const UnionQuery& Q,
                ContainmentStats* stats = nullptr,
                const ContainmentOptions& options = {});

// A witness for P ⊑ Q in the shape of the Theorem 13 tree: which disjunct
// Qᵢ was matched, by which containment mapping σ, with one child witness
// per negative literal of Qᵢ (certifying (P, R(σȳ)) ⊑ Q). A node may
// instead be justified by unsatisfiability of the (extended) left-hand
// query. Useful for explaining *why* a query is feasible: FEASIBLE's
// containment step succeeds exactly when each overestimate disjunct has
// such a tree into the original query.
struct ContainmentWitness {
  // True when the node holds because the extended P is unsatisfiable;
  // disjunct_index/sigma/children are then meaningless.
  bool by_unsatisfiability = false;
  // Index of the matched disjunct of Q.
  std::size_t disjunct_index = 0;
  // The containment mapping σ : vars(Q_disjunct) → terms(P).
  Substitution sigma;
  // One entry per negative literal of the matched disjunct, in order.
  std::vector<ContainmentWitness> children;

  // Multi-line rendering, e.g.
  //   disjunct 0 via {x/x}
  //     adjoin S(x): unsatisfiable
  std::string ToString(int indent = 0) const;
};

// Like Contained(P ∈ CQ¬, Q), but returns the full witness tree on
// success and nullopt on failure (or when the node budget aborts the
// search — check stats->aborted to distinguish).
std::optional<ContainmentWitness> ContainedWithWitness(
    const ConjunctiveQuery& P, const UnionQuery& Q,
    ContainmentStats* stats = nullptr, const ContainmentOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_CONTAINMENT_UCQN_CONTAINMENT_H_
