#include "containment/cq_containment.h"

#include "util/logging.h"

namespace ucqn {

bool CqContained(const ConjunctiveQuery& P, const ConjunctiveQuery& Q,
                 HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!P.HasNegation() && !Q.HasNegation(),
                 "CqContained requires negation-free queries");
  return HasContainmentMapping(Q, P, stats);
}

bool UcqContained(const UnionQuery& P, const UnionQuery& Q,
                  HomomorphismStats* stats) {
  for (const ConjunctiveQuery& p : P.disjuncts()) {
    bool contained_somewhere = false;
    for (const ConjunctiveQuery& q : Q.disjuncts()) {
      if (CqContained(p, q, stats)) {
        contained_somewhere = true;
        break;
      }
    }
    if (!contained_somewhere) return false;
  }
  return true;
}

bool UcqEquivalent(const UnionQuery& P, const UnionQuery& Q,
                   HomomorphismStats* stats) {
  return UcqContained(P, Q, stats) && UcqContained(Q, P, stats);
}

}  // namespace ucqn
