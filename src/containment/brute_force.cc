#include "containment/brute_force.h"

#include <set>
#include <vector>

#include "eval/database.h"
#include "eval/oracle.h"

namespace ucqn {

namespace {

// Freezes a variable into a reserved constant ("#x" cannot be written in
// the surface syntax, so it cannot collide with query constants).
Term Freeze(const Term& t) {
  return t.IsVariable() ? Term::Constant("#" + t.name()) : t;
}

}  // namespace

std::optional<bool> BruteForceContained(const ConjunctiveQuery& P,
                                        const UnionQuery& Q,
                                        const Catalog& catalog,
                                        const BruteForceOptions& options) {
  if (P.IsUnsatisfiable()) return true;

  // The instance domain: P's frozen variables plus all constants in play.
  std::vector<Term> domain;
  for (const Term& v : P.AllVariables()) domain.push_back(Freeze(v));
  for (const Term& c : P.Constants()) domain.push_back(c);
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    for (const Term& c : d.Constants()) {
      if (std::find(domain.begin(), domain.end(), c) == domain.end()) {
        domain.push_back(c);
      }
    }
  }
  if (domain.empty()) return std::nullopt;

  // Universe of candidate atoms over the domain.
  std::set<std::string> relations = P.RelationNames();
  std::set<std::string> q_relations = Q.RelationNames();
  relations.insert(q_relations.begin(), q_relations.end());
  std::vector<Atom> universe;
  for (const std::string& name : relations) {
    const RelationSchema* schema = catalog.Find(name);
    if (schema == nullptr) return std::nullopt;
    std::vector<Tuple> tuples(1);
    for (std::size_t j = 0; j < schema->arity(); ++j) {
      std::vector<Tuple> next;
      for (const Tuple& t : tuples) {
        for (const Term& d : domain) {
          Tuple extended = t;
          extended.push_back(d);
          next.push_back(std::move(extended));
        }
      }
      tuples = std::move(next);
    }
    for (const Tuple& t : tuples) universe.push_back(Atom(name, t));
  }

  std::set<Atom> required, forbidden;
  for (const Literal& l : P.body()) {
    std::vector<Term> args;
    args.reserve(l.args().size());
    for (const Term& t : l.args()) args.push_back(Freeze(t));
    (l.positive() ? required : forbidden)
        .insert(Atom(l.relation(), std::move(args)));
  }

  std::vector<Atom> free_atoms;
  for (const Atom& a : universe) {
    if (required.count(a) == 0 && forbidden.count(a) == 0) {
      free_atoms.push_back(a);
    }
  }
  if (free_atoms.size() > options.max_free_atoms) return std::nullopt;

  Tuple frozen_head;
  frozen_head.reserve(P.head_terms().size());
  for (const Term& t : P.head_terms()) frozen_head.push_back(Freeze(t));

  for (std::uint64_t mask = 0; mask < (1ull << free_atoms.size()); ++mask) {
    Database db;
    for (const Atom& a : required) db.Insert(a.relation(), a.args());
    for (std::size_t j = 0; j < free_atoms.size(); ++j) {
      if (mask & (1ull << j)) {
        db.Insert(free_atoms[j].relation(), free_atoms[j].args());
      }
    }
    if (OracleEvaluate(Q, db).count(frozen_head) == 0) {
      return false;  // counterexample completion
    }
  }
  return true;
}

}  // namespace ucqn
