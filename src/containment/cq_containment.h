#ifndef UCQN_CONTAINMENT_CQ_CONTAINMENT_H_
#define UCQN_CONTAINMENT_CQ_CONTAINMENT_H_

#include "ast/query.h"
#include "containment/homomorphism.h"

namespace ucqn {

// CONT(CQ), Proposition 6 (Chandra–Merlin): P ⊑ Q iff there is a
// containment mapping from Q into P. Both queries must be negation-free
// (CHECK-enforced); use Contained() from ucqn_containment.h for CQ¬/UCQ¬.
bool CqContained(const ConjunctiveQuery& P, const ConjunctiveQuery& Q,
                 HomomorphismStats* stats = nullptr);

// CONT(UCQ), Proposition 6 (Sagiv–Yannakakis): ∨ᵢPᵢ ⊑ ∨ⱼQⱼ iff every Pᵢ is
// contained in some single Qⱼ. Negation-free only.
bool UcqContained(const UnionQuery& P, const UnionQuery& Q,
                  HomomorphismStats* stats = nullptr);

// P ≡ Q for negation-free unions.
bool UcqEquivalent(const UnionQuery& P, const UnionQuery& Q,
                   HomomorphismStats* stats = nullptr);

}  // namespace ucqn

#endif  // UCQN_CONTAINMENT_CQ_CONTAINMENT_H_
