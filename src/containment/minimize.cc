#include "containment/minimize.h"

#include <vector>

#include "containment/cq_containment.h"
#include "containment/ucqn_containment.h"
#include "util/logging.h"

namespace ucqn {

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q,
                            HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!q.HasNegation(), "MinimizeCq requires a negation-free CQ");
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Literal>& body = current.body();
    for (std::size_t i = 0; i < body.size(); ++i) {
      std::vector<Literal> smaller_body;
      smaller_body.reserve(body.size() - 1);
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j != i) smaller_body.push_back(body[j]);
      }
      ConjunctiveQuery smaller = current.WithBody(std::move(smaller_body));
      // current ⊑ smaller always holds (identity); smaller ⊑ current makes
      // the removal equivalence-preserving.
      if (CqContained(smaller, current, stats)) {
        current = std::move(smaller);
        changed = true;
        break;
      }
    }
  }
  return current;
}

UnionQuery MinimizeUcq(const UnionQuery& q, HomomorphismStats* stats) {
  std::vector<ConjunctiveQuery> cores;
  cores.reserve(q.size());
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    cores.push_back(MinimizeCq(disjunct, stats));
  }
  // Drop any disjunct contained in another kept disjunct. Processing in
  // order with "contained in some *other* survivor or earlier duplicate"
  // yields a minimal union.
  std::vector<bool> dropped(cores.size(), false);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = 0; j < cores.size(); ++j) {
      if (i == j || dropped[j]) continue;
      // Break ties (mutual containment) by keeping the earlier disjunct.
      if (CqContained(cores[i], cores[j], stats)) {
        if (CqContained(cores[j], cores[i], stats) && j > i) continue;
        dropped[i] = true;
        break;
      }
    }
  }
  std::vector<ConjunctiveQuery> kept;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (!dropped[i]) kept.push_back(cores[i]);
  }
  return UnionQuery(std::move(kept));
}

ConjunctiveQuery MinimizeCqn(const ConjunctiveQuery& q,
                             ContainmentStats* stats) {
  if (q.IsUnsatisfiable()) return q;  // dropping could change the semantics
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Literal>& body = current.body();
    for (std::size_t i = 0; i < body.size(); ++i) {
      std::vector<Literal> smaller_body;
      smaller_body.reserve(body.size() - 1);
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j != i) smaller_body.push_back(body[j]);
      }
      ConjunctiveQuery smaller = current.WithBody(std::move(smaller_body));
      if (!smaller.IsSafe()) continue;
      // current ⊑ smaller holds semantically (a conjunct was dropped);
      // the removal preserves equivalence iff smaller ⊑ current.
      if (Contained(smaller, UnionQuery(current), stats)) {
        current = std::move(smaller);
        changed = true;
        break;
      }
    }
  }
  return current;
}

UnionQuery MinimizeUcqn(const UnionQuery& q, ContainmentStats* stats) {
  std::vector<ConjunctiveQuery> cores;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (disjunct.IsUnsatisfiable()) continue;  // contributes nothing
    cores.push_back(MinimizeCqn(disjunct, stats));
  }
  // Drop any disjunct contained in the union of the others (for UCQ¬ a
  // single-disjunct witness is not enough, so test against the union).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      std::vector<ConjunctiveQuery> rest;
      rest.reserve(cores.size() - 1);
      for (std::size_t j = 0; j < cores.size(); ++j) {
        if (j != i) rest.push_back(cores[j]);
      }
      if (Contained(cores[i], UnionQuery(rest), stats)) {
        cores.erase(cores.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
  }
  return UnionQuery(std::move(cores));
}

}  // namespace ucqn
