#include "containment/homomorphism.h"

#include <vector>

namespace ucqn {

namespace {

// Backtracking search over the positive atoms of Q, mapping each onto a
// same-relation positive atom of P under a growing substitution.
class MappingSearch {
 public:
  MappingSearch(const ConjunctiveQuery& Q, const ConjunctiveQuery& P,
                const std::function<bool(const Substitution&)>& visitor,
                HomomorphismStats* stats)
      : visitor_(visitor), stats_(stats) {
    for (const Literal& l : Q.body()) {
      if (l.positive()) query_atoms_.push_back(&l.atom());
    }
    for (const Literal& l : P.body()) {
      if (l.positive()) target_atoms_.push_back(&l.atom());
    }
    // Seed with the positional head constraint.
    seed_ok_ = MatchArgs(Q.head_terms(), P.head_terms(), &seed_);
  }

  bool Run() {
    if (!seed_ok_) return false;
    return Extend(0, seed_);
  }

 private:
  bool Extend(std::size_t index, const Substitution& subst) {
    if (index == query_atoms_.size()) {
      if (stats_ != nullptr) ++stats_->mappings_found;
      return visitor_(subst);
    }
    const Atom* qa = query_atoms_[index];
    for (const Atom* pa : target_atoms_) {
      if (pa->relation() != qa->relation() || pa->arity() != qa->arity()) {
        continue;
      }
      if (stats_ != nullptr) ++stats_->match_attempts;
      Substitution extended = subst;
      if (!MatchArgs(qa->args(), pa->args(), &extended)) continue;
      if (Extend(index + 1, extended)) return true;
    }
    return false;
  }

  std::vector<const Atom*> query_atoms_;
  std::vector<const Atom*> target_atoms_;
  Substitution seed_;
  bool seed_ok_ = true;
  const std::function<bool(const Substitution&)>& visitor_;
  HomomorphismStats* stats_;
};

}  // namespace

bool ForEachContainmentMapping(
    const ConjunctiveQuery& Q, const ConjunctiveQuery& P,
    const std::function<bool(const Substitution&)>& visitor,
    HomomorphismStats* stats) {
  if (Q.head_terms().size() != P.head_terms().size()) return false;
  MappingSearch search(Q, P, visitor, stats);
  return search.Run();
}

bool HasContainmentMapping(const ConjunctiveQuery& Q, const ConjunctiveQuery& P,
                           HomomorphismStats* stats) {
  return ForEachContainmentMapping(
      Q, P, [](const Substitution&) { return true; }, stats);
}

}  // namespace ucqn
