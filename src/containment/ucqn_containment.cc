#include "containment/ucqn_containment.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "util/logging.h"

namespace ucqn {

namespace {

// One top-level Contained(P, Q) check. The recursion of Theorem 13 only
// ever *adjoins* atoms to P, so a node is fully described by the set of
// adjoined atoms; results are memoized on that set.
class ContainmentChecker {
 public:
  ContainmentChecker(const ConjunctiveQuery& P, const UnionQuery& Q,
                     ContainmentStats* stats,
                     const ContainmentOptions& options)
      : base_(P), Q_(Q), stats_(stats), options_(options) {}

  bool Run() {
    std::set<Atom> adjoined;
    return Check(base_, adjoined, 0);
  }

 private:
  bool Check(const ConjunctiveQuery& P, const std::set<Atom>& adjoined,
             std::uint64_t depth) {
    if (stats_ != nullptr) {
      ++stats_->nodes_expanded;
      if (depth > stats_->max_depth) stats_->max_depth = depth;
    }
    if (options_.max_nodes != 0 && nodes_used_++ >= options_.max_nodes) {
      if (stats_ != nullptr) stats_->aborted = true;
      return false;
    }
    if (P.IsUnsatisfiable()) return true;

    const std::string key = CacheKey(adjoined);
    if (auto it = cache_.find(key); it != cache_.end()) {
      if (stats_ != nullptr) ++stats_->cache_hits;
      return it->second;
    }
    // Guard against cyclic re-entry: while a node is being evaluated it
    // cannot be re-entered (the adjoined set strictly grows, so this only
    // triggers if a caller misuses the class).
    bool result = false;
    for (const ConjunctiveQuery& Qi : Q_.disjuncts()) {
      if (Qi.head_terms().size() != P.head_terms().size()) continue;
      const std::vector<Literal> negatives = Qi.NegativeBody();
      HomomorphismStats* hstats =
          stats_ != nullptr ? &stats_->homomorphism : nullptr;
      bool found = ForEachContainmentMapping(
          Qi, P,
          [&](const Substitution& sigma) {
            return NegativesHold(P, adjoined, negatives, sigma, depth);
          },
          hstats);
      if (found) {
        result = true;
        break;
      }
    }
    cache_.emplace(key, result);
    return result;
  }

  // Theorem 12's side conditions for a candidate witness σ: every negative
  // literal ¬R(ȳ) of the disjunct must have R(σȳ) absent from P⁺, and the
  // extended query (P, R(σȳ)) must recursively be contained in Q.
  bool NegativesHold(const ConjunctiveQuery& P, const std::set<Atom>& adjoined,
                     const std::vector<Literal>& negatives,
                     const Substitution& sigma, std::uint64_t depth) {
    // First pass: σ is disqualified outright if it maps a negated atom onto
    // a positive atom of P (the mapped query would assert R and ¬R at once,
    // and the recursion would not terminate).
    std::vector<Atom> mapped;
    mapped.reserve(negatives.size());
    for (const Literal& neg : negatives) {
      Atom image = sigma.Apply(neg.atom());
      // For unsafe disjuncts (the paper assumes safety, but e.g. its own
      // Example 3 has variables occurring only under negation) σ may leave
      // a negative literal's variables unmapped; such a σ is not a valid
      // Theorem 12 witness and is skipped.
      if (!image.IsGround() && !AtomVariablesFrozen(P, image)) return false;
      if (P.PositiveBodyContains(image)) return false;
      mapped.push_back(std::move(image));
    }
    for (const Atom& image : mapped) {
      ConjunctiveQuery extended = P.WithExtraLiteral(Literal::Positive(image));
      std::set<Atom> extended_adjoined = adjoined;
      extended_adjoined.insert(image);
      if (!Check(extended, extended_adjoined, depth + 1)) return false;
    }
    return true;
  }

  // After σ (which is total on vars(Qi) for safe Qi), any variable left in
  // the image must be a frozen variable of P itself.
  static bool AtomVariablesFrozen(const ConjunctiveQuery& P,
                                  const Atom& atom) {
    std::vector<Term> p_vars = P.AllVariables();
    for (const Term& t : atom.args()) {
      if (t.IsVariable() &&
          std::find(p_vars.begin(), p_vars.end(), t) == p_vars.end()) {
        return false;
      }
    }
    return true;
  }

  static std::string CacheKey(const std::set<Atom>& adjoined) {
    std::string key;
    for (const Atom& a : adjoined) {
      key += a.ToString();
      key += ';';
    }
    return key;
  }

  const ConjunctiveQuery& base_;
  const UnionQuery& Q_;
  ContainmentStats* stats_;
  const ContainmentOptions& options_;
  std::uint64_t nodes_used_ = 0;
  std::unordered_map<std::string, bool> cache_;
};

// Witness-building sibling of ContainmentChecker. Kept separate so the
// boolean hot path (used by FEASIBLE and the benches) stays allocation-
// light; the witness variant memoizes whole subtrees instead of booleans.
class WitnessBuilder {
 public:
  WitnessBuilder(const ConjunctiveQuery& P, const UnionQuery& Q,
                 ContainmentStats* stats, const ContainmentOptions& options)
      : Q_(Q), stats_(stats), options_(options), base_(P) {}

  std::optional<ContainmentWitness> Run() {
    std::set<Atom> adjoined;
    return Check(base_, adjoined, 0);
  }

 private:
  std::optional<ContainmentWitness> Check(const ConjunctiveQuery& P,
                                          const std::set<Atom>& adjoined,
                                          std::uint64_t depth) {
    if (stats_ != nullptr) {
      ++stats_->nodes_expanded;
      if (depth > stats_->max_depth) stats_->max_depth = depth;
    }
    if (options_.max_nodes != 0 && nodes_used_++ >= options_.max_nodes) {
      if (stats_ != nullptr) stats_->aborted = true;
      return std::nullopt;
    }
    if (P.IsUnsatisfiable()) {
      ContainmentWitness leaf;
      leaf.by_unsatisfiability = true;
      return leaf;
    }
    std::string key;
    for (const Atom& a : adjoined) {
      key += a.ToString();
      key += ';';
    }
    if (auto it = cache_.find(key); it != cache_.end()) {
      if (stats_ != nullptr) ++stats_->cache_hits;
      return it->second;
    }
    std::optional<ContainmentWitness> result;
    for (std::size_t qi = 0; qi < Q_.disjuncts().size() && !result; ++qi) {
      const ConjunctiveQuery& disjunct = Q_.disjuncts()[qi];
      if (disjunct.head_terms().size() != P.head_terms().size()) continue;
      const std::vector<Literal> negatives = disjunct.NegativeBody();
      HomomorphismStats* hstats =
          stats_ != nullptr ? &stats_->homomorphism : nullptr;
      ForEachContainmentMapping(
          disjunct, P,
          [&](const Substitution& sigma) {
            ContainmentWitness node;
            node.disjunct_index = qi;
            node.sigma = sigma;
            for (const Literal& neg : negatives) {
              Atom image = sigma.Apply(neg.atom());
              if (!image.IsGround() && !AtomVariablesFrozenIn(P, image)) {
                return false;  // unsafe witness, try another σ
              }
              if (P.PositiveBodyContains(image)) return false;
              ConjunctiveQuery extended =
                  P.WithExtraLiteral(Literal::Positive(image));
              std::set<Atom> extended_adjoined = adjoined;
              extended_adjoined.insert(image);
              std::optional<ContainmentWitness> child =
                  Check(extended, extended_adjoined, depth + 1);
              if (!child.has_value()) return false;
              node.children.push_back(std::move(*child));
            }
            result = std::move(node);
            return true;  // stop the mapping enumeration
          },
          hstats);
    }
    cache_.emplace(std::move(key), result);
    return result;
  }

  static bool AtomVariablesFrozenIn(const ConjunctiveQuery& P,
                                    const Atom& atom) {
    std::vector<Term> p_vars = P.AllVariables();
    for (const Term& t : atom.args()) {
      if (t.IsVariable() &&
          std::find(p_vars.begin(), p_vars.end(), t) == p_vars.end()) {
        return false;
      }
    }
    return true;
  }

  const UnionQuery& Q_;
  ContainmentStats* stats_;
  const ContainmentOptions& options_;
  const ConjunctiveQuery& base_;
  std::uint64_t nodes_used_ = 0;
  std::unordered_map<std::string, std::optional<ContainmentWitness>> cache_;
};

}  // namespace

bool Contained(const ConjunctiveQuery& P, const UnionQuery& Q,
               ContainmentStats* stats, const ContainmentOptions& options) {
  ContainmentChecker checker(P, Q, stats, options);
  return checker.Run();
}

bool Contained(const UnionQuery& P, const UnionQuery& Q,
               ContainmentStats* stats, const ContainmentOptions& options) {
  for (const ConjunctiveQuery& p : P.disjuncts()) {
    if (!Contained(p, Q, stats, options)) return false;
  }
  return true;
}

bool Contained(const ConjunctiveQuery& P, const ConjunctiveQuery& Q,
               ContainmentStats* stats, const ContainmentOptions& options) {
  return Contained(P, UnionQuery(Q), stats, options);
}

bool Equivalent(const UnionQuery& P, const UnionQuery& Q,
                ContainmentStats* stats, const ContainmentOptions& options) {
  return Contained(P, Q, stats, options) && Contained(Q, P, stats, options);
}

std::optional<ContainmentWitness> ContainedWithWitness(
    const ConjunctiveQuery& P, const UnionQuery& Q, ContainmentStats* stats,
    const ContainmentOptions& options) {
  WitnessBuilder builder(P, Q, stats, options);
  return builder.Run();
}

std::string ContainmentWitness::ToString(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (by_unsatisfiability) return pad + "unsatisfiable";
  std::string out =
      pad + "disjunct " + std::to_string(disjunct_index) + " via " +
      sigma.ToString();
  for (const ContainmentWitness& child : children) {
    out += "\n" + child.ToString(indent + 1);
  }
  return out;
}

}  // namespace ucqn
