#ifndef UCQN_CONTAINMENT_MINIMIZE_H_
#define UCQN_CONTAINMENT_MINIMIZE_H_

#include "ast/query.h"
#include "containment/homomorphism.h"
#include "containment/ucqn_containment.h"

namespace ucqn {

// Computes the core of a negation-free conjunctive query: repeatedly drops
// a body literal as long as the smaller query is still equivalent to the
// original. Dropping literals can only enlarge the answer (Q ⊑ Q' holds by
// the identity mapping), so equivalence reduces to Q' ⊑ Q, a single
// homomorphism test per candidate. The result is unique up to isomorphism.
// Used by the CQstable / UCQstable baselines of Section 5.3/5.4.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q,
                            HomomorphismStats* stats = nullptr);

// Minimizes a negation-free union (Section 5.4): each disjunct is cored,
// then disjuncts contained in another remaining disjunct are dropped. The
// result is the minimal (w.r.t. union) M ≡ Q used by UCQstable.
UnionQuery MinimizeUcq(const UnionQuery& q,
                       HomomorphismStats* stats = nullptr);

// Equivalence-preserving minimization for CQ¬ using the Theorem 12/13
// containment test: a body literal is dropped when the smaller query is
// still contained in the original (dropping a conjunct — positive or
// negative — always weakens, so the reverse containment is automatic for
// satisfiable queries). Removals that would make the query unsafe are
// skipped. Each candidate removal costs a (worst-case Π₂ᴾ) containment
// check, so this is a tool for small queries and for the bench_baselines
// heuristic study — unlike CQ minimization it is NOT known to yield a
// canonical form, nor does orderability of the result characterize
// feasibility.
ConjunctiveQuery MinimizeCqn(const ConjunctiveQuery& q,
                             ContainmentStats* stats = nullptr);

// Union-level minimization for UCQ¬: minimizes each disjunct with
// MinimizeCqn, drops unsatisfiable disjuncts, then drops any disjunct
// contained in the union of the remaining ones.
UnionQuery MinimizeUcqn(const UnionQuery& q,
                        ContainmentStats* stats = nullptr);

}  // namespace ucqn

#endif  // UCQN_CONTAINMENT_MINIMIZE_H_
