#ifndef UCQN_CONTAINMENT_HOMOMORPHISM_H_
#define UCQN_CONTAINMENT_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>

#include "ast/query.h"
#include "ast/substitution.h"

namespace ucqn {

// Counters exposed by the mapping search; benches report them to show how
// much work the (NP-hard) search did.
struct HomomorphismStats {
  // Number of (query atom, candidate target atom) match attempts.
  std::uint64_t match_attempts = 0;
  // Number of complete containment mappings produced.
  std::uint64_t mappings_found = 0;

  void Add(const HomomorphismStats& other) {
    match_attempts += other.match_attempts;
    mappings_found += other.mappings_found;
  }
};

// Enumerates containment mappings σ : vars(Q) → terms(P) (Section 5.1):
//   * σ maps Q's head terms positionally onto P's head terms (this is the
//     "identity on free variables" condition, generalized to queries whose
//     distinguished variables have different names),
//   * for every positive literal R(ȳ) of Q, R(σȳ) is a positive literal
//     of P.
// Negative literals are ignored here; the UCQ¬ algorithm layers the
// Theorem 12/13 conditions on top.
//
// `visitor` is called once per mapping; returning true stops the
// enumeration. Returns true iff the visitor stopped the search (i.e. some
// mapping was accepted). P's variables are treated as frozen constants.
bool ForEachContainmentMapping(
    const ConjunctiveQuery& Q, const ConjunctiveQuery& P,
    const std::function<bool(const Substitution&)>& visitor,
    HomomorphismStats* stats = nullptr);

// True if at least one containment mapping Q → P exists, i.e. P ⊑ Q when
// both are plain CQs (Chandra–Merlin).
bool HasContainmentMapping(const ConjunctiveQuery& Q, const ConjunctiveQuery& P,
                           HomomorphismStats* stats = nullptr);

}  // namespace ucqn

#endif  // UCQN_CONTAINMENT_HOMOMORPHISM_H_
