#ifndef UCQN_CONTAINMENT_BRUTE_FORCE_H_
#define UCQN_CONTAINMENT_BRUTE_FORCE_H_

#include <cstdint>
#include <optional>

#include "ast/query.h"
#include "schema/catalog.h"

namespace ucqn {

struct BruteForceOptions {
  // Upper bound on the number of "free" atoms (universe minus the frozen
  // query's own literals); the search enumerates 2^free completions, so
  // this caps the cost. Instances above the cap return nullopt.
  std::size_t max_free_atoms = 12;
};

// Reference containment decision by exhaustive counterexample search,
// independent of the Theorem 12/13 engine — the differential oracle used
// by the property tests and tools/selfcheck.
//
// P ⊑ Q fails iff some instance D and assignment make P's body true with
// the head tuple outside Q(D). For the frozen P (variables read as fresh
// constants), it suffices to check every *completion* of [P⁺] with atoms
// over P's own terms — exactly the space the Wei–Lausen tree explores.
// This routine enumerates all such completions (required: frozen P⁺;
// forbidden: frozen P⁻; free: everything else over the relations of P and
// Q, whose arities come from `catalog`) and evaluates Q on each.
//
// Returns nullopt when the completion space exceeds the configured cap or
// a relation is undeclared. Queries must be negation-safe the way the
// oracle expects (Q may contain unsafe negatives; they are treated under
// the unrestricted-domain semantics).
std::optional<bool> BruteForceContained(const ConjunctiveQuery& P,
                                        const UnionQuery& Q,
                                        const Catalog& catalog,
                                        const BruteForceOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_CONTAINMENT_BRUTE_FORCE_H_
