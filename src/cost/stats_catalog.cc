#include "cost/stats_catalog.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ucqn {

namespace {

// Counters add; the p50 becomes the call-count-weighted average of old
// and new (percentiles cannot be merged exactly from aggregates, and
// ranking candidates only needs the order of magnitude).
void MergeInto(RelationStats* entry, const RelationStats& observed) {
  // A snapshot with calls == 0 (e.g. recorded from a fully-cached run)
  // says nothing about latency, so it must leave the entry's p50 alone:
  // the naive call-weighted average divides zero by zero and the NaN
  // permanently poisons AdaptiveCostModel pricing for this relation.
  // Non-finite inputs (a hand-edited or overflowed snapshot — atof
  // happily parses "1e999" to inf) are refused for the same reason:
  // inf × 0 is NaN even under a nonzero denominator.
  if (!std::isfinite(entry->p50_latency_micros)) {
    entry->p50_latency_micros = 0.0;
  }
  if (observed.calls > 0 && std::isfinite(observed.p50_latency_micros)) {
    const double total_calls = static_cast<double>(entry->calls) +
                               static_cast<double>(observed.calls);
    entry->p50_latency_micros =
        (entry->p50_latency_micros * static_cast<double>(entry->calls) +
         observed.p50_latency_micros * static_cast<double>(observed.calls)) /
        total_calls;
  }
  // The observed fanout merges under the same discipline, weighted by its
  // own successful-call count: a snapshot with fanout_calls == 0 (all
  // errors, or written before the field existed) says nothing about result
  // sizes and must not drag the mean toward zero, and a non-finite mean is
  // refused before it can poison the weighted average.
  if (!std::isfinite(entry->mean_fanout)) {
    entry->mean_fanout = 0.0;
    entry->fanout_calls = 0;
  }
  if (observed.fanout_calls > 0 && std::isfinite(observed.mean_fanout)) {
    const double total = static_cast<double>(entry->fanout_calls) +
                         static_cast<double>(observed.fanout_calls);
    entry->mean_fanout =
        (entry->mean_fanout * static_cast<double>(entry->fanout_calls) +
         observed.mean_fanout * static_cast<double>(observed.fanout_calls)) /
        total;
    entry->fanout_calls += observed.fanout_calls;
  }
  entry->calls += observed.calls;
  entry->errors += observed.errors;
  entry->tuples += observed.tuples;
}

}  // namespace

void StatsCatalog::Record(const std::string& relation,
                          const RelationStats& observed) {
  MergeInto(&relations_[relation], observed);
}

void StatsCatalog::Record(const std::string& relation,
                          const std::string& pattern_word,
                          const RelationStats& observed) {
  MergeInto(&patterns_[relation][pattern_word], observed);
  Record(relation, observed);  // pooled stays the sum of the keyed entries
}

void StatsCatalog::Observe(const MeteredSource& meter) {
  // Only the per-(relation, pattern) split is read: the keyed Record
  // folds each snapshot into the pooled entry too, and reading
  // per_relation() as well would double-count.
  for (const auto& [relation, split] : meter.per_access()) {
    for (const auto& [word, metrics] : split) {
      RelationStats snapshot;
      snapshot.calls = metrics.calls;
      snapshot.errors = metrics.errors;
      snapshot.tuples = metrics.tuples;
      snapshot.p50_latency_micros = static_cast<double>(
          metrics.latency.PercentileUpperBoundMicros(0.5));
      if (metrics.calls > metrics.errors) {
        snapshot.fanout_calls = metrics.calls - metrics.errors;
        snapshot.mean_fanout = static_cast<double>(metrics.tuples) /
                               static_cast<double>(snapshot.fanout_calls);
      }
      Record(relation, word, snapshot);
    }
  }
}

std::size_t StatsCatalog::InvalidateRelation(const std::string& relation) {
  std::size_t erased = relations_.erase(relation);
  auto split = patterns_.find(relation);
  if (split != patterns_.end()) {
    erased += split->second.size();
    patterns_.erase(split);
  }
  return erased;
}

const RelationStats* StatsCatalog::Find(const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : &it->second;
}

const RelationStats* StatsCatalog::Find(
    const std::string& relation, const std::string& pattern_word) const {
  auto it = patterns_.find(relation);
  if (it == patterns_.end()) return nullptr;
  auto entry = it->second.find(pattern_word);
  return entry == it->second.end() ? nullptr : &entry->second;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Minimal recursive-descent reader for the flat two-level object ToJson
// emits. Not a general JSON parser: strings may not contain escapes
// (relation names never do) and values are numbers or nested objects.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ReadString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Fail("escapes are not supported");
      out->push_back(text_[pos_++]);
    }
    return Consume('"');
  }

  bool ReadNumber(double* out) {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    *out = std::atof(text_.substr(start, pos_ - start).c_str());
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// An observed-fanout pair is meaningful only when both halves are: zero
// backing calls or a non-finite mean (key order in a hand-edited file can
// land either one alone) collapse to "never observed".
void SanitizeFanout(RelationStats* stats) {
  if (stats->fanout_calls == 0 || !std::isfinite(stats->mean_fanout)) {
    stats->mean_fanout = 0.0;
    stats->fanout_calls = 0;
  }
}

// Reads one stats object. When `patterns` is non-null a nested
// "patterns" object of pattern-word -> stats is accepted (the keyed
// split); pre-split snapshots simply don't have the key and load as
// pooled-only.
bool ReadRelationStats(JsonReader* in, RelationStats* stats,
                       std::map<std::string, RelationStats>* patterns) {
  if (!in->Consume('{')) return false;
  if (in->Peek('}')) return in->Consume('}');
  while (true) {
    std::string key;
    if (!in->ReadString(&key) || !in->Consume(':')) return false;
    if (key == "patterns" && patterns != nullptr) {
      if (!in->Consume('{')) return false;
      if (in->Peek('}')) {
        in->Consume('}');
      } else {
        while (true) {
          std::string word;
          RelationStats keyed;
          if (!in->ReadString(&word) || !in->Consume(':') ||
              !ReadRelationStats(in, &keyed, nullptr)) {
            return false;
          }
          SanitizeFanout(&keyed);
          (*patterns)[word] = keyed;
          if (in->Peek(',')) {
            in->Consume(',');
            continue;
          }
          if (!in->Consume('}')) return false;
          break;
        }
      }
    } else {
      double value = 0.0;
      if (!in->ReadNumber(&value)) return false;
      if (key == "calls") {
        stats->calls = static_cast<std::uint64_t>(value);
      } else if (key == "errors") {
        stats->errors = static_cast<std::uint64_t>(value);
      } else if (key == "tuples") {
        stats->tuples = static_cast<std::uint64_t>(value);
      } else if (key == "p50_latency_us") {
        // A non-finite latency (overflowed literal, hand-edited file)
        // would NaN-poison every later weighted merge; load it as
        // "unknown" instead.
        stats->p50_latency_micros = std::isfinite(value) ? value : 0.0;
      } else if (key == "fanout") {
        // A non-finite mean stays non-finite until the object closes, so
        // the final SanitizeFanout zeroes the whole pair no matter which
        // order the keys arrived in ("fanout_calls" after a rejected
        // "fanout" must not resurrect the observation).
        stats->mean_fanout =
            std::isfinite(value) ? value
                                 : std::numeric_limits<double>::quiet_NaN();
      } else if (key == "fanout_calls") {
        stats->fanout_calls = static_cast<std::uint64_t>(value);
      }  // unknown scalar keys are ignored for forward compatibility
    }
    if (in->Peek(',')) {
      in->Consume(',');
      continue;
    }
    SanitizeFanout(stats);
    return in->Consume('}');
  }
}

}  // namespace

namespace {

std::string StatsJsonFields(const RelationStats& stats) {
  std::string out = "\"calls\": " + std::to_string(stats.calls) +
                    ", \"errors\": " + std::to_string(stats.errors) +
                    ", \"tuples\": " + std::to_string(stats.tuples) +
                    ", \"p50_latency_us\": " +
                    FormatDouble(stats.p50_latency_micros);
  // Omitted when never observed, so pre-fanout snapshots round-trip
  // byte-identically (the same migration story as the "patterns" key).
  if (stats.fanout_calls > 0) {
    out += ", \"fanout\": " + FormatDouble(stats.mean_fanout) +
           ", \"fanout_calls\": " + std::to_string(stats.fanout_calls);
  }
  return out;
}

}  // namespace

std::string StatsCatalog::ToJson() const {
  std::string out = "{\"relations\": {";
  bool first = true;
  for (const auto& [relation, stats] : relations_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + relation + "\": {" + StatsJsonFields(stats);
    auto split = patterns_.find(relation);
    if (split != patterns_.end() && !split->second.empty()) {
      out += ", \"patterns\": {";
      bool first_pattern = true;
      for (const auto& [word, keyed] : split->second) {
        if (!first_pattern) out += ", ";
        first_pattern = false;
        out += "\"" + word + "\": {" + StatsJsonFields(keyed) + "}";
      }
      out += "}";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::optional<StatsCatalog> StatsCatalog::FromJson(const std::string& text,
                                                   std::string* error) {
  JsonReader in(text);
  StatsCatalog catalog;
  auto fail = [&](const std::string& why) -> std::optional<StatsCatalog> {
    if (error != nullptr) {
      *error = in.error().empty() ? why : in.error();
    }
    return std::nullopt;
  };
  std::string key;
  if (!in.Consume('{') || !in.ReadString(&key) || !in.Consume(':')) {
    return fail("malformed stats object");
  }
  if (key != "relations") return fail("expected a \"relations\" key");
  if (!in.Consume('{')) return fail("malformed relations object");
  if (!in.Peek('}')) {
    while (true) {
      std::string relation;
      RelationStats stats;
      std::map<std::string, RelationStats> keyed;
      if (!in.ReadString(&relation) || !in.Consume(':') ||
          !ReadRelationStats(&in, &stats, &keyed)) {
        return fail("malformed relation entry");
      }
      // Direct assignment, not Record: the pooled entry already includes
      // the keyed ones (Record would double-count it) and must survive
      // the round-trip byte-identically.
      catalog.relations_[relation] = stats;
      if (!keyed.empty()) catalog.patterns_[relation] = std::move(keyed);
      if (in.Peek(',')) {
        in.Consume(',');
        continue;
      }
      break;
    }
  }
  if (!in.Consume('}') || !in.Consume('}')) return fail("unterminated object");
  if (!in.AtEnd()) return fail("trailing characters");
  return catalog;
}

}  // namespace ucqn
