#include "cost/stats_catalog.h"

#include <cctype>
#include <cstdio>

namespace ucqn {

void StatsCatalog::Record(const std::string& relation,
                          const RelationStats& observed) {
  RelationStats& entry = relations_[relation];
  const double total_calls =
      static_cast<double>(entry.calls) + static_cast<double>(observed.calls);
  if (total_calls > 0.0) {
    entry.p50_latency_micros =
        (entry.p50_latency_micros * static_cast<double>(entry.calls) +
         observed.p50_latency_micros * static_cast<double>(observed.calls)) /
        total_calls;
  }
  entry.calls += observed.calls;
  entry.errors += observed.errors;
  entry.tuples += observed.tuples;
}

void StatsCatalog::Observe(const MeteredSource& meter) {
  for (const auto& [relation, metrics] : meter.per_relation()) {
    RelationStats snapshot;
    snapshot.calls = metrics.calls;
    snapshot.errors = metrics.errors;
    snapshot.tuples = metrics.tuples;
    snapshot.p50_latency_micros = static_cast<double>(
        metrics.latency.PercentileUpperBoundMicros(0.5));
    Record(relation, snapshot);
  }
}

const RelationStats* StatsCatalog::Find(const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : &it->second;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Minimal recursive-descent reader for the flat two-level object ToJson
// emits. Not a general JSON parser: strings may not contain escapes
// (relation names never do) and values are numbers or nested objects.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ReadString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Fail("escapes are not supported");
      out->push_back(text_[pos_++]);
    }
    return Consume('"');
  }

  bool ReadNumber(double* out) {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    *out = std::atof(text_.substr(start, pos_ - start).c_str());
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool ReadRelationStats(JsonReader* in, RelationStats* stats) {
  if (!in->Consume('{')) return false;
  if (in->Peek('}')) return in->Consume('}');
  while (true) {
    std::string key;
    double value = 0.0;
    if (!in->ReadString(&key) || !in->Consume(':') || !in->ReadNumber(&value)) {
      return false;
    }
    if (key == "calls") {
      stats->calls = static_cast<std::uint64_t>(value);
    } else if (key == "errors") {
      stats->errors = static_cast<std::uint64_t>(value);
    } else if (key == "tuples") {
      stats->tuples = static_cast<std::uint64_t>(value);
    } else if (key == "p50_latency_us") {
      stats->p50_latency_micros = value;
    }  // unknown scalar keys are ignored for forward compatibility
    if (in->Peek(',')) {
      in->Consume(',');
      continue;
    }
    return in->Consume('}');
  }
}

}  // namespace

std::string StatsCatalog::ToJson() const {
  std::string out = "{\"relations\": {";
  bool first = true;
  for (const auto& [relation, stats] : relations_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + relation + "\": {\"calls\": " + std::to_string(stats.calls) +
           ", \"errors\": " + std::to_string(stats.errors) +
           ", \"tuples\": " + std::to_string(stats.tuples) +
           ", \"p50_latency_us\": " + FormatDouble(stats.p50_latency_micros) +
           "}";
  }
  out += "}}";
  return out;
}

std::optional<StatsCatalog> StatsCatalog::FromJson(const std::string& text,
                                                   std::string* error) {
  JsonReader in(text);
  StatsCatalog catalog;
  auto fail = [&](const std::string& why) -> std::optional<StatsCatalog> {
    if (error != nullptr) {
      *error = in.error().empty() ? why : in.error();
    }
    return std::nullopt;
  };
  std::string key;
  if (!in.Consume('{') || !in.ReadString(&key) || !in.Consume(':')) {
    return fail("malformed stats object");
  }
  if (key != "relations") return fail("expected a \"relations\" key");
  if (!in.Consume('{')) return fail("malformed relations object");
  if (!in.Peek('}')) {
    while (true) {
      std::string relation;
      RelationStats stats;
      if (!in.ReadString(&relation) || !in.Consume(':') ||
          !ReadRelationStats(&in, &stats)) {
        return fail("malformed relation entry");
      }
      catalog.Record(relation, stats);
      if (in.Peek(',')) {
        in.Consume(',');
        continue;
      }
      break;
    }
  }
  if (!in.Consume('}') || !in.Consume('}')) return fail("unterminated object");
  if (!in.AtEnd()) return fail("trailing characters");
  return catalog;
}

}  // namespace ucqn
