#include "cost/cost_model.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace ucqn {

namespace {

std::string FormatCost(double cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", cost);
  return buf;
}

// Number of argument positions of `literal` that sit in input slots of
// `pattern` and are ground or bound — the positions the source filters on
// server-side.
std::size_t BoundInputSlots(const Literal& literal, const AccessPattern& pattern,
                            const BoundVariables& bound) {
  std::size_t n = 0;
  const std::vector<Term>& args = literal.args();
  for (std::size_t j = 0; j < args.size() && j < pattern.arity(); ++j) {
    if (!pattern.IsInputSlot(j)) continue;
    if (args[j].IsGround() ||
        (args[j].IsVariable() && bound.count(args[j].name()) > 0)) {
      ++n;
    }
  }
  return n;
}

// Number of argument positions that are ground or bound anywhere — the
// positions unification filters on, server- or client-side.
std::size_t BoundArgs(const Literal& literal, const BoundVariables& bound) {
  std::size_t n = 0;
  for (const Term& arg : literal.args()) {
    if (arg.IsGround() ||
        (arg.IsVariable() && bound.count(arg.name()) > 0)) {
      ++n;
    }
  }
  return n;
}

// True if some input slot of `pattern` holds a variable: distinct
// bindings then issue distinct requests, so the wave dedup cannot
// collapse them to one call.
bool PatternKeyedByVariables(const Literal& literal,
                             const AccessPattern& pattern) {
  const std::vector<Term>& args = literal.args();
  for (std::size_t j = 0; j < args.size() && j < pattern.arity(); ++j) {
    if (pattern.IsInputSlot(j) && args[j].IsVariable()) return true;
  }
  return false;
}

double FanoutEstimate(const Literal& literal, const BoundVariables& bound,
                      const CardinalityEstimates& estimates,
                      const StaticCostOptions& options) {
  double size = estimates.Get(literal.relation(), options.fallback_cardinality);
  for (std::size_t i = 0; i < BoundArgs(literal, bound); ++i) {
    size *= options.bound_arg_selectivity;
  }
  return size;
}

}  // namespace

std::string PatternDecision::ToString() const {
  std::string out = relation + ":";
  if (candidates.empty()) return out + " no declared patterns";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const PatternCandidate& c = candidates[i];
    out += (i == 0 ? " " : ", ") + c.pattern.word();
    if (!c.usable) {
      out += " unusable";
    } else {
      out += " cost=" + FormatCost(c.cost);
      if (c.chosen) out += " (chosen)";
    }
  }
  if (!chosen.has_value()) out += " -- no usable pattern";
  return out;
}

// ---------------------------------------------------------------------------
// StaticCostModel: the pre-cost-layer heuristics, expressed as costs.

double StaticCostModel::PatternCost(const Literal& literal,
                                    const AccessPattern& pattern,
                                    const BoundVariables& bound,
                                    const PlanContext& context) const {
  (void)literal;
  (void)bound;
  (void)context;
  // Ranking by input-slot count alone reproduces the historical strict
  // comparison: under kMostInputs a later pattern wins only with strictly
  // more inputs (strictly lower cost here), so ties keep the earliest
  // declared pattern — the historical tie-break.
  const auto inputs = static_cast<double>(pattern.InputCount());
  return preference_ == PatternPreference::kMostInputs ? -inputs : inputs;
}

LiteralScore StaticCostModel::ScoreLiteral(const Catalog& catalog,
                                           const Literal& literal,
                                           const BoundVariables& bound,
                                           const PlanContext& context) const {
  (void)catalog;
  (void)context;
  LiteralScore score;
  score.filter = IsFilterLiteral(literal, bound);
  score.cost = score.filter ? 0.0 : ExpectedFanout(literal, bound);
  return score;
}

double StaticCostModel::ExpectedFanout(const Literal& literal,
                                       const BoundVariables& bound) const {
  return FanoutEstimate(literal, bound, estimates_, options_);
}

// ---------------------------------------------------------------------------
// AdaptiveCostModel: expected_calls x p50_latency + expected_tuples x
// tuple_cost, fed by observed runtime statistics.

double AdaptiveCostModel::LatencyMicros(const std::string& relation) const {
  if (stats_ != nullptr) {
    const RelationStats* observed = stats_->Find(relation);
    if (observed != nullptr && observed->calls > 0) {
      return observed->p50_latency_micros;
    }
  }
  return options_.default_latency_micros;
}

double AdaptiveCostModel::LatencyMicros(
    const std::string& relation, const std::string& pattern_word) const {
  if (stats_ != nullptr) {
    const RelationStats* keyed = stats_->Find(relation, pattern_word);
    if (keyed != nullptr && keyed->calls > 0) {
      return keyed->p50_latency_micros;
    }
  }
  return LatencyMicros(relation);  // pooled entry or the default
}

double AdaptiveCostModel::MissRate(const std::string& relation) const {
  if (options_.shared_cache == nullptr) return 1.0;
  return 1.0 - options_.shared_cache->RelationHitRate(relation);
}

double AdaptiveCostModel::ExpectedTuplesPerCall(
    const Literal& literal, const AccessPattern& pattern,
    const BoundVariables& bound) const {
  // Keyed access (values pushed into input slots): trust the observed
  // per-call result size when we have one — it reflects the source's real
  // key selectivity far better than a uniform-selectivity guess.
  const std::size_t filtered = BoundInputSlots(literal, pattern, bound);
  if (filtered > 0 && stats_ != nullptr) {
    // The keyed entry is the exact thing wanted here — the observed
    // result size of this very operation; the pooled entry mixes in the
    // relation's other patterns (a scan's full-table results would dwarf
    // a point lookup's) and is only a fallback for pre-split snapshots.
    const RelationStats* observed =
        stats_->Find(literal.relation(), pattern.word());
    if (observed == nullptr) observed = stats_->Find(literal.relation());
    if (observed != nullptr) {
      // The merged fanout mean excludes errored calls (a failed call
      // returns no tuples but still counts in `calls`, dragging the raw
      // mean down), so prefer it when this snapshot carries one.
      if (options_.use_observed_fanouts && observed->fanout_calls > 0) {
        return observed->mean_fanout;
      }
      if (observed->calls > 0) return observed->MeanTuplesPerCall();
    }
  }
  // Scans (and unobserved keyed access): the relation's cardinality cut
  // by the uniform selectivity per server-side-filtered position. With no
  // explicit estimate, an observed fanout for this very pattern stands in
  // for the fallback guess — a scan that has run once prices at the
  // relation's real size from then on (the workload feedback loop).
  double size = options_.static_options.fallback_cardinality;
  if (estimates_.Has(literal.relation())) {
    size = estimates_.Get(literal.relation());
  } else if (options_.use_observed_fanouts && stats_ != nullptr) {
    const RelationStats* keyed =
        stats_->Find(literal.relation(), pattern.word());
    if (keyed != nullptr && keyed->fanout_calls > 0 &&
        keyed->mean_fanout > 0.0) {
      size = keyed->mean_fanout;
    }
  }
  for (std::size_t i = 0; i < filtered; ++i) {
    size *= options_.static_options.bound_arg_selectivity;
  }
  return size;
}

double AdaptiveCostModel::PatternCost(const Literal& literal,
                                      const AccessPattern& pattern,
                                      const BoundVariables& bound,
                                      const PlanContext& context) const {
  // A pattern whose input slots carry no variables issues the same
  // request for every live binding — the executor's wave dedup collapses
  // those to one physical call.
  const double expected_calls =
      PatternKeyedByVariables(literal, pattern)
          ? std::max(context.live_bindings, 1.0)
          : 1.0;
  const double expected_tuples =
      expected_calls * ExpectedTuplesPerCall(literal, pattern, bound);
  // Only the expected *misses* pay transport latency: against a shared
  // cache that has been serving this relation, most repeats never leave
  // the process. The tuple term stays — cached tuples are still received
  // and filtered client-side.
  const double physical_calls =
      expected_calls * MissRate(literal.relation());
  return physical_calls * LatencyMicros(literal.relation(), pattern.word()) +
         expected_tuples * options_.tuple_cost_micros;
}

LiteralScore AdaptiveCostModel::ScoreLiteral(const Catalog& catalog,
                                             const Literal& literal,
                                             const BoundVariables& bound,
                                             const PlanContext& context) const {
  LiteralScore score;
  score.filter = IsFilterLiteral(literal, bound);
  // Cost of running the literal next through its cheapest pattern, plus
  // the client-side cost of the bindings it fans out into (which multiply
  // every later literal's calls).
  double best_pattern = std::numeric_limits<double>::infinity();
  PatternDecision decision;
  if (ChoosePattern(catalog, literal, bound, *this, context, &decision)
          .has_value()) {
    for (const PatternCandidate& candidate : decision.candidates) {
      if (candidate.chosen) best_pattern = candidate.cost;
    }
  }
  if (!std::isfinite(best_pattern)) {
    // No usable pattern (the ordering loop filters these out before
    // scoring, but stay total): fall back to the fanout term alone.
    best_pattern = 0.0;
  }
  score.cost = score.filter
                   ? best_pattern
                   : best_pattern + ExpectedFanout(literal, bound) *
                                        options_.tuple_cost_micros;
  return score;
}

double AdaptiveCostModel::ExpectedFanout(const Literal& literal,
                                         const BoundVariables& bound) const {
  return FanoutEstimate(literal, bound, estimates_, options_.static_options);
}

// ---------------------------------------------------------------------------

std::optional<AccessPattern> ChoosePattern(const Catalog& catalog,
                                           const Literal& literal,
                                           const BoundVariables& bound,
                                           const CostModel& model,
                                           const PlanContext& context,
                                           PatternDecision* decision) {
  if (decision != nullptr) {
    decision->relation = literal.relation();
    decision->chosen.reset();
    decision->candidates.clear();
  }
  const RelationSchema* schema = catalog.Find(literal.relation());
  if (schema == nullptr || schema->arity() != literal.atom().arity()) {
    return std::nullopt;
  }
  // A negated call can only filter out answers, never produce bindings, so
  // all of its variables must already be bound (Definition 3).
  if (literal.negative() && !AllVariablesBound(literal, bound)) {
    return std::nullopt;
  }
  std::optional<AccessPattern> best;
  double best_cost = 0.0;
  std::size_t best_index = 0;
  for (const AccessPattern& p : schema->patterns()) {
    PatternCandidate candidate;
    candidate.pattern = p;
    candidate.usable = PatternUsable(literal, p, bound);
    if (candidate.usable) {
      candidate.cost = model.PatternCost(literal, p, bound, context);
      if (!best.has_value() || candidate.cost < best_cost) {
        best = p;
        best_cost = candidate.cost;
        if (decision != nullptr) best_index = decision->candidates.size();
      }
    }
    if (decision != nullptr) {
      decision->candidates.push_back(std::move(candidate));
    }
  }
  if (decision != nullptr) {
    decision->chosen = best;
    if (best.has_value()) decision->candidates[best_index].chosen = true;
  }
  return best;
}

}  // namespace ucqn
