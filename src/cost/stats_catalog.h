#ifndef UCQN_COST_STATS_CATALOG_H_
#define UCQN_COST_STATS_CATALOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "runtime/metered_source.h"

namespace ucqn {

// What the cost layer remembers about one relation's observed access
// behaviour — a compact snapshot of MeteredSource's RelationMetrics that
// survives across executions (and JSON round-trips).
struct RelationStats {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  std::uint64_t tuples = 0;
  // Upper bound of the histogram bucket holding the median call latency at
  // snapshot time. Merged snapshots keep a call-count-weighted average —
  // an approximation, but percentiles cannot be merged exactly from
  // aggregates and ranking candidates only needs the order of magnitude.
  double p50_latency_micros = 0.0;
  // Observed result fanout: mean tuples returned per *successful* call at
  // snapshot time, and how many successful calls back that mean. Unlike
  // MeanTuplesPerCall() (derived from the cumulative counters above, errors
  // included in the denominator), this pair survives merging with the same
  // weighted-average discipline as the p50 — and a scan pattern's fanout is
  // the relation's observed cardinality, which the adaptive model prefers
  // over the 1000-tuple fallback (see CardinalityEstimates::
  // ApplyObservedFanouts). Zero fanout_calls means "never observed"
  // (e.g. a snapshot written before the field existed).
  double mean_fanout = 0.0;
  std::uint64_t fanout_calls = 0;

  // Observed tuples per physical call — the keyed-access result size the
  // adaptive model uses when a pattern pushes bindings to the source.
  double MeanTuplesPerCall() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(tuples) / static_cast<double>(calls);
  }
};

// Per-relation observed statistics feeding AdaptiveCostModel. Snapshots
// accumulate: Observe() after each execution merges the meter's counters
// into the running totals, so a long-lived catalog converges on the
// source fleet's steady-state behaviour. Serializes to JSON so a snapshot
// can be persisted (`ucqnc --stats-out`) and replayed (`--stats-in`) for
// reproducible planning decisions.
class StatsCatalog {
 public:
  StatsCatalog() = default;

  // Merges `observed` into the pooled entry for `relation`: counters add,
  // the p50 latency becomes the call-count-weighted average of old and
  // new.
  void Record(const std::string& relation, const RelationStats& observed);

  // Merges `observed` into the keyed entry for (relation, pattern word)
  // AND folds it into the pooled entry, so pooled stats stay the sum of
  // the keyed ones. The keyed split is what the adaptive model prefers:
  // one service's operations (the paper's `B^oio`-style patterns) can
  // have wildly different latencies, and pooling them misprices both.
  void Record(const std::string& relation, const std::string& pattern_word,
              const RelationStats& observed);

  // Merges every per-(relation, pattern) entry of `meter` (one
  // execution's worth of metrics) into this catalog. Call between
  // executions; MeteredSource counts cumulatively, so observe a given
  // meter only once (or Reset it).
  void Observe(const MeteredSource& meter);

  // Forgets everything observed about `relation` — the pooled entry and
  // the whole per-pattern split — so AdaptiveCostModel re-prices it from
  // its defaults after an invalidation. (Dropping only the cache would
  // leave the planner trusting pre-update latencies and fanouts.) Returns
  // the number of stats entries erased (pooled + keyed).
  std::size_t InvalidateRelation(const std::string& relation);

  // Pooled stats; nullptr when the relation has never been observed.
  const RelationStats* Find(const std::string& relation) const;
  // Keyed stats for one access pattern; nullptr when that (relation,
  // pattern) pair has never been observed — e.g. a snapshot written
  // before the split existed (migration: its pooled entries still load
  // and Find(relation) still answers).
  const RelationStats* Find(const std::string& relation,
                            const std::string& pattern_word) const;

  bool empty() const { return relations_.empty(); }
  std::size_t size() const { return relations_.size(); }
  const std::map<std::string, RelationStats>& relations() const {
    return relations_;
  }
  // Relation -> pattern word -> keyed stats. Relations loaded from an
  // old pooled-only snapshot have no entry here.
  const std::map<std::string, std::map<std::string, RelationStats>>&
  patterns() const {
    return patterns_;
  }

  // {"relations": {"R": {"calls": 3, "errors": 0, "tuples": 12,
  //                      "p50_latency_us": 500.0,
  //                      "patterns": {"io": {...}, ...}}, ...}}
  // The "patterns" key is omitted for relations without keyed stats, so a
  // pooled-only catalog emits the pre-split format unchanged.
  std::string ToJson() const;

  // Parses ToJson()'s format (unknown scalar keys are ignored, so exports
  // from newer versions load; pre-split snapshots without "patterns"
  // load as pooled-only entries). Returns nullopt and sets `*error` on
  // malformed input.
  static std::optional<StatsCatalog> FromJson(const std::string& text,
                                              std::string* error = nullptr);

 private:
  std::map<std::string, RelationStats> relations_;
  std::map<std::string, std::map<std::string, RelationStats>> patterns_;
};

}  // namespace ucqn

#endif  // UCQN_COST_STATS_CATALOG_H_
