#include "cost/estimates.h"

#include <string>

#include "cost/stats_catalog.h"

namespace ucqn {

namespace {

// True for the all-output access word ("oo...o"): calling it returns the
// whole relation, so its observed fanout is the relation's cardinality.
bool IsFullScanWord(const std::string& word) {
  return word.find('i') == std::string::npos;
}

}  // namespace

CardinalityEstimates CardinalityEstimates::FromDatabase(const Database& db) {
  CardinalityEstimates estimates;
  for (const std::string& name : db.RelationNames()) {
    estimates.Set(name, static_cast<double>(db.TupleCount(name)));
  }
  return estimates;
}

CardinalityEstimates CardinalityEstimates::FromCatalog(
    const Catalog& catalog) {
  CardinalityEstimates estimates;
  for (const RelationSchema* schema : catalog.Relations()) {
    if (schema->cardinality().has_value()) {
      estimates.Set(schema->name(), *schema->cardinality());
    }
  }
  return estimates;
}

void CardinalityEstimates::Set(const std::string& relation,
                               double cardinality) {
  cardinalities_[relation] = cardinality;
}

void CardinalityEstimates::ApplyObservedFanouts(const StatsCatalog& stats) {
  for (const auto& [relation, split] : stats.patterns()) {
    if (Has(relation)) continue;  // explicit estimates always win
    for (const auto& [word, keyed] : split) {
      // Only a full scan's fanout measures cardinality; a keyed probe's
      // fanout measures key selectivity and would wildly underestimate.
      if (!IsFullScanWord(word)) continue;
      if (keyed.fanout_calls == 0 || keyed.mean_fanout <= 0.0) continue;
      Set(relation, keyed.mean_fanout);
      break;  // one all-output word per arity
    }
  }
}

double CardinalityEstimates::Get(const std::string& relation,
                                 double fallback) const {
  auto it = cardinalities_.find(relation);
  return it == cardinalities_.end() ? fallback : it->second;
}

}  // namespace ucqn
