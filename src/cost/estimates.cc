#include "cost/estimates.h"

namespace ucqn {

CardinalityEstimates CardinalityEstimates::FromDatabase(const Database& db) {
  CardinalityEstimates estimates;
  for (const std::string& name : db.RelationNames()) {
    estimates.Set(name, static_cast<double>(db.TupleCount(name)));
  }
  return estimates;
}

CardinalityEstimates CardinalityEstimates::FromCatalog(
    const Catalog& catalog) {
  CardinalityEstimates estimates;
  for (const RelationSchema* schema : catalog.Relations()) {
    if (schema->cardinality().has_value()) {
      estimates.Set(schema->name(), *schema->cardinality());
    }
  }
  return estimates;
}

void CardinalityEstimates::Set(const std::string& relation,
                               double cardinality) {
  cardinalities_[relation] = cardinality;
}

double CardinalityEstimates::Get(const std::string& relation,
                                 double fallback) const {
  auto it = cardinalities_.find(relation);
  return it == cardinalities_.end() ? fallback : it->second;
}

}  // namespace ucqn
