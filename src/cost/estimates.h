#ifndef UCQN_COST_ESTIMATES_H_
#define UCQN_COST_ESTIMATES_H_

#include <map>
#include <string>

#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

class StatsCatalog;

// The cardinality assumed for a relation nobody declared an estimate for.
// Every fallback in the cost layer (CardinalityEstimates::Get,
// PlannerOptions::fallback_cardinality, the cost models' expected-tuple
// terms) defaults to this one constant so an unknown relation is priced
// identically wherever it is consulted.
inline constexpr double kDefaultFallbackCardinality = 1000.0;

// Per-relation cardinality estimates driving plan-quality decisions (the
// greedy reorderer and both cost models). Real mediators get these from
// service metadata; tests and benches build them from an instance.
class CardinalityEstimates {
 public:
  CardinalityEstimates() = default;

  // Uses the actual tuple counts of `db`.
  static CardinalityEstimates FromDatabase(const Database& db);

  // Uses the `@N` cardinality annotations of `catalog` (relations without
  // one keep the per-call fallback).
  static CardinalityEstimates FromCatalog(const Catalog& catalog);

  void Set(const std::string& relation, double cardinality);

  // Fills gaps from observed runtime behaviour: for every relation WITHOUT
  // an explicit estimate, a full-scan access pattern's observed mean fanout
  // (tuples per successful call of an all-output word — i.e. the result
  // size of "fetch everything") is the relation's observed cardinality and
  // replaces the kDefaultFallbackCardinality guess. Explicitly declared
  // estimates (service metadata, `@N` annotations) always win; relations
  // whose scans were never called are left to the fallback. This is the
  // workload feedback loop — see docs/WORKLOADS.md.
  void ApplyObservedFanouts(const StatsCatalog& stats);
  // Returns the estimate, or `fallback` for unknown relations. The default
  // fallback is kDefaultFallbackCardinality (1000).
  double Get(const std::string& relation,
             double fallback = kDefaultFallbackCardinality) const;

  bool Has(const std::string& relation) const {
    return cardinalities_.count(relation) > 0;
  }

 private:
  std::map<std::string, double> cardinalities_;
};

}  // namespace ucqn

#endif  // UCQN_COST_ESTIMATES_H_
