#ifndef UCQN_COST_COST_MODEL_H_
#define UCQN_COST_COST_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "cost/estimates.h"
#include "cost/stats_catalog.h"
#include "runtime/shared_cache.h"
#include "schema/adornment.h"
#include "schema/catalog.h"

namespace ucqn {

// What the decision point knows about the execution state beyond the
// bound-variable set: how many live bindings the next literal will be
// probed with. The executor passes the actual count; the planner passes a
// running selectivity estimate. Models that only rank statically (the
// default StaticCostModel) ignore it.
struct PlanContext {
  double live_bindings = 1.0;
};

// One scored alternative of a pattern decision — kept for --explain
// output and tests, so a rejected candidate can be shown next to the
// winner with the cost that rejected it.
struct PatternCandidate {
  AccessPattern pattern;
  double cost = 0.0;
  bool usable = false;
  bool chosen = false;
};

// The full record of one ChoosePattern call: every declared pattern of
// the relation with its usability and cost, plus the winner.
struct PatternDecision {
  std::string relation;
  std::optional<AccessPattern> chosen;
  std::vector<PatternCandidate> candidates;

  // e.g. "Lookup: io cost=35200 (chosen), oo cost=250500, ii unusable".
  std::string ToString() const;
};

// How a literal ranks as the next step of a left-to-right plan. Filters
// (negations and fully-bound positives) always schedule before
// non-filters — that part is a soundness-flavoured policy shared by every
// model — and `cost` orders candidates within each class, lower first.
struct LiteralScore {
  bool filter = false;
  double cost = 0.0;
};

// Every plan-quality decision — which access pattern the executor calls a
// literal through, and which literal the planner schedules next — flows
// through one of these. Implementations rank candidates; the mechanics of
// usability (PatternUsable, the negative-literal all-bound rule) stay in
// the shared ChoosePattern below, so a model can never pick an invalid
// plan, only a slow one.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  // Lower-is-better cost of calling `literal` through `pattern` (already
  // known usable) given `bound` and `context`. Ties fall to declaration
  // order, so equal-cost models are deterministic.
  virtual double PatternCost(const Literal& literal,
                             const AccessPattern& pattern,
                             const BoundVariables& bound,
                             const PlanContext& context) const = 0;

  // Lower-is-better priority of scheduling `literal` next. Called only
  // for literals that are executable next (CanExecuteNext holds).
  virtual LiteralScore ScoreLiteral(const Catalog& catalog,
                                    const Literal& literal,
                                    const BoundVariables& bound,
                                    const PlanContext& context) const = 0;

  // Estimated result-set size of executing `literal` against one binding
  // — the planner multiplies these along the chosen prefix to keep
  // PlanContext::live_bindings current.
  virtual double ExpectedFanout(const Literal& literal,
                                const BoundVariables& bound) const = 0;
};

// Knobs shared by the static model and the static parts of the adaptive
// one. The defaults reproduce the historical planner behaviour exactly.
struct StaticCostOptions {
  // The fraction of a relation's tuples expected to survive each bound
  // argument position (a crude uniform-selectivity model — enough to rank
  // candidate literals, which is all the greedy planner needs).
  double bound_arg_selectivity = 0.2;
  // Cardinality assumed for relations absent from the estimates. See
  // kDefaultFallbackCardinality.
  double fallback_cardinality = kDefaultFallbackCardinality;
};

// The historical heuristics, verbatim, behind the CostModel interface:
// patterns rank purely by input-slot count per `preference` (declaration
// order breaks ties), literals by estimated fanout with filters first.
// This is the bit-compatible default — an executor or planner given no
// model behaves exactly as before the cost layer existed.
class StaticCostModel : public CostModel {
 public:
  explicit StaticCostModel(
      PatternPreference preference = PatternPreference::kMostInputs,
      CardinalityEstimates estimates = {}, StaticCostOptions options = {})
      : preference_(preference),
        estimates_(std::move(estimates)),
        options_(options) {}

  std::string name() const override { return "static"; }
  double PatternCost(const Literal& literal, const AccessPattern& pattern,
                     const BoundVariables& bound,
                     const PlanContext& context) const override;
  LiteralScore ScoreLiteral(const Catalog& catalog, const Literal& literal,
                            const BoundVariables& bound,
                            const PlanContext& context) const override;
  double ExpectedFanout(const Literal& literal,
                        const BoundVariables& bound) const override;

 private:
  PatternPreference preference_;
  CardinalityEstimates estimates_;
  StaticCostOptions options_;
};

struct AdaptiveCostOptions {
  // Client-side cost of receiving and filtering one tuple, in the same
  // unit as the observed latencies (simulated microseconds).
  double tuple_cost_micros = 1.0;
  // Assumed p50 call latency for relations with no observed stats.
  double default_latency_micros = 1000.0;
  // Static fallbacks for the expected-tuple terms.
  StaticCostOptions static_options;
  // The process-wide cache the execution will run against, if any (not
  // owned). When set, the latency term of each candidate is scaled by
  // the relation's observed *miss* rate: a cached-hot relation's repeat
  // calls mostly never reach the transport, so its patterns price near
  // zero and the model stops avoiding it.
  const SharedCacheStore* shared_cache = nullptr;
  // Prefer observed per-(relation, pattern) result fanouts from the
  // StatsCatalog over the fallback cardinality when no explicit estimate
  // exists: a full scan's observed fanout is the relation's real size,
  // which beats the 1000-tuple guess the moment the scan has run once
  // (see docs/WORKLOADS.md, "Fanout feedback"). Off reproduces the
  // pre-feedback pricing — the baseline bench_workload compares against.
  bool use_observed_fanouts = true;
};

// Scores each (literal, pattern) candidate as
//
//   expected_calls x p50_latency + expected_tuples x tuple_cost
//
// with the latency taken from a StatsCatalog snapshot of observed
// runtime metrics. expected_calls is 1 for a pattern whose input slots
// carry no variables (every live binding issues the same request, which
// the executor's wave dedup collapses to one call) and live_bindings
// otherwise; expected_tuples per call is the observed mean for keyed
// access, or the relation's cardinality estimate for a scan. The result:
// a relation observed to be slow gets its per-binding probes priced at
// the real latency, and the model flips to a scan-and-filter pattern (or
// reorders the literal later) when that is cheaper end-to-end.
class AdaptiveCostModel : public CostModel {
 public:
  // Does not take ownership of `stats`; it must outlive the model. A null
  // or empty catalog degrades gracefully to the defaults in `options`.
  explicit AdaptiveCostModel(const StatsCatalog* stats,
                             CardinalityEstimates estimates = {},
                             AdaptiveCostOptions options = {})
      : stats_(stats), estimates_(std::move(estimates)), options_(options) {}

  std::string name() const override { return "adaptive"; }
  double PatternCost(const Literal& literal, const AccessPattern& pattern,
                     const BoundVariables& bound,
                     const PlanContext& context) const override;
  LiteralScore ScoreLiteral(const Catalog& catalog, const Literal& literal,
                            const BoundVariables& bound,
                            const PlanContext& context) const override;
  double ExpectedFanout(const Literal& literal,
                        const BoundVariables& bound) const override;

  // The p50 latency the model will charge calls to `relation` — observed
  // if the stats catalog has the relation, the configured default
  // otherwise. Exposed for tests and --explain.
  double LatencyMicros(const std::string& relation) const;
  // Same, but preferring the (relation, pattern) keyed entry when the
  // catalog has one — a service's operations can have wildly different
  // latencies, and the pooled number would misprice both.
  double LatencyMicros(const std::string& relation,
                       const std::string& pattern_word) const;

  // 1 - the shared cache's observed hit rate for `relation`; 1.0 when no
  // shared cache is configured (every expected call is physical).
  double MissRate(const std::string& relation) const;

 private:
  // Expected tuples one call through `pattern` returns.
  double ExpectedTuplesPerCall(const Literal& literal,
                               const AccessPattern& pattern,
                               const BoundVariables& bound) const;

  const StatsCatalog* stats_;
  CardinalityEstimates estimates_;
  AdaptiveCostOptions options_;
};

// THE pattern-decision call site: picks, among the declared patterns of
// `literal`'s relation that are usable under `bound`, the one minimizing
// `model.PatternCost` (declaration order breaks ties). Returns nullopt if
// the relation is undeclared, has the wrong arity, has no usable pattern,
// or — for negative literals — some variable is unbound (a negated call
// can only filter, never bind; Definition 3). When `decision` is given,
// every declared pattern is recorded with its usability and cost for
// explain output.
std::optional<AccessPattern> ChoosePattern(const Catalog& catalog,
                                           const Literal& literal,
                                           const BoundVariables& bound,
                                           const CostModel& model,
                                           const PlanContext& context = {},
                                           PatternDecision* decision = nullptr);

// True when `a` schedules before `b`: filters first, then lower cost.
inline bool BetterLiteralScore(const LiteralScore& a, const LiteralScore& b) {
  if (a.filter != b.filter) return a.filter;
  return a.cost < b.cost;
}

// THE filter-placement predicate: a literal that cannot grow the binding
// set — a negation or a fully-bound positive — only shrinks it, so every
// consumer of the notion (both ScoreLiteral implementations scheduling
// filters first, and the DAG lowering classifying a literal as Filter /
// HashAntiJoin rather than a scan or join) must share this definition or
// the plan the explain dump shows and the chain the executor runs could
// disagree.
inline bool IsFilterLiteral(const Literal& literal,
                            const BoundVariables& bound) {
  return literal.negative() || AllVariablesBound(literal, bound);
}

}  // namespace ucqn

#endif  // UCQN_COST_COST_MODEL_H_
