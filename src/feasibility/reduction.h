#ifndef UCQN_FEASIBILITY_REDUCTION_H_
#define UCQN_FEASIBILITY_REDUCTION_H_

#include <string>

#include "ast/query.h"
#include "schema/catalog.h"

namespace ucqn {

// A feasibility instance produced by one of the Section 5 reductions: a
// query together with the catalog of access patterns it must be planned
// against.
struct FeasibilityInstance {
  UnionQuery query;
  Catalog catalog;
};

// Theorem 18 reduction CONT(UCQ¬) ≤ₘᴾ FEASIBLE(UCQ¬): builds
//
//   Q' :=  P₁,B(y) ∨ ... ∨ Pₖ,B(y)  ∨  Q
//
// where y is a fresh variable and B a fresh relation with access pattern
// Bⁱ, and every relation of P or Q gets the all-output pattern. Then
// ans(Q') ≡ P ∨ Q, and Q' is feasible iff P ⊑ Q.
//
// P and Q must have the same head arity (they are being compared for
// containment); the construction renames Q's head to P's so the union is
// well-formed. P must be non-empty (a containment with `false` on the left
// is trivially true and needs no reduction).
FeasibilityInstance ReduceContainmentToFeasibility(const UnionQuery& P,
                                                   const UnionQuery& Q);

// Proposition 20 reduction CONT(CQ¬) ≤ₘᴾ FEASIBLE(CQ¬): builds the single
// rule
//
//   L(x̄) := T(u), R̂'₁(u,x̄₁), ..., R̂'ₖ(u,x̄ₖ), Ŝ'₁(v,ȳ₁), ..., Ŝ'ₗ(v,ȳₗ)
//
// with fresh variables u, v, fresh relation T with pattern Tᵒ, and primed
// relations R' of arity 1+arity(R) with pattern R'^{io...o}. Then ans(L) is
// the T,R' part, and L is feasible iff P ⊑ Q. Q's variables are renamed so
// its head coincides with P's head and its existentials are disjoint from
// P's variables.
FeasibilityInstance ReduceCqnContainmentToFeasibility(
    const ConjunctiveQuery& P, const ConjunctiveQuery& Q);

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_REDUCTION_H_
