#include "feasibility/plan_star.h"

#include "util/strings.h"

namespace ucqn {

namespace {

// Replaces head variables that do not occur in the answerable body with
// null — the overestimate cannot return a value for them (Example 4).
ConjunctiveQuery NullPadHead(const ConjunctiveQuery& answerable) {
  BoundVariables in_body;
  for (const Literal& l : answerable.body()) BindVariables(l, &in_body);
  std::vector<Term> head = answerable.head_terms();
  for (Term& t : head) {
    if (t.IsVariable() && in_body.count(t.name()) == 0) t = Term::Null();
  }
  return ConjunctiveQuery(answerable.head_name(), std::move(head),
                          answerable.body());
}

}  // namespace

PlanStarResult PlanStar(const UnionQuery& q, const Catalog& catalog) {
  PlanStarResult result;
  for (const ConjunctiveQuery& qi : q.disjuncts()) {
    DisjunctPlan plan;
    plan.original = qi;
    AnswerablePart part = Answerable(qi, catalog);
    plan.unanswerable = part.unanswerable;
    if (part.IsFalse()) {
      // Unsatisfiable disjunct: contributes nothing to either plan.
      result.disjuncts.push_back(std::move(plan));
      continue;
    }
    plan.answerable = part.answerable;
    if (plan.unanswerable.empty()) {
      // Fully answerable: the reordered disjunct is exact.
      plan.under = part.answerable;
      plan.over = part.answerable;
      result.under.AddDisjunct(*plan.under);
      result.over.AddDisjunct(*plan.over);
    } else {
      // Unanswerable remainder: dismiss from Q^u, null-pad into Q^o.
      plan.over = NullPadHead(*part.answerable);
      result.over.AddDisjunct(*plan.over);
    }
    result.disjuncts.push_back(std::move(plan));
  }
  return result;
}

std::string PlanStarResult::ToString() const {
  std::string out = "# underestimate Q^u\n";
  out += under.ToString();
  out += "\n# overestimate Q^o\n";
  out += over.ToString();
  return out;
}

}  // namespace ucqn
