#ifndef UCQN_FEASIBILITY_LI_CHANG_H_
#define UCQN_FEASIBILITY_LI_CHANG_H_

#include "ast/query.h"
#include "containment/homomorphism.h"
#include "schema/catalog.h"

namespace ucqn {

// The four feasibility ("stability") algorithms of Li and Chang [LC01],
// reviewed in Sections 5.3/5.4 of the paper. They apply to negation-free
// queries only (CHECK-enforced) and serve as baselines: on CQ/UCQ inputs
// they must agree with the uniform FEASIBLE algorithm, which the tests and
// bench_baselines verify.

// CQstable: minimize Q to M ≡ Q, then check that M is orderable
// (ans(M) = M). Example 9.
bool CqStable(const ConjunctiveQuery& q, const Catalog& catalog,
              HomomorphismStats* stats = nullptr);

// CQstable*: compute ans(Q) and check ans(Q) ⊑ Q (plus safety of ans(Q)).
// Identical to FEASIBLE restricted to CQ; may skip the containment test
// when ans(Q) = Q.
bool CqStableStar(const ConjunctiveQuery& q, const Catalog& catalog,
                  HomomorphismStats* stats = nullptr);

// UCQstable: union-minimize Q to M ≡ Q, then require every disjunct of M
// feasible (via CQstable). Example 10.
bool UcqStable(const UnionQuery& q, const Catalog& catalog,
               HomomorphismStats* stats = nullptr);

// UCQstable*: let P be the union of the feasible disjuncts of Q (each
// tested via CQstable*); then Q is feasible iff Q ⊑ P (P ⊑ Q holds by
// construction). Example 10.
bool UcqStableStar(const UnionQuery& q, const Catalog& catalog,
                   HomomorphismStats* stats = nullptr);

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_LI_CHANG_H_
