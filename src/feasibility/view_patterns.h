#ifndef UCQN_FEASIBILITY_VIEW_PATTERNS_H_
#define UCQN_FEASIBILITY_VIEW_PATTERNS_H_

#include <vector>

#include "ast/query.h"
#include "containment/ucqn_containment.h"
#include "schema/catalog.h"

namespace ucqn {

// Derived access patterns for views: a mediator that exposes a UCQ¬ view
// over limited sources must itself advertise access patterns. A head
// adornment α is *supported* if the view, with the α-input head variables
// treated as given (callers supply them, like input message parts of a
// web-service operation), is feasible over the sources. The supported
// patterns are exactly what the view can be registered with in a higher
// catalog — this closes the loop of Section 1's "queries as declarative
// specifications for web service composition".
//
// Binding a head variable is modeled by substituting a fresh constant for
// it in every disjunct (a parameter), then running the ordinary
// feasibility test; equivalently each input head variable seeds the bound
// set B.

// Returns true if `q` is feasible when the head positions marked 'i' in
// `head_pattern` are supplied by the caller. Head positions holding
// constants are unaffected by the adornment. `head_pattern` must have the
// view's head arity.
bool FeasibleWithHeadPattern(const UnionQuery& q, const Catalog& catalog,
                             const AccessPattern& head_pattern,
                             const ContainmentOptions& options = {});

// All supported head adornments, in lexicographic order ('i' < 'o').
// Monotonicity ("bound is easier") is exploited: once a pattern is
// supported, every pattern with a superset of its input slots is supported
// without another feasibility run. The all-output row, when present,
// means the view is feasible outright. Exponential in the head arity by
// nature (2^arity candidates); view heads are small in practice.
std::vector<AccessPattern> SupportedHeadPatterns(
    const UnionQuery& q, const Catalog& catalog,
    const ContainmentOptions& options = {});

// The minimal supported adornments (no supported pattern has strictly
// fewer input slots at the same positions): the rows a mediator would
// actually advertise, everything else following by "bound is easier".
std::vector<AccessPattern> MinimalSupportedHeadPatterns(
    const UnionQuery& q, const Catalog& catalog,
    const ContainmentOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_VIEW_PATTERNS_H_
