#include "feasibility/li_chang.h"

#include "containment/cq_containment.h"
#include "containment/minimize.h"
#include "feasibility/answerable.h"
#include "util/logging.h"

namespace ucqn {

bool CqStable(const ConjunctiveQuery& q, const Catalog& catalog,
              HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!q.HasNegation(), "CqStable applies to CQ only");
  ConjunctiveQuery minimal = MinimizeCq(q, stats);
  return IsOrderable(minimal, catalog);
}

bool CqStableStar(const ConjunctiveQuery& q, const Catalog& catalog,
                  HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!q.HasNegation(), "CqStableStar applies to CQ only");
  AnswerablePart part = Answerable(q, catalog);
  // A CQ (no negation) is always satisfiable.
  const ConjunctiveQuery& ans = *part.answerable;
  if (!ans.IsSafe()) return false;  // some variable of Q is not answerable
  if (part.unanswerable.empty()) {
    // ans(Q) is Q reordered: feasible without any containment test, but the
    // head variables must all be bound (safety).
    return true;
  }
  return CqContained(ans, q, stats);
}

bool UcqStable(const UnionQuery& q, const Catalog& catalog,
               HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!q.HasNegation(), "UcqStable applies to UCQ only");
  UnionQuery minimal = MinimizeUcq(q, stats);
  for (const ConjunctiveQuery& disjunct : minimal.disjuncts()) {
    if (!CqStable(disjunct, catalog, stats)) return false;
  }
  return true;
}

bool UcqStableStar(const UnionQuery& q, const Catalog& catalog,
                   HomomorphismStats* stats) {
  UCQN_CHECK_MSG(!q.HasNegation(), "UcqStableStar applies to UCQ only");
  UnionQuery feasible_part;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (CqStableStar(disjunct, catalog, stats)) {
      feasible_part.AddDisjunct(disjunct);
    }
  }
  return UcqContained(q, feasible_part, stats);
}

}  // namespace ucqn
