#ifndef UCQN_FEASIBILITY_ANSWERABLE_H_
#define UCQN_FEASIBILITY_ANSWERABLE_H_

#include <optional>
#include <vector>

#include "ast/query.h"
#include "schema/adornment.h"
#include "schema/catalog.h"

namespace ucqn {

// Result of algorithm ANSWERABLE (Fig. 1) on one CQ¬ disjunct.
struct AnswerablePart {
  // ans(Q): the answerable literals of Q in the (executable) order chosen
  // by the algorithm. nullopt encodes the paper's `false` — Q was
  // unsatisfiable. When present, the query is executable whenever it is
  // safe (i.e. whenever the head variables all appear in it).
  std::optional<ConjunctiveQuery> answerable;
  // U = Q \ ans(Q): the unanswerable literals, in body order. Empty iff Q
  // is orderable (Proposition 1) or unsatisfiable.
  std::vector<Literal> unanswerable;
  // The variables bound by the answerable part (the final set B).
  BoundVariables bound;

  bool IsFalse() const { return !answerable.has_value(); }
};

// Algorithm ANSWERABLE (Fig. 1): computes ans(Q) for Q ∈ CQ¬ in quadratic
// time (Proposition 2). If Q is unsatisfiable, returns `false`
// (answerable == nullopt). Otherwise repeatedly adds any literal L with
// vars(L) ⊆ B, or positive L with invars(L) ⊆ B for some access pattern,
// binding its variables, until a fixpoint.
AnswerablePart Answerable(const ConjunctiveQuery& q, const Catalog& catalog);

// ans(Q) for unions (Definition 7): the union of the per-disjunct
// answerable parts, with `false` parts dropped.
UnionQuery Ans(const UnionQuery& q, const Catalog& catalog);

// Definition 6: literal L (not necessarily in Q) is Q-answerable iff some
// executable query can be assembled from L plus literals of Q — equivalently
// L can execute once ans(Q) has bound everything Q can bind.
bool IsLiteralAnswerable(const Literal& literal, const ConjunctiveQuery& q,
                         const Catalog& catalog);

// Proposition 1: Q is orderable iff every literal of Q is Q-answerable,
// i.e. the unanswerable part is empty. Unsatisfiable queries are orderable
// (ans(Q) = false is executable). Quadratic time (Corollary 3).
bool IsOrderable(const ConjunctiveQuery& q, const Catalog& catalog);
bool IsOrderable(const UnionQuery& q, const Catalog& catalog);

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_ANSWERABLE_H_
