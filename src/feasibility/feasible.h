#ifndef UCQN_FEASIBILITY_FEASIBLE_H_
#define UCQN_FEASIBILITY_FEASIBLE_H_

#include <string>

#include "ast/query.h"
#include "containment/ucqn_containment.h"
#include "feasibility/plan_star.h"
#include "schema/catalog.h"

namespace ucqn {

// How algorithm FEASIBLE (Fig. 3) reached its verdict. The first two paths
// are quadratic-time; only the last one pays the Π₂ᴾ containment price.
enum class FeasibleDecisionPath {
  kPlansEqual,         // Q^u = Q^o: orderable, hence feasible
  kNullInOverestimate, // Q^o carries null: ans(Q) unsafe, hence infeasible
  kContainment,        // decided by the ans(Q) ⊑ Q check (Corollary 17)
};

// Converts the decision path to a short label for reports.
std::string ToString(FeasibleDecisionPath path);

struct FeasibleResult {
  bool feasible = false;
  FeasibleDecisionPath path = FeasibleDecisionPath::kPlansEqual;
  // The PLAN* output; plans.over is the minimal feasible query containing Q
  // (Theorem 16), so it doubles as the executable rewriting when feasible.
  PlanStarResult plans;
  // Populated only when the containment path ran.
  ContainmentStats containment_stats;
};

// Algorithm FEASIBLE (Fig. 3) for UCQ¬: runs PLAN*, short-circuits on
// Q^u = Q^o (feasible) or nulls in Q^o (infeasible), and otherwise decides
// by the containment test ans(Q) = Q^o ⊑ Q, which is exact by Theorem 16 /
// Corollary 17. Optimal for each of CQ, UCQ, CQ¬, UCQ¬ (Section 5).
FeasibleResult Feasible(const UnionQuery& q, const Catalog& catalog,
                        const ContainmentOptions& options = {});

// Convenience wrapper for a single CQ¬ rule.
FeasibleResult Feasible(const ConjunctiveQuery& q, const Catalog& catalog,
                        const ContainmentOptions& options = {});

// True iff `q` is feasible; discards the diagnostics.
bool IsFeasible(const UnionQuery& q, const Catalog& catalog,
                const ContainmentOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_FEASIBLE_H_
