#include "feasibility/view_patterns.h"

#include <algorithm>

#include "ast/substitution.h"
#include "feasibility/feasible.h"
#include "util/logging.h"

namespace ucqn {

namespace {

// Binds the 'i'-marked head variables of one disjunct to shared parameter
// constants (@p0, @p1, ...). The first occurrence of a repeated head
// variable wins — the caller supplies one value per variable.
ConjunctiveQuery BindHeadParameters(const ConjunctiveQuery& disjunct,
                                    const AccessPattern& head_pattern) {
  Substitution params;
  const std::vector<Term>& head = disjunct.head_terms();
  for (std::size_t j = 0; j < head.size(); ++j) {
    if (!head_pattern.IsInputSlot(j)) continue;
    const Term& t = head[j];
    if (!t.IsVariable() || params.IsBound(t)) continue;
    params.Bind(t, Term::Constant("@p" + std::to_string(j)));
  }
  return disjunct.Substitute(params);
}

// True iff inputs(a) ⊆ inputs(b), i.e. b binds at least everything a does.
bool InputsSubset(const AccessPattern& a, const AccessPattern& b) {
  for (std::size_t j = 0; j < a.arity(); ++j) {
    if (a.IsInputSlot(j) && !b.IsInputSlot(j)) return false;
  }
  return true;
}

}  // namespace

bool FeasibleWithHeadPattern(const UnionQuery& q, const Catalog& catalog,
                             const AccessPattern& head_pattern,
                             const ContainmentOptions& options) {
  if (q.IsFalseQuery()) return true;
  UCQN_CHECK_MSG(head_pattern.arity() == q.head_arity(),
                 "head pattern arity must match the view head");
  UnionQuery parameterized;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    parameterized.AddDisjunct(BindHeadParameters(disjunct, head_pattern));
  }
  return IsFeasible(parameterized, catalog, options);
}

std::vector<AccessPattern> SupportedHeadPatterns(
    const UnionQuery& q, const Catalog& catalog,
    const ContainmentOptions& options) {
  if (q.IsFalseQuery()) return {};
  const std::size_t arity = q.head_arity();
  UCQN_CHECK_MSG(arity < 20, "head arity too large to enumerate adornments");

  // Enumerate candidates by increasing input count so "bound is easier"
  // monotonicity short-circuits the supersets of known-supported patterns.
  std::vector<std::uint32_t> masks;
  for (std::uint32_t mask = 0; mask < (1u << arity); ++mask) {
    masks.push_back(mask);
  }
  std::stable_sort(masks.begin(), masks.end(),
                   [](std::uint32_t a, std::uint32_t b) {
                     return __builtin_popcount(a) < __builtin_popcount(b);
                   });

  std::vector<AccessPattern> supported;
  for (std::uint32_t mask : masks) {
    std::string word(arity, 'o');
    for (std::size_t j = 0; j < arity; ++j) {
      if (mask & (1u << j)) word[j] = 'i';
    }
    AccessPattern candidate = AccessPattern::MustParse(word);
    bool implied = false;
    for (const AccessPattern& p : supported) {
      if (InputsSubset(p, candidate)) {
        implied = true;
        break;
      }
    }
    if (implied || FeasibleWithHeadPattern(q, catalog, candidate, options)) {
      supported.push_back(std::move(candidate));
    }
  }
  std::sort(supported.begin(), supported.end());
  return supported;
}

std::vector<AccessPattern> MinimalSupportedHeadPatterns(
    const UnionQuery& q, const Catalog& catalog,
    const ContainmentOptions& options) {
  std::vector<AccessPattern> supported =
      SupportedHeadPatterns(q, catalog, options);
  std::vector<AccessPattern> minimal;
  for (const AccessPattern& p : supported) {
    bool dominated = false;
    for (const AccessPattern& other : supported) {
      if (other != p && InputsSubset(other, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(p);
  }
  return minimal;
}

}  // namespace ucqn
