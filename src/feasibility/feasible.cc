#include "feasibility/feasible.h"

namespace ucqn {

std::string ToString(FeasibleDecisionPath path) {
  switch (path) {
    case FeasibleDecisionPath::kPlansEqual:
      return "plans-equal";
    case FeasibleDecisionPath::kNullInOverestimate:
      return "null-in-overestimate";
    case FeasibleDecisionPath::kContainment:
      return "containment";
  }
  return "unknown";
}

FeasibleResult Feasible(const UnionQuery& q, const Catalog& catalog,
                        const ContainmentOptions& options) {
  FeasibleResult result;
  result.plans = PlanStar(q, catalog);
  if (result.plans.PlansEqual()) {
    result.feasible = true;
    result.path = FeasibleDecisionPath::kPlansEqual;
    return result;
  }
  if (result.plans.over.ContainsNull()) {
    // Some head variable occurs only in an unanswerable part, so ans(Q) is
    // unsafe and no executable equivalent exists.
    result.feasible = false;
    result.path = FeasibleDecisionPath::kNullInOverestimate;
    return result;
  }
  // Q ⊑ Q^o always holds (Proposition 4); Q is feasible iff Q^o ⊑ Q
  // (Corollary 17, with Q^o = ans(Q) minus unsatisfiable disjuncts).
  result.path = FeasibleDecisionPath::kContainment;
  result.feasible =
      Contained(result.plans.over, q, &result.containment_stats, options);
  return result;
}

FeasibleResult Feasible(const ConjunctiveQuery& q, const Catalog& catalog,
                        const ContainmentOptions& options) {
  return Feasible(UnionQuery(q), catalog, options);
}

bool IsFeasible(const UnionQuery& q, const Catalog& catalog,
                const ContainmentOptions& options) {
  return Feasible(q, catalog, options).feasible;
}

}  // namespace ucqn
