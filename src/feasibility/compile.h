#ifndef UCQN_FEASIBILITY_COMPILE_H_
#define UCQN_FEASIBILITY_COMPILE_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "constraints/inclusion.h"
#include "feasibility/feasible.h"
#include "schema/catalog.h"

namespace ucqn {

// One executable rule with its chosen adornments — what a mediator ships
// to its execution engine.
struct CompiledRule {
  ConjunctiveQuery rule;
  std::vector<AccessPattern> adornments;

  // Renders the adorned form, e.g. `Q(i,a,t) :- C^oo(i,a), B^ioo(i,a,t).`
  std::string ToString() const;
};

// Why a literal of some disjunct is unanswerable — the "view debugging"
// payload (Section 4.1): which variables can never be bound, and which
// access pattern, if the source offered it, would unblock the literal.
struct UnanswerableDiagnosis {
  // The disjunct (original body order) the literal belongs to.
  std::size_t disjunct_index = 0;
  Literal literal;
  // Variables of the literal that no orderable prefix can bind.
  std::vector<Term> blocked_variables;
  // For positive literals: a pattern that would make the literal
  // answerable given everything the rest of the disjunct can bind ('i'
  // exactly on slots already bindable). nullopt for negative literals —
  // no pattern can make a negated call produce bindings.
  std::optional<AccessPattern> suggested_pattern;

  std::string ToString() const;
};

struct CompileOptions {
  ContainmentOptions containment;
  // Optional integrity constraints driving two semantic optimizations,
  // both equivalence-preserving on constraint-satisfying instances:
  //   1. disjuncts refuted under the constraints are pruned (Example 6),
  //   2. each surviving disjunct is chased — implied atoms are added to
  //      the body, which can bind otherwise-unreachable variables and
  //      turn infeasible queries feasible (see constraints/inclusion.h).
  const ConstraintSet* constraints = nullptr;
  // Disables optimization 2 while keeping the pruning (for the ablation
  // in bench_constraints and for callers that want plans textually close
  // to the original query).
  bool chase = true;
};

// The full compile-time story for one query: feasibility verdict with the
// decision path, both PLAN* plans in executable (adorned) form, and a
// diagnosis of every unanswerable literal.
struct CompileResult {
  bool feasible = false;
  FeasibleDecisionPath path = FeasibleDecisionPath::kPlansEqual;
  // The query actually analyzed (after constraint pruning, if any).
  UnionQuery analyzed_query;
  // Adorned executable forms of Q^u and Q^o. When feasible, `over` IS the
  // equivalent executable rewriting (Theorem 16: ans(Q) is the minimal
  // feasible query containing Q).
  std::vector<CompiledRule> under;
  std::vector<CompiledRule> over;
  std::vector<UnanswerableDiagnosis> diagnostics;
  ContainmentStats containment_stats;
  // Number of disjuncts removed by constraint pruning.
  std::size_t pruned_disjuncts = 0;
  // When feasibility was decided by the containment step, one Theorem 13
  // witness per overestimate disjunct certifying ans(Q) ⊑ Q — the
  // machine-checkable "why" behind a containment-path verdict.
  std::vector<ContainmentWitness> witnesses;

  // A human-readable report of everything above.
  std::string Report() const;
};

// Compiles `q` against `catalog`: constraint pruning, PLAN*, feasibility,
// adornment of both plans, and unanswerability diagnostics.
CompileResult Compile(const UnionQuery& q, const Catalog& catalog,
                      const CompileOptions& options = {});

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_COMPILE_H_
