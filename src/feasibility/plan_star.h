#ifndef UCQN_FEASIBILITY_PLAN_STAR_H_
#define UCQN_FEASIBILITY_PLAN_STAR_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "feasibility/answerable.h"
#include "schema/catalog.h"

namespace ucqn {

// Per-disjunct output of algorithm PLAN* (Fig. 2).
struct DisjunctPlan {
  // The original disjunct Qᵢ.
  ConjunctiveQuery original;
  // Aᵢ = ans(Qᵢ) and Uᵢ = Qᵢ \ Aᵢ; answerable is nullopt when Qᵢ is
  // unsatisfiable (ans = false).
  std::optional<ConjunctiveQuery> answerable;
  std::vector<Literal> unanswerable;
  // Qᵢᵘ: Aᵢ when Uᵢ is empty, otherwise nullopt — the disjunct is dismissed
  // from the underestimate ("Qᵢᵘ ⟵ false").
  std::optional<ConjunctiveQuery> under;
  // Qᵢᵒ: Aᵢ with head variables that do not occur in Aᵢ replaced by null
  // ("benefit of the doubt" for Uᵢ); nullopt only when Qᵢ is unsatisfiable.
  std::optional<ConjunctiveQuery> over;
};

// Output of PLAN*: the underestimate and overestimate plans, plus the
// per-disjunct detail the runtime algorithms need.
struct PlanStarResult {
  UnionQuery under;  // Q^u, executable; Q^u ⊑ Q always
  UnionQuery over;   // Q^o; Q ⊑ Q^o modulo null-padded columns
  std::vector<DisjunctPlan> disjuncts;

  // If the two plans coincide, Q is orderable and hence feasible — the
  // cheap compile-time certificate FEASIBLE checks first.
  bool PlansEqual() const { return under == over; }

  // Human-readable dump of both plans, for diagnostics and examples.
  std::string ToString() const;
};

// Algorithm PLAN* (Fig. 2): computes executable under-/over-estimate plans
// for a UCQ¬ query in quadratic time. For every disjunct, the answerable
// part becomes the plan body; disjuncts with unanswerable literals are
// dropped from Q^u and null-padded in Q^o.
PlanStarResult PlanStar(const UnionQuery& q, const Catalog& catalog);

}  // namespace ucqn

#endif  // UCQN_FEASIBILITY_PLAN_STAR_H_
