#include "feasibility/reduction.h"

#include <set>

#include "util/logging.h"

namespace ucqn {

namespace {

// Returns a relation name based on `stem` that is not in `used`.
std::string FreshRelationName(const std::set<std::string>& used,
                              const std::string& stem) {
  if (used.count(stem) == 0) return stem;
  int suffix = 0;
  while (true) {
    std::string candidate = stem + std::to_string(suffix++);
    if (used.count(candidate) == 0) return candidate;
  }
}

// Returns a variable name not used by any query in scope, based on `stem`.
std::string FreshVariableName(const std::set<std::string>& used,
                              const std::string& stem) {
  if (used.count(stem) == 0) return stem;
  int suffix = 0;
  while (true) {
    std::string candidate = stem + std::to_string(suffix++);
    if (used.count(candidate) == 0) return candidate;
  }
}

std::set<std::string> VariableNames(const ConjunctiveQuery& q) {
  std::set<std::string> names;
  for (const Term& t : q.AllVariables()) names.insert(t.name());
  return names;
}

void DeclareQueryRelations(const ConjunctiveQuery& q, Catalog* catalog) {
  for (const Literal& l : q.body()) {
    RelationSchema& schema =
        catalog->AddRelation(l.relation(), l.atom().arity());
    schema.AddPattern(AccessPattern::AllOutput(l.atom().arity()));
  }
}

}  // namespace

FeasibilityInstance ReduceContainmentToFeasibility(const UnionQuery& P,
                                                   const UnionQuery& Q) {
  UCQN_CHECK_MSG(!P.IsFalseQuery(),
                 "reduction requires a non-empty left-hand side");
  UCQN_CHECK_MSG(Q.IsFalseQuery() || Q.head_arity() == P.head_arity(),
                 "containment requires equal head arities");

  std::set<std::string> relations = P.RelationNames();
  std::set<std::string> q_relations = Q.RelationNames();
  relations.insert(q_relations.begin(), q_relations.end());
  const std::string b_name = FreshRelationName(relations, "B_");

  std::set<std::string> variables;
  for (const ConjunctiveQuery& d : P.disjuncts()) {
    std::set<std::string> names = VariableNames(d);
    variables.insert(names.begin(), names.end());
  }
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    std::set<std::string> names = VariableNames(d);
    variables.insert(names.begin(), names.end());
  }
  const Term y = Term::Variable(FreshVariableName(variables, "y_"));

  FeasibilityInstance instance;
  const std::string& head_name = P.head_name();

  // P' := P₁,B(y) ∨ ... ∨ Pₖ,B(y) — strictly contained in P, not feasible
  // because Bⁱ can never be called (y is never bound).
  for (const ConjunctiveQuery& d : P.disjuncts()) {
    ConjunctiveQuery primed =
        d.WithExtraLiteral(Literal::Positive(Atom(b_name, {y})));
    instance.query.AddDisjunct(std::move(primed));
    DeclareQueryRelations(d, &instance.catalog);
  }
  // ∨ Q, with Q's head renamed to match P's.
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    instance.query.AddDisjunct(
        ConjunctiveQuery(head_name, d.head_terms(), d.body()));
    DeclareQueryRelations(d, &instance.catalog);
  }

  instance.catalog.AddRelation(b_name, 1).AddPattern(AccessPattern::AllInput(1));
  return instance;
}

FeasibilityInstance ReduceCqnContainmentToFeasibility(
    const ConjunctiveQuery& P, const ConjunctiveQuery& Q) {
  UCQN_CHECK_MSG(P.head_arity() == Q.head_arity(),
                 "containment requires equal head arities");

  // Rename Q apart from P, then identify Q's head with P's head
  // positionally (the containment mapping is the identity on free
  // variables, which positional heads encode).
  ConjunctiveQuery q_renamed = Q.RenameVariables("_q");
  Substitution align;
  for (std::size_t i = 0; i < q_renamed.head_terms().size(); ++i) {
    const Term& qt = q_renamed.head_terms()[i];
    const Term& pt = P.head_terms()[i];
    if (qt.IsVariable()) {
      UCQN_CHECK_MSG(align.Bind(qt, pt),
                     "repeated head variables must align consistently");
    } else {
      UCQN_CHECK_MSG(qt == pt, "constant heads must agree for containment");
    }
  }
  q_renamed = q_renamed.Substitute(align);

  std::set<std::string> relations = P.RelationNames();
  std::set<std::string> q_rel = Q.RelationNames();
  relations.insert(q_rel.begin(), q_rel.end());
  const std::string t_name = FreshRelationName(relations, "T_");

  std::set<std::string> variables = VariableNames(P);
  std::set<std::string> q_vars = VariableNames(q_renamed);
  variables.insert(q_vars.begin(), q_vars.end());
  const Term u = Term::Variable(FreshVariableName(variables, "u_"));
  variables.insert(u.name());
  const Term v = Term::Variable(FreshVariableName(variables, "v_"));

  // Prime each relation R to R' with an extra leading "session" argument
  // and the access pattern io...o; the primed name is a function of the
  // relation name, shared between P-literals and Q-literals.
  FeasibilityInstance instance;
  auto prime = [&relations](const std::string& name) {
    return FreshRelationName(relations, name + "_p");
  };

  std::vector<Literal> body;
  body.push_back(Literal::Positive(Atom(t_name, {u})));
  auto add_primed = [&](const Literal& l, const Term& session) {
    std::vector<Term> args;
    args.reserve(l.args().size() + 1);
    args.push_back(session);
    for (const Term& t : l.args()) args.push_back(t);
    std::string primed_name = prime(l.relation());
    body.push_back(Literal(Atom(primed_name, std::move(args)), l.positive()));
    RelationSchema& schema =
        instance.catalog.AddRelation(primed_name, l.args().size() + 1);
    std::string word = "i" + std::string(l.args().size(), 'o');
    schema.AddPattern(AccessPattern::MustParse(word));
  };
  for (const Literal& l : P.body()) add_primed(l, u);
  for (const Literal& l : q_renamed.body()) add_primed(l, v);

  instance.catalog.AddRelation(t_name, 1).AddPattern(
      AccessPattern::AllOutput(1));

  instance.query.AddDisjunct(
      ConjunctiveQuery("L_", P.head_terms(), std::move(body)));
  return instance;
}

}  // namespace ucqn
