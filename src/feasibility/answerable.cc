#include "feasibility/answerable.h"

#include <algorithm>

namespace ucqn {

AnswerablePart Answerable(const ConjunctiveQuery& q, const Catalog& catalog) {
  AnswerablePart result;
  if (q.IsUnsatisfiable()) {
    // ans(Q) = false; there is nothing unanswerable about a query that
    // returns no tuples.
    return result;
  }
  const std::vector<Literal>& body = q.body();
  std::vector<bool> taken(body.size(), false);
  std::vector<Literal> ordered;
  BoundVariables bound;
  bool done = false;
  while (!done) {
    done = true;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (taken[i]) continue;
      if (!CanExecuteNext(catalog, body[i], bound)) continue;
      taken[i] = true;
      ordered.push_back(body[i]);
      BindVariables(body[i], &bound);
      done = false;
    }
  }
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!taken[i]) result.unanswerable.push_back(body[i]);
  }
  result.answerable = q.WithBody(std::move(ordered));
  result.bound = std::move(bound);
  return result;
}

UnionQuery Ans(const UnionQuery& q, const Catalog& catalog) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    AnswerablePart part = Answerable(disjunct, catalog);
    if (!part.IsFalse()) out.AddDisjunct(std::move(*part.answerable));
  }
  return out;
}

bool IsLiteralAnswerable(const Literal& literal, const ConjunctiveQuery& q,
                         const Catalog& catalog) {
  // The bound set of ans(Q) is the closure of everything literals of Q can
  // bind; "bound is easier" makes executability monotone in B, so L is
  // Q-answerable iff it can execute against that closure. Unsatisfiable Q
  // contributes ans(Q) = false, which binds nothing.
  AnswerablePart part = Answerable(q, catalog);
  return CanExecuteNext(catalog, literal, part.bound);
}

bool IsOrderable(const ConjunctiveQuery& q, const Catalog& catalog) {
  if (q.IsUnsatisfiable()) return true;  // equivalent to executable `false`
  if (q.IsTrueQuery()) return false;     // `true` is not executable
  AnswerablePart part = Answerable(q, catalog);
  if (!part.unanswerable.empty()) return false;
  // All literals answerable; the reordering is executable provided it is
  // safe (head variables bound).
  for (const Term& v : q.AllVariables()) {
    if (part.bound.count(v.name()) == 0) return false;
  }
  return true;
}

bool IsOrderable(const UnionQuery& q, const Catalog& catalog) {
  return std::all_of(q.disjuncts().begin(), q.disjuncts().end(),
                     [&](const ConjunctiveQuery& disjunct) {
                       return IsOrderable(disjunct, catalog);
                     });
}

}  // namespace ucqn
