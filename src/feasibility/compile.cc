#include "feasibility/compile.h"

#include "feasibility/answerable.h"
#include "schema/adornment.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

std::string CompiledRule::ToString() const {
  return AdornedToString(rule, adornments);
}

std::string UnanswerableDiagnosis::ToString() const {
  std::string out = "disjunct " + std::to_string(disjunct_index) +
                    ": unanswerable " + literal.ToString();
  if (!blocked_variables.empty()) {
    std::vector<std::string> names;
    names.reserve(blocked_variables.size());
    for (const Term& v : blocked_variables) names.push_back(v.ToString());
    out += " (cannot bind " + StrJoin(names, ", ") + ")";
  }
  if (suggested_pattern.has_value()) {
    out += "; pattern " + literal.relation() + "^" +
           suggested_pattern->word() + " would unblock it";
  } else if (literal.negative()) {
    out += "; a negated call can only filter — its variables must be bound "
           "by positive literals";
  }
  return out;
}

namespace {

std::vector<CompiledRule> AdornPlan(const UnionQuery& plan,
                                    const Catalog& catalog) {
  std::vector<CompiledRule> rules;
  rules.reserve(plan.size());
  for (const ConjunctiveQuery& rule : plan.disjuncts()) {
    std::optional<std::vector<AccessPattern>> adornments =
        ComputeAdornments(rule, catalog);
    // PLAN* output is executable by construction, except for the
    // empty-body "benefit of the doubt" rows, which carry no adornments.
    if (!adornments.has_value()) {
      UCQN_CHECK_MSG(rule.IsTrueQuery(),
                     "PLAN* produced a non-executable non-trivial rule");
      adornments.emplace();
    }
    rules.push_back(CompiledRule{rule, std::move(*adornments)});
  }
  return rules;
}

UnanswerableDiagnosis Diagnose(std::size_t disjunct_index,
                               const Literal& literal,
                               const BoundVariables& closure,
                               const Catalog& catalog) {
  UnanswerableDiagnosis diag;
  diag.disjunct_index = disjunct_index;
  diag.literal = literal;
  for (const Term& v : literal.Variables()) {
    if (closure.count(v.name()) == 0) diag.blocked_variables.push_back(v);
  }
  if (literal.positive() && catalog.Find(literal.relation()) != nullptr) {
    // The pattern with 'i' exactly on the slots the rest of the disjunct
    // can supply: the weakest capability that would unblock this literal.
    std::string word;
    const std::vector<Term>& args = literal.args();
    for (const Term& arg : args) {
      const bool bindable =
          arg.IsGround() || closure.count(arg.name()) > 0;
      word += bindable ? 'i' : 'o';
    }
    diag.suggested_pattern = AccessPattern::MustParse(word);
  }
  return diag;
}

}  // namespace

CompileResult Compile(const UnionQuery& q, const Catalog& catalog,
                      const CompileOptions& options) {
  CompileResult result;
  result.analyzed_query = q;
  if (options.constraints != nullptr) {
    result.analyzed_query =
        PruneWithConstraints(result.analyzed_query, *options.constraints);
    if (options.chase) {
      result.analyzed_query =
          ChaseQuery(result.analyzed_query, *options.constraints);
    }
  }
  result.pruned_disjuncts = q.size() - result.analyzed_query.size();

  FeasibleResult feasible =
      Feasible(result.analyzed_query, catalog, options.containment);
  result.feasible = feasible.feasible;
  result.path = feasible.path;
  result.containment_stats = feasible.containment_stats;
  result.under = AdornPlan(feasible.plans.under, catalog);
  result.over = AdornPlan(feasible.plans.over, catalog);

  if (result.feasible && result.path == FeasibleDecisionPath::kContainment) {
    for (const ConjunctiveQuery& disjunct :
         feasible.plans.over.disjuncts()) {
      std::optional<ContainmentWitness> witness = ContainedWithWitness(
          disjunct, result.analyzed_query, nullptr, options.containment);
      UCQN_CHECK_MSG(witness.has_value(),
                     "containment verdict without a witness");
      result.witnesses.push_back(std::move(*witness));
    }
  }

  for (std::size_t i = 0; i < feasible.plans.disjuncts.size(); ++i) {
    const DisjunctPlan& plan = feasible.plans.disjuncts[i];
    if (plan.unanswerable.empty()) continue;
    // The closure of bindable variables for this disjunct.
    AnswerablePart part = Answerable(plan.original, catalog);
    for (const Literal& literal : plan.unanswerable) {
      result.diagnostics.push_back(Diagnose(i, literal, part.bound, catalog));
    }
  }
  return result;
}

std::string CompileResult::Report() const {
  std::string out;
  out += "feasible: ";
  out += feasible ? "yes" : "no";
  out += " (decided by " + ucqn::ToString(path) + ")\n";
  if (pruned_disjuncts > 0) {
    out += std::to_string(pruned_disjuncts) +
           " disjunct(s) pruned by integrity constraints\n";
  }
  out += "# underestimate plan Q^u\n";
  if (under.empty()) out += "false.\n";
  for (const CompiledRule& rule : under) out += rule.ToString() + "\n";
  out += "# overestimate plan Q^o";
  out += feasible ? " (equivalent executable rewriting)\n" : "\n";
  if (over.empty()) out += "false.\n";
  for (const CompiledRule& rule : over) out += rule.ToString() + "\n";
  if (!diagnostics.empty()) {
    out += "# unanswerable literals\n";
    for (const UnanswerableDiagnosis& diag : diagnostics) {
      out += diag.ToString() + "\n";
    }
  }
  if (!witnesses.empty()) {
    out += "# containment witnesses (ans(Q) ⊑ Q)\n";
    for (std::size_t i = 0; i < witnesses.size(); ++i) {
      out += "rewriting rule " + std::to_string(i) + ":\n" +
             witnesses[i].ToString(1) + "\n";
    }
  }
  return out;
}

}  // namespace ucqn
