#ifndef UCQN_SCHEMA_RELATION_SCHEMA_H_
#define UCQN_SCHEMA_RELATION_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "schema/access_pattern.h"

namespace ucqn {

// A relation together with its set of supported access patterns — the
// paper's model of "a family of web service operations over k attributes"
// (Section 1). A relation with no patterns exists in the schema but cannot
// be called at all.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  std::size_t arity() const { return arity_; }
  const std::vector<AccessPattern>& patterns() const { return patterns_; }

  // Adds `pattern` (deduplicated). CHECK-fails on arity mismatch.
  void AddPattern(const AccessPattern& pattern);

  bool HasPattern(const AccessPattern& pattern) const;

  // True if some pattern has no input slots, i.e. the relation can be
  // scanned without providing any values.
  bool HasFullScanPattern() const;

  // Optional advertised cardinality (service metadata) for the cost-aware
  // planner; see CardinalityEstimates::FromCatalog.
  const std::optional<double>& cardinality() const { return cardinality_; }
  void set_cardinality(double cardinality) { cardinality_ = cardinality; }

  // Renders e.g. "B/3: ioo oio" or, with metadata, "B/3: ioo oio @5000".
  std::string ToString() const;

 private:
  std::string name_;
  std::size_t arity_ = 0;
  std::vector<AccessPattern> patterns_;
  std::optional<double> cardinality_;
};

}  // namespace ucqn

#endif  // UCQN_SCHEMA_RELATION_SCHEMA_H_
