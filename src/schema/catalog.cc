#include "schema/catalog.h"

#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

RelationSchema& Catalog::AddRelation(const std::string& name,
                                     std::size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    UCQN_CHECK_MSG(it->second.arity() == arity,
                   "relation redeclared with different arity");
    return it->second;
  }
  auto [inserted, ok] = relations_.emplace(name, RelationSchema(name, arity));
  UCQN_CHECK(ok);
  return inserted->second;
}

void Catalog::AddPattern(const std::string& name, std::string_view word) {
  AccessPattern pattern = AccessPattern::MustParse(word);
  RelationSchema& schema = AddRelation(name, pattern.arity());
  schema.AddPattern(pattern);
}

const RelationSchema* Catalog::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

std::vector<const RelationSchema*> Catalog::Relations() const {
  std::vector<const RelationSchema*> out;
  out.reserve(relations_.size());
  for (const auto& [name, schema] : relations_) out.push_back(&schema);
  return out;
}

bool Catalog::CoversQuery(const ConjunctiveQuery& q, std::string* error) const {
  for (const Literal& l : q.body()) {
    const RelationSchema* schema = Find(l.relation());
    if (schema == nullptr) {
      if (error != nullptr) *error = "undeclared relation " + l.relation();
      return false;
    }
    if (schema->arity() != l.atom().arity()) {
      if (error != nullptr) {
        *error = "relation " + l.relation() + " used with arity " +
                 std::to_string(l.atom().arity()) + ", declared " +
                 std::to_string(schema->arity());
      }
      return false;
    }
  }
  return true;
}

bool Catalog::CoversQuery(const UnionQuery& q, std::string* error) const {
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (!CoversQuery(disjunct, error)) return false;
  }
  return true;
}

Catalog Catalog::WithAllOutputPatterns(bool replace) const {
  Catalog out;
  for (const auto& [name, schema] : relations_) {
    RelationSchema& copy = out.AddRelation(name, schema.arity());
    if (!replace) {
      for (const AccessPattern& p : schema.patterns()) copy.AddPattern(p);
    }
    copy.AddPattern(AccessPattern::AllOutput(schema.arity()));
  }
  return out;
}

namespace {

// True iff every input slot of `a` is an input slot of `b`.
bool InputsSubset(const AccessPattern& a, const AccessPattern& b) {
  for (std::size_t j = 0; j < a.arity(); ++j) {
    if (a.IsInputSlot(j) && !b.IsInputSlot(j)) return false;
  }
  return true;
}

}  // namespace

Catalog Catalog::Normalized() const {
  Catalog out;
  for (const auto& [name, schema] : relations_) {
    RelationSchema& copy = out.AddRelation(name, schema.arity());
    for (const AccessPattern& p : schema.patterns()) {
      bool dominated = false;
      for (const AccessPattern& other : schema.patterns()) {
        if (other != p && InputsSubset(other, p)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) copy.AddPattern(p);
    }
  }
  return out;
}

std::optional<Catalog> Catalog::Parse(std::string_view text,
                                      std::string* error) {
  Catalog catalog;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::size_t comment = line.find_first_of("#%");
    if (comment != std::string::npos) line.resize(comment);
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped.substr(0, 9) == "relation " ||
        stripped.substr(0, 9) == "relation\t") {
      stripped = StripWhitespace(stripped.substr(9));
    }
    std::size_t colon = stripped.find(':');
    if (colon == std::string_view::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": expected ':'";
      }
      return std::nullopt;
    }
    std::string_view decl = StripWhitespace(stripped.substr(0, colon));
    std::size_t slash = decl.find('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 >= decl.size()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) +
                 ": expected name/arity before ':'";
      }
      return std::nullopt;
    }
    std::string name(StripWhitespace(decl.substr(0, slash)));
    std::string arity_text(StripWhitespace(decl.substr(slash + 1)));
    std::size_t arity = 0;
    for (char c : arity_text) {
      if (c < '0' || c > '9') {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_number) + ": bad arity";
        }
        return std::nullopt;
      }
      arity = arity * 10 + static_cast<std::size_t>(c - '0');
    }
    RelationSchema& schema = catalog.AddRelation(name, arity);
    for (const std::string& word :
         SplitAndTrim(stripped.substr(colon + 1), ' ')) {
      // "@N" annotates the relation's advertised cardinality.
      if (word[0] == '@') {
        double cardinality = 0;
        bool numeric = word.size() > 1;
        for (std::size_t i = 1; i < word.size(); ++i) {
          if (word[i] < '0' || word[i] > '9') {
            numeric = false;
            break;
          }
          cardinality = cardinality * 10 + (word[i] - '0');
        }
        if (!numeric) {
          if (error != nullptr) {
            *error = "line " + std::to_string(line_number) +
                     ": bad cardinality '" + word + "'";
          }
          return std::nullopt;
        }
        schema.set_cardinality(cardinality);
        continue;
      }
      std::optional<AccessPattern> pattern = AccessPattern::FromString(word);
      if (!pattern.has_value() || pattern->arity() != arity) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_number) +
                   ": bad access pattern '" + word + "'";
        }
        return std::nullopt;
      }
      schema.AddPattern(*pattern);
    }
  }
  return catalog;
}

Catalog Catalog::MustParse(std::string_view text) {
  std::string error;
  std::optional<Catalog> catalog = Parse(text, &error);
  UCQN_CHECK_MSG(catalog.has_value(), error.c_str());
  return std::move(*catalog);
}

std::string Catalog::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(relations_.size());
  for (const auto& [name, schema] : relations_) {
    lines.push_back(schema.ToString());
  }
  return StrJoin(lines, "\n");
}

}  // namespace ucqn
