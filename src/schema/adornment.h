#ifndef UCQN_SCHEMA_ADORNMENT_H_
#define UCQN_SCHEMA_ADORNMENT_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/query.h"
#include "schema/catalog.h"

namespace ucqn {

// The set of variables (by name) bound so far during left-to-right plan
// construction — the set B of algorithm ANSWERABLE (Fig. 1).
using BoundVariables = std::unordered_set<std::string>;

// Inserts the variables of `literal` into `bound`.
void BindVariables(const Literal& literal, BoundVariables* bound);

// True if every variable of `literal` is in `bound`.
bool AllVariablesBound(const Literal& literal, const BoundVariables& bound);

// Variables of `literal` sitting in input slots of `pattern` — the paper's
// invars(L) for a given adornment.
std::vector<Term> InputVariables(const Literal& literal,
                                 const AccessPattern& pattern);

// True if `pattern` can be used to call `literal` given `bound`: every
// input slot must hold a ground term or a bound variable.
bool PatternUsable(const Literal& literal, const AccessPattern& pattern,
                   const BoundVariables& bound);

// How the executor picks among multiple usable patterns. kMostInputs sends
// every available binding to the source (most selective call, fewest
// tuples transferred); kFewestInputs fetches broadly and filters
// client-side — the ablation baseline for bench_ablation.
enum class PatternPreference {
  kMostInputs,
  kFewestInputs,
};

// Picks the access pattern the executor should use for `literal` given
// `bound`, preferring per `preference` among the usable patterns (default:
// most input slots — most selective source call). Returns nullopt if the
// relation is undeclared, has no usable pattern, or — for negative
// literals — some variable is unbound (a negated call can only filter,
// never bind; Example 1).
std::optional<AccessPattern> ChoosePattern(
    const Catalog& catalog, const Literal& literal,
    const BoundVariables& bound,
    PatternPreference preference = PatternPreference::kMostInputs);

// The executability condition of Fig. 1 for the next literal: vars(L) ⊆ B,
// or L is positive and some pattern's input variables are ⊆ B.
bool CanExecuteNext(const Catalog& catalog, const Literal& literal,
                    const BoundVariables& bound);

// Left-to-right executability (Definition 3): adornments can be assigned so
// that every variable first appears in an output slot of a positive
// literal, scanning the body in the given order. The `true` query (empty
// body) is not executable; head variables must be bound by the body.
bool IsExecutable(const ConjunctiveQuery& q, const Catalog& catalog);

// A union is executable iff every disjunct is. The `false` query (empty
// union) is vacuously executable.
bool IsExecutable(const UnionQuery& q, const Catalog& catalog);

// Computes the adornment (one pattern per body literal) the executor would
// use, or nullopt if `q` is not executable in the given order.
std::optional<std::vector<AccessPattern>> ComputeAdornments(
    const ConjunctiveQuery& q, const Catalog& catalog);

// Renders an executable rule with adornments, e.g.
// `Q(i, a, t) :- C^oo(i, a), B^ioo(i, a, t), not L^o(i).`
std::string AdornedToString(const ConjunctiveQuery& q,
                            const std::vector<AccessPattern>& adornments);

}  // namespace ucqn

#endif  // UCQN_SCHEMA_ADORNMENT_H_
