#include "schema/relation_schema.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

void RelationSchema::AddPattern(const AccessPattern& pattern) {
  UCQN_CHECK_MSG(pattern.arity() == arity_,
                 "access pattern arity does not match relation arity");
  if (!HasPattern(pattern)) patterns_.push_back(pattern);
}

bool RelationSchema::HasPattern(const AccessPattern& pattern) const {
  return std::find(patterns_.begin(), patterns_.end(), pattern) !=
         patterns_.end();
}

bool RelationSchema::HasFullScanPattern() const {
  for (const AccessPattern& p : patterns_) {
    if (!p.HasInputs()) return true;
  }
  return false;
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> words;
  words.reserve(patterns_.size());
  for (const AccessPattern& p : patterns_) words.push_back(p.word());
  std::string out =
      name_ + "/" + std::to_string(arity_) + ": " + StrJoin(words, " ");
  if (cardinality_.has_value()) {
    out += " @" + std::to_string(static_cast<long long>(*cardinality_));
  }
  return out;
}

}  // namespace ucqn
