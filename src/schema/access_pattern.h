#ifndef UCQN_SCHEMA_ACCESS_PATTERN_H_
#define UCQN_SCHEMA_ACCESS_PATTERN_H_

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ucqn {

// An access pattern for a k-ary relation (Definition 1): a word of length k
// over {i, o}. Position j is an *input slot* if the pattern has 'i' there —
// a value must be supplied to call the source — and an *output slot*
// otherwise.
class AccessPattern {
 public:
  AccessPattern() = default;

  // Parses e.g. "ioo". Returns nullopt if `word` contains characters other
  // than 'i'/'o'. The empty word is the (valid) pattern of a 0-ary relation.
  static std::optional<AccessPattern> FromString(std::string_view word);

  // CHECK-failing variant for literal patterns in tests and examples.
  static AccessPattern MustParse(std::string_view word);

  // The all-output pattern ("ooo...o") of length `arity`: a conventional
  // fully-scannable relation.
  static AccessPattern AllOutput(std::size_t arity);

  // The all-input pattern ("iii...i") of length `arity`: a pure membership
  // probe.
  static AccessPattern AllInput(std::size_t arity);

  std::size_t arity() const { return word_.size(); }
  bool IsInputSlot(std::size_t j) const { return word_[j] == 'i'; }
  bool IsOutputSlot(std::size_t j) const { return word_[j] == 'o'; }

  // Indices of input / output slots, ascending.
  std::vector<std::size_t> InputSlots() const;
  std::vector<std::size_t> OutputSlots() const;

  std::size_t InputCount() const;
  bool HasInputs() const { return InputCount() > 0; }

  // The i/o word itself, e.g. "oio".
  const std::string& word() const { return word_; }
  std::string ToString() const { return word_; }

  friend bool operator==(const AccessPattern& a, const AccessPattern& b) {
    return a.word_ == b.word_;
  }
  friend bool operator!=(const AccessPattern& a, const AccessPattern& b) {
    return !(a == b);
  }
  friend bool operator<(const AccessPattern& a, const AccessPattern& b) {
    return a.word_ < b.word_;
  }

 private:
  explicit AccessPattern(std::string word) : word_(std::move(word)) {}

  std::string word_;
};

inline std::ostream& operator<<(std::ostream& os, const AccessPattern& p) {
  return os << p.word();
}

}  // namespace ucqn

#endif  // UCQN_SCHEMA_ACCESS_PATTERN_H_
