#include "schema/adornment.h"

#include "cost/cost_model.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

void BindVariables(const Literal& literal, BoundVariables* bound) {
  for (const Term& t : literal.args()) {
    if (t.IsVariable()) bound->insert(t.name());
  }
}

bool AllVariablesBound(const Literal& literal, const BoundVariables& bound) {
  for (const Term& t : literal.args()) {
    if (t.IsVariable() && bound.count(t.name()) == 0) return false;
  }
  return true;
}

std::vector<Term> InputVariables(const Literal& literal,
                                 const AccessPattern& pattern) {
  std::vector<Term> vars;
  const std::vector<Term>& args = literal.args();
  for (std::size_t j = 0; j < args.size() && j < pattern.arity(); ++j) {
    if (pattern.IsInputSlot(j) && args[j].IsVariable()) {
      vars.push_back(args[j]);
    }
  }
  return vars;
}

bool PatternUsable(const Literal& literal, const AccessPattern& pattern,
                   const BoundVariables& bound) {
  if (pattern.arity() != literal.atom().arity()) return false;
  const std::vector<Term>& args = literal.args();
  for (std::size_t j = 0; j < args.size(); ++j) {
    if (pattern.IsInputSlot(j) && args[j].IsVariable() &&
        bound.count(args[j].name()) == 0) {
      return false;
    }
  }
  return true;
}

std::optional<AccessPattern> ChoosePattern(const Catalog& catalog,
                                           const Literal& literal,
                                           const BoundVariables& bound,
                                           PatternPreference preference) {
  // Preference-only choice is the static cost model's pattern ranking;
  // delegate so every adornment decision flows through the one cost-layer
  // call site (cost/cost_model.h).
  return ChoosePattern(catalog, literal, bound, StaticCostModel(preference));
}

bool CanExecuteNext(const Catalog& catalog, const Literal& literal,
                    const BoundVariables& bound) {
  return ChoosePattern(catalog, literal, bound).has_value();
}

std::optional<std::vector<AccessPattern>> ComputeAdornments(
    const ConjunctiveQuery& q, const Catalog& catalog) {
  // The paper considers `true` (empty body) non-executable.
  if (q.IsTrueQuery()) return std::nullopt;
  std::vector<AccessPattern> adornments;
  adornments.reserve(q.body().size());
  BoundVariables bound;
  for (const Literal& literal : q.body()) {
    std::optional<AccessPattern> pattern =
        ChoosePattern(catalog, literal, bound);
    if (!pattern.has_value()) return std::nullopt;
    adornments.push_back(*pattern);
    if (literal.positive()) BindVariables(literal, &bound);
  }
  // Every variable of Q — including head variables — must be bound by the
  // body; otherwise Q is unsafe and thus not executable.
  for (const Term& v : q.AllVariables()) {
    if (bound.count(v.name()) == 0) return std::nullopt;
  }
  return adornments;
}

bool IsExecutable(const ConjunctiveQuery& q, const Catalog& catalog) {
  return ComputeAdornments(q, catalog).has_value();
}

bool IsExecutable(const UnionQuery& q, const Catalog& catalog) {
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (!IsExecutable(disjunct, catalog)) return false;
  }
  return true;  // `false` (empty union) is vacuously executable
}

std::string AdornedToString(const ConjunctiveQuery& q,
                            const std::vector<AccessPattern>& adornments) {
  UCQN_CHECK(adornments.size() == q.body().size());
  std::vector<std::string> head_parts;
  for (const Term& t : q.head_terms()) head_parts.push_back(t.ToString());
  std::string out = q.head_name() + "(" + StrJoin(head_parts, ", ") + ")";
  if (q.body().empty()) return out + ".";
  out += " :- ";
  std::vector<std::string> body_parts;
  for (std::size_t i = 0; i < q.body().size(); ++i) {
    const Literal& l = q.body()[i];
    std::vector<std::string> args;
    for (const Term& t : l.args()) args.push_back(t.ToString());
    std::string text = l.relation() + "^" + adornments[i].word() + "(" +
                       StrJoin(args, ", ") + ")";
    if (l.negative()) text = "not " + text;
    body_parts.push_back(std::move(text));
  }
  return out + StrJoin(body_parts, ", ") + ".";
}

}  // namespace ucqn
