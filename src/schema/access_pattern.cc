#include "schema/access_pattern.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ucqn {

std::optional<AccessPattern> AccessPattern::FromString(std::string_view word) {
  if (!ConsistsOf(word, "io")) return std::nullopt;
  return AccessPattern(std::string(word));
}

AccessPattern AccessPattern::MustParse(std::string_view word) {
  std::optional<AccessPattern> p = FromString(word);
  UCQN_CHECK_MSG(p.has_value(), "invalid access pattern word");
  return *p;
}

AccessPattern AccessPattern::AllOutput(std::size_t arity) {
  return AccessPattern(std::string(arity, 'o'));
}

AccessPattern AccessPattern::AllInput(std::size_t arity) {
  return AccessPattern(std::string(arity, 'i'));
}

std::vector<std::size_t> AccessPattern::InputSlots() const {
  std::vector<std::size_t> slots;
  for (std::size_t j = 0; j < word_.size(); ++j) {
    if (word_[j] == 'i') slots.push_back(j);
  }
  return slots;
}

std::vector<std::size_t> AccessPattern::OutputSlots() const {
  std::vector<std::size_t> slots;
  for (std::size_t j = 0; j < word_.size(); ++j) {
    if (word_[j] == 'o') slots.push_back(j);
  }
  return slots;
}

std::size_t AccessPattern::InputCount() const {
  std::size_t n = 0;
  for (char c : word_) {
    if (c == 'i') ++n;
  }
  return n;
}

}  // namespace ucqn
