#ifndef UCQN_SCHEMA_CATALOG_H_
#define UCQN_SCHEMA_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/query.h"
#include "schema/relation_schema.h"

namespace ucqn {

// The set 𝒫 of access patterns for all source relations — the schema a
// query is planned against.
//
// A catalog can be built programmatically or parsed from text, one relation
// per line:
//
//   relation B/3: ioo oio
//   relation L/1: o
//
// (the leading `relation` keyword is optional; `#`/`%` start comments).
class Catalog {
 public:
  Catalog() = default;

  // Declares `name` with `arity`. CHECK-fails if already declared with a
  // different arity. Returns the schema for chaining AddPattern calls.
  RelationSchema& AddRelation(const std::string& name, std::size_t arity);

  // Declares the relation if needed and adds `word` as a pattern.
  // CHECK-fails on invalid words or arity mismatch.
  void AddPattern(const std::string& name, std::string_view word);

  // Looks up a relation; nullptr if undeclared.
  const RelationSchema* Find(const std::string& name) const;

  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

  // All declared relations, ordered by name.
  std::vector<const RelationSchema*> Relations() const;

  std::size_t size() const { return relations_.size(); }

  // True if every relation used by `q` is declared with matching arity.
  // When `error` is non-null, describes the first violation.
  bool CoversQuery(const ConjunctiveQuery& q, std::string* error) const;
  bool CoversQuery(const UnionQuery& q, std::string* error) const;

  // Returns a copy in which every relation additionally (or exclusively,
  // if `replace` is true) carries the all-output pattern. Used by the
  // reductions of Section 5 ("we give relations output access patterns").
  Catalog WithAllOutputPatterns(bool replace) const;

  // Returns a copy with dominated patterns removed: pattern p is dominated
  // by p' when inputs(p') ⊊ inputs(p) — every call p can serve, p' can
  // serve with fewer required values ("bound is easier", footnote 4).
  // Normalizing never changes answerability, orderability, or feasibility
  // of any query, so it is the right form for *capability analysis*
  // (smaller catalogs, fewer candidate adornments). It is NOT meant for
  // execution: the dropped high-input patterns are exactly the selective
  // probes the executor prefers for performance (see bench_ablation).
  Catalog Normalized() const;

  // Parses the textual format above. Returns nullopt and sets `*error` on
  // malformed input.
  static std::optional<Catalog> Parse(std::string_view text,
                                      std::string* error);

  // CHECK-failing variant for literal schemas in tests and examples.
  static Catalog MustParse(std::string_view text);

  // One relation per line, ordered by name.
  std::string ToString() const;

 private:
  std::map<std::string, RelationSchema> relations_;
};

}  // namespace ucqn

#endif  // UCQN_SCHEMA_CATALOG_H_
