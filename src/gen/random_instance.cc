#include "gen/random_instance.h"

#include <vector>

#include "util/logging.h"

namespace ucqn {

namespace {

Term RandomConstant(std::mt19937* rng, int domain_size) {
  std::uniform_int_distribution<int> dist(0, domain_size - 1);
  return Term::Constant("c" + std::to_string(dist(*rng)));
}

}  // namespace

Database RandomDatabase(std::mt19937* rng, const Catalog& catalog,
                        const RandomInstanceOptions& options) {
  Database db;
  for (const RelationSchema* schema : catalog.Relations()) {
    for (int t = 0; t < options.tuples_per_relation; ++t) {
      Tuple tuple;
      tuple.reserve(schema->arity());
      for (std::size_t j = 0; j < schema->arity(); ++j) {
        tuple.push_back(RandomConstant(rng, options.domain_size));
      }
      db.Insert(schema->name(), std::move(tuple));
    }
  }
  return db;
}

Database RandomDatabaseWithInclusion(std::mt19937* rng, const Catalog& catalog,
                                     const RandomInstanceOptions& options,
                                     const std::string& child,
                                     std::size_t child_col,
                                     const std::string& parent,
                                     std::size_t parent_col) {
  const RelationSchema* child_schema = catalog.Find(child);
  const RelationSchema* parent_schema = catalog.Find(parent);
  UCQN_CHECK_MSG(child_schema != nullptr && parent_schema != nullptr,
                 "inclusion dependency endpoints must be declared");
  UCQN_CHECK(child_col < child_schema->arity());
  UCQN_CHECK(parent_col < parent_schema->arity());

  Database raw = RandomDatabase(rng, catalog, options);

  // Collect the parent key column.
  std::vector<Term> parent_keys;
  if (const std::set<Tuple>* tuples = raw.Find(parent)) {
    for (const Tuple& tuple : *tuples) parent_keys.push_back(tuple[parent_col]);
  }
  UCQN_CHECK_MSG(!parent_keys.empty(),
                 "parent relation must be non-empty for the dependency");

  Database db;
  for (const std::string& name : raw.RelationNames()) {
    for (const Tuple& tuple : *raw.Find(name)) {
      Tuple copy = tuple;
      if (name == child) {
        bool present = false;
        for (const Term& key : parent_keys) {
          if (copy[child_col] == key) {
            present = true;
            break;
          }
        }
        if (!present) {
          std::uniform_int_distribution<std::size_t> dist(
              0, parent_keys.size() - 1);
          copy[child_col] = parent_keys[dist(*rng)];
        }
      }
      db.Insert(name, std::move(copy));
    }
  }
  return db;
}

}  // namespace ucqn
