#include "gen/random_query.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace ucqn {

namespace {

int UniformInt(std::mt19937* rng, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(*rng);
}

bool Flip(std::mt19937* rng, double prob) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(*rng) < prob;
}

}  // namespace

Catalog RandomCatalog(std::mt19937* rng, const RandomSchemaOptions& options) {
  Catalog catalog;
  for (int r = 0; r < options.num_relations; ++r) {
    const std::string name = "R" + std::to_string(r);
    const int arity = UniformInt(rng, options.min_arity, options.max_arity);
    RelationSchema& schema =
        catalog.AddRelation(name, static_cast<std::size_t>(arity));
    for (int p = 0; p < options.patterns_per_relation; ++p) {
      std::string word;
      for (int j = 0; j < arity; ++j) {
        word += Flip(rng, options.input_slot_prob) ? 'i' : 'o';
      }
      schema.AddPattern(AccessPattern::MustParse(word));
    }
    if (Flip(rng, options.full_scan_prob)) {
      schema.AddPattern(AccessPattern::AllOutput(arity));
    }
  }
  return catalog;
}

ConjunctiveQuery RandomCq(std::mt19937* rng, const Catalog& catalog,
                          const RandomQueryOptions& options,
                          const std::string& head_name) {
  std::vector<const RelationSchema*> relations = catalog.Relations();
  UCQN_CHECK_MSG(!relations.empty(), "catalog must declare relations");
  UCQN_CHECK_MSG(options.num_literals > 0, "need at least one literal");

  auto var = [](int i) { return Term::Variable("v" + std::to_string(i)); };

  // Generate positive body first; negation is applied afterwards where it
  // preserves safety.
  std::vector<Literal> body;
  int constant_counter = 0;
  Term chain_link = var(0);
  for (int i = 0; i < options.num_literals; ++i) {
    const RelationSchema* rel =
        relations[static_cast<std::size_t>(
            UniformInt(rng, 0, static_cast<int>(relations.size()) - 1))];
    std::vector<Term> args;
    args.reserve(rel->arity());
    for (std::size_t j = 0; j < rel->arity(); ++j) {
      if (Flip(rng, options.constant_prob)) {
        args.push_back(
            Term::Constant("C" + std::to_string(constant_counter++)));
      } else {
        args.push_back(var(UniformInt(rng, 0, options.num_variables - 1)));
      }
    }
    if (!args.empty()) {
      switch (options.shape) {
        case QueryShape::kRandom:
          break;
        case QueryShape::kChain:
          args[0] = chain_link;
          chain_link = args[args.size() - 1];
          if (!chain_link.IsVariable()) chain_link = var(0);
          break;
        case QueryShape::kStar:
          args[0] = var(0);
          break;
      }
    }
    body.push_back(Literal::Positive(Atom(rel->name(), std::move(args))));
  }

  // Count variable occurrences per literal so negation can be applied
  // without breaking safety: negate literal L only if every variable of L
  // occurs in some other literal that stays positive. Process in random
  // order, greedily.
  if (options.negation_prob > 0.0) {
    std::vector<std::size_t> order(body.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), *rng);
    for (std::size_t idx : order) {
      if (!Flip(rng, options.negation_prob)) continue;
      std::unordered_set<std::string> elsewhere;
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j == idx || body[j].negative()) continue;
        for (const Term& t : body[j].args()) {
          if (t.IsVariable()) elsewhere.insert(t.name());
        }
      }
      bool safe = true;
      for (const Term& t : body[idx].args()) {
        if (t.IsVariable() && elsewhere.count(t.name()) == 0) {
          safe = false;
          break;
        }
      }
      if (safe) body[idx] = body[idx].Negated();
    }
  }

  // Head: draw distinct variables from the positive body.
  std::vector<Term> positive_vars;
  {
    std::set<std::string> seen;
    for (const Literal& l : body) {
      if (!l.positive()) continue;
      for (const Term& t : l.args()) {
        if (t.IsVariable() && seen.insert(t.name()).second) {
          positive_vars.push_back(t);
        }
      }
    }
  }
  std::shuffle(positive_vars.begin(), positive_vars.end(), *rng);
  const std::size_t head_arity = std::min<std::size_t>(
      positive_vars.size(), static_cast<std::size_t>(
                                std::max(0, options.head_arity)));
  std::vector<Term> head(positive_vars.begin(),
                         positive_vars.begin() + head_arity);

  ConjunctiveQuery q(head_name, std::move(head), std::move(body));
  UCQN_CHECK_MSG(q.IsSafe(), "generator must produce safe queries");
  return q;
}

UnionQuery RandomUcq(std::mt19937* rng, const Catalog& catalog,
                     const RandomQueryOptions& options, int num_disjuncts,
                     const std::string& head_name) {
  UCQN_CHECK_MSG(num_disjuncts > 0, "need at least one disjunct");
  UnionQuery q;
  // All disjuncts must share the head arity; retry (bounded) until each
  // drawn disjunct matches the requested one. RandomCq clamps the head
  // arity down when a draw has too few variables, so retries are rare with
  // sane options.
  const auto target =
      static_cast<std::size_t>(std::max(0, options.head_arity));
  for (int i = 0; i < num_disjuncts; ++i) {
    for (int attempt = 0;; ++attempt) {
      ConjunctiveQuery disjunct = RandomCq(rng, catalog, options, head_name);
      if (disjunct.head_arity() == target) {
        q.AddDisjunct(std::move(disjunct));
        break;
      }
      UCQN_CHECK_MSG(attempt < 10000,
                     "unable to draw a disjunct with the requested head "
                     "arity; lower RandomQueryOptions::head_arity");
    }
  }
  return q;
}

}  // namespace ucqn
