#ifndef UCQN_GEN_RANDOM_INSTANCE_H_
#define UCQN_GEN_RANDOM_INSTANCE_H_

#include <random>

#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

struct RandomInstanceOptions {
  // Constants are drawn from c0..c{domain_size-1}.
  int domain_size = 8;
  // Tuples drawn per relation (set semantics, so duplicates collapse).
  int tuples_per_relation = 20;
};

// Fills every relation of `catalog` with random tuples over a shared
// constant pool. Used by the property tests (containment vs. brute force)
// and the runtime benches.
Database RandomDatabase(std::mt19937* rng, const Catalog& catalog,
                        const RandomInstanceOptions& options = {});

// Like RandomDatabase, but enforces the inclusion dependency
// `child.child_col ⊆ parent.parent_col` (Example 6's foreign key): after
// generation, child tuples whose key is not present in the parent column
// get rewritten to a random parent value. Relations must exist in the
// catalog.
Database RandomDatabaseWithInclusion(std::mt19937* rng, const Catalog& catalog,
                                     const RandomInstanceOptions& options,
                                     const std::string& child,
                                     std::size_t child_col,
                                     const std::string& parent,
                                     std::size_t parent_col);

}  // namespace ucqn

#endif  // UCQN_GEN_RANDOM_INSTANCE_H_
