#ifndef UCQN_GEN_RANDOM_QUERY_H_
#define UCQN_GEN_RANDOM_QUERY_H_

#include <random>
#include <string>

#include "ast/query.h"
#include "schema/catalog.h"

namespace ucqn {

// Parameters for random schema generation.
struct RandomSchemaOptions {
  int num_relations = 6;
  int min_arity = 1;
  int max_arity = 3;
  // Number of access patterns drawn per relation (deduplicated, so the
  // effective count can be lower).
  int patterns_per_relation = 2;
  // Probability that each slot of a drawn pattern is an input slot. Higher
  // values make schemas more restricted and queries less likely feasible.
  double input_slot_prob = 0.4;
  // Probability that a relation additionally gets the all-output (full
  // scan) pattern.
  double full_scan_prob = 0.5;
};

// Generates relations R0, R1, ... with random arities and patterns.
Catalog RandomCatalog(std::mt19937* rng, const RandomSchemaOptions& options);

// Join shape of generated queries.
enum class QueryShape {
  kRandom,  // independent random variable choices per slot
  kChain,   // literal i shares its first variable with literal i-1's last
  kStar,    // every literal shares variable v0
};

struct RandomQueryOptions {
  int num_literals = 4;
  // Size of the variable pool; variables are drawn uniformly from it.
  int num_variables = 4;
  // Probability that a body literal is negated. Safety is enforced: a
  // literal is only negated if all its variables also occur in some other,
  // positive literal.
  double negation_prob = 0.0;
  // Probability that a slot holds a fresh constant rather than a variable.
  double constant_prob = 0.05;
  // Head arity; head variables are drawn from the positive body (safety).
  // Clamped to the number of available variables.
  int head_arity = 2;
  QueryShape shape = QueryShape::kRandom;
};

// Generates one safe CQ¬ over `catalog`'s relations.
ConjunctiveQuery RandomCq(std::mt19937* rng, const Catalog& catalog,
                          const RandomQueryOptions& options,
                          const std::string& head_name = "Q");

// Generates a safe UCQ¬ with `num_disjuncts` rules over one head.
UnionQuery RandomUcq(std::mt19937* rng, const Catalog& catalog,
                     const RandomQueryOptions& options, int num_disjuncts,
                     const std::string& head_name = "Q");

}  // namespace ucqn

#endif  // UCQN_GEN_RANDOM_QUERY_H_
