#include "gen/workload.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "ast/query.h"
#include "util/logging.h"

namespace ucqn {

namespace {

bool Flip(std::mt19937_64* rng, double prob) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(*rng) < prob;
}

int UniformInt(std::mt19937_64* rng, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(*rng);
}

std::string ChainName(int i) { return "C" + std::to_string(i); }
std::string EnumName(int i) { return "E" + std::to_string(i); }
std::string DecoyName(int i) { return "D" + std::to_string(i); }

Term DomainConstant(int value) {
  // Numeric names print unquoted and parse back as constants.
  return Term::Constant(std::to_string(value));
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  UCQN_CHECK_MSG(n > 0, "ZipfSampler needs a non-empty domain");
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(std::mt19937_64* rng) const {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double u = dist(*rng);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

WorkloadSpec GenerateWorkload(const WorkloadGenOptions& options) {
  UCQN_CHECK_MSG(options.chain_length >= 1, "need at least one chain link");
  UCQN_CHECK_MSG(options.max_literals >= 1, "need at least one literal");
  UCQN_CHECK_MSG(options.domain_size >= 1, "need a non-empty domain");

  WorkloadSpec spec;
  spec.seed = options.seed;
  std::mt19937_64 rng(options.seed);

  // --- schema -------------------------------------------------------------
  // Chain links: C0 is the open end (scan + probe); odd links are
  // probe-only (reachable solely through bound slots); even links keep
  // both, giving ChoosePattern a live decision the feedback loop can flip.
  for (int i = 0; i < options.chain_length; ++i) {
    RelationSchema& schema = spec.catalog.AddRelation(ChainName(i), 2);
    schema.AddPattern(AccessPattern::MustParse("io"));
    if (i % 2 == 0) schema.AddPattern(AccessPattern::AllOutput(2));
  }
  for (int i = 0; i < options.enumerable_relations; ++i) {
    RelationSchema& schema = spec.catalog.AddRelation(EnumName(i), 1);
    schema.AddPattern(AccessPattern::AllOutput(1));
  }
  for (int i = 0; i < options.decoy_relations; ++i) {
    const int arity = UniformInt(&rng, 1, 3);
    RelationSchema& schema =
        spec.catalog.AddRelation(DecoyName(i), static_cast<std::size_t>(arity));
    std::string word;
    for (int j = 0; j < arity; ++j) word += Flip(&rng, 0.7) ? 'i' : 'o';
    schema.AddPattern(AccessPattern::MustParse(word));
  }

  // --- facts --------------------------------------------------------------
  for (int i = 0; i < options.chain_length; ++i) {
    for (int t = 0; t < options.tuples_per_relation; ++t) {
      Tuple tuple;
      tuple.push_back(DomainConstant(UniformInt(&rng, 0, options.domain_size - 1)));
      tuple.push_back(DomainConstant(UniformInt(&rng, 0, options.domain_size - 1)));
      spec.database.Insert(ChainName(i), std::move(tuple));
    }
  }
  for (int i = 0; i < options.enumerable_relations; ++i) {
    for (int v = 0; v < options.domain_size; ++v) {
      if (Flip(&rng, 0.5)) {
        spec.database.Insert(EnumName(i), {DomainConstant(v)});
      }
    }
  }
  for (int i = 0; i < options.decoy_relations; ++i) {
    const RelationSchema* schema = spec.catalog.Find(DecoyName(i));
    for (int t = 0; t < options.tuples_per_relation / 4 + 1; ++t) {
      Tuple tuple;
      for (std::size_t j = 0; j < schema->arity(); ++j) {
        tuple.push_back(
            DomainConstant(UniformInt(&rng, 0, options.domain_size - 1)));
      }
      spec.database.Insert(DecoyName(i), std::move(tuple));
    }
  }

  // --- fault plan ---------------------------------------------------------
  spec.faults.seed = options.seed;
  spec.faults.latency_micros = options.latency_micros;
  spec.faults.latency_jitter_micros = options.latency_jitter_micros;
  spec.faults.failure_probability = options.failure_probability;
  for (int i = 0; i < options.slow_relations && i < options.chain_length; ++i) {
    spec.faults.relation_latency_micros[ChainName(options.chain_length - 1 - i)] =
        options.latency_micros * 10;
  }
  for (int i = 0; i < options.flaky_relations && i < options.enumerable_relations;
       ++i) {
    spec.faults.relation_failure_probability[EnumName(i)] =
        options.flaky_failure_probability;
  }
  spec.faults.spike_period_micros = options.spike_period_micros;
  spec.faults.spike_duration_micros = options.spike_duration_micros;
  spec.faults.spike_extra_micros = options.spike_extra_micros;

  spec.replay = options.replay;

  // --- query templates ----------------------------------------------------
  ZipfSampler key_zipf(static_cast<std::size_t>(options.domain_size),
                       options.zipf_s);
  auto make_walk = [&](int suffix) -> ConjunctiveQuery {
    // A walk over chain links s..s+len-1, entering via a scan (only legal
    // at C0) or a Zipf-hot constant probe (legal anywhere).
    const int s = UniformInt(&rng, 0, options.chain_length - 1);
    const int max_len = std::min(options.max_literals, options.chain_length - s);
    const int len = UniformInt(&rng, 1, max_len);
    const auto var = [suffix](int i) {
      return Term::Variable("v" + std::to_string(i) +
                            (suffix > 0 ? "_" + std::to_string(suffix) : ""));
    };
    std::vector<Literal> body;
    const bool probe_entry = s > 0 || Flip(&rng, options.constant_prob);
    Term entry = probe_entry
                     ? DomainConstant(static_cast<int>(key_zipf.Sample(&rng)))
                     : var(0);
    body.push_back(Literal::Positive(
        Atom(ChainName(s), {std::move(entry), var(1)})));
    for (int j = 1; j < len; ++j) {
      body.push_back(
          Literal::Positive(Atom(ChainName(s + j), {var(j), var(j + 1)})));
    }
    if (options.enumerable_relations > 0 && Flip(&rng, options.negation_prob)) {
      const int e = UniformInt(&rng, 0, options.enumerable_relations - 1);
      body.push_back(Literal::Negative(Atom(EnumName(e), {var(len)})));
    }
    return ConjunctiveQuery("Q", {var(len)}, std::move(body));
  };
  for (int q = 0; q < options.num_queries; ++q) {
    std::vector<ConjunctiveQuery> disjuncts;
    disjuncts.push_back(make_walk(0));
    if (Flip(&rng, options.union_prob)) disjuncts.push_back(make_walk(1));
    spec.queries.push_back(UnionQuery(std::move(disjuncts)).ToString());
  }

  // --- delta stream -------------------------------------------------------
  // Drawn from its own seed stream AFTER everything above, so turning the
  // rate on cannot perturb the schema/facts/queries — a v2 file at rate 0
  // is byte-identical to the v1 file from the same seed.
  if (options.update_rate > 0.0 && spec.replay.requests > 0) {
    std::mt19937_64 delta_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
    // Working copies track the instance as of each request index, so
    // deletes always target a tuple that is actually live at that point.
    std::map<std::string, std::vector<Tuple>> chain_live;
    for (int i = 0; i < options.chain_length; ++i) {
      std::vector<Tuple>& live = chain_live[ChainName(i)];
      if (const std::set<Tuple>* tuples = spec.database.Find(ChainName(i))) {
        live.assign(tuples->begin(), tuples->end());
      }
    }
    std::map<std::string, std::set<Tuple>> enum_live;
    for (int i = 0; i < options.enumerable_relations; ++i) {
      if (const std::set<Tuple>* tuples = spec.database.Find(EnumName(i))) {
        enum_live[EnumName(i)] = *tuples;
      } else {
        enum_live[EnumName(i)];
      }
    }
    for (std::uint64_t r = 0; r < spec.replay.requests; ++r) {
      if (!Flip(&delta_rng, options.update_rate)) continue;
      if (options.enumerable_relations > 0 && Flip(&delta_rng, 0.3)) {
        // Toggle one enumerable-domain value — the event that flips
        // `not E(x)` guards in both directions.
        const std::string name =
            EnumName(UniformInt(&delta_rng, 0, options.enumerable_relations - 1));
        const Tuple value = {
            DomainConstant(UniformInt(&delta_rng, 0, options.domain_size - 1))};
        std::set<Tuple>& live = enum_live[name];
        WorkloadDeltaEvent event;
        event.at_request = r;
        event.relation = name;
        event.tuple = value;
        if (live.count(value) > 0) {
          event.insert = false;
          live.erase(value);
        } else {
          event.insert = true;
          live.insert(value);
        }
        spec.deltas.push_back(std::move(event));
      } else {
        // Churn one chain link: retire a live edge, add a fresh one.
        const std::string name =
            ChainName(UniformInt(&delta_rng, 0, options.chain_length - 1));
        std::vector<Tuple>& live = chain_live[name];
        if (!live.empty()) {
          const int victim =
              UniformInt(&delta_rng, 0, static_cast<int>(live.size()) - 1);
          WorkloadDeltaEvent del;
          del.at_request = r;
          del.relation = name;
          del.insert = false;
          del.tuple = live[static_cast<std::size_t>(victim)];
          live.erase(live.begin() + victim);
          spec.deltas.push_back(std::move(del));
        }
        WorkloadDeltaEvent ins;
        ins.at_request = r;
        ins.relation = name;
        ins.insert = true;
        ins.tuple = {
            DomainConstant(UniformInt(&delta_rng, 0, options.domain_size - 1)),
            DomainConstant(UniformInt(&delta_rng, 0, options.domain_size - 1))};
        live.push_back(ins.tuple);
        spec.deltas.push_back(std::move(ins));
      }
    }
    if (!spec.deltas.empty()) spec.version = std::max(spec.version, 2);
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Serialization. Canonical: fixed section order, fixed key order, sorted
// maps, "%.6g" doubles — the same spec always produces the same bytes.

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string SerializeWorkload(const WorkloadSpec& spec) {
  // A delta stream needs the v2 grammar; everything else stays readable
  // by v1 parsers, so the version only ratchets when deltas exist.
  const int version =
      spec.deltas.empty() ? spec.version : std::max(spec.version, 2);
  std::string out = "# ucqn-workload v" + std::to_string(version) + "\n";
  out += "seed " + std::to_string(spec.seed) + "\n";
  out += "\n[schema]\n" + spec.catalog.ToString();
  out += "\n[facts]\n" + spec.database.ToString();
  out += "\n[faults]\n";
  out += "failure_probability " + FormatDouble(spec.faults.failure_probability) +
         "\n";
  out += "seed " + std::to_string(spec.faults.seed) + "\n";
  out += "fail_first_calls " + std::to_string(spec.faults.fail_first_calls) +
         "\n";
  out += "fail_first_per_key " +
         std::to_string(spec.faults.fail_first_per_key) + "\n";
  out += "latency_micros " + std::to_string(spec.faults.latency_micros) + "\n";
  out += "latency_jitter_micros " +
         std::to_string(spec.faults.latency_jitter_micros) + "\n";
  for (const auto& [relation, micros] : spec.faults.relation_latency_micros) {
    out += "relation_latency_micros " + relation + " " +
           std::to_string(micros) + "\n";
  }
  for (const auto& [relation, prob] :
       spec.faults.relation_failure_probability) {
    out += "relation_failure_probability " + relation + " " +
           FormatDouble(prob) + "\n";
  }
  out += "spike_period_micros " +
         std::to_string(spec.faults.spike_period_micros) + "\n";
  out += "spike_duration_micros " +
         std::to_string(spec.faults.spike_duration_micros) + "\n";
  out += "spike_extra_micros " + std::to_string(spec.faults.spike_extra_micros) +
         "\n";
  out += "\n[replay]\n";
  out += "requests " + std::to_string(spec.replay.requests) + "\n";
  out += "zipf_s " + FormatDouble(spec.replay.zipf_s) + "\n";
  out += "seed " + std::to_string(spec.replay.seed) + "\n";
  out += "tenants " + std::to_string(spec.replay.tenants) + "\n";
  if (!spec.deltas.empty()) {
    out += "\n[deltas]\n";
    for (const WorkloadDeltaEvent& event : spec.deltas) {
      out += "@" + std::to_string(event.at_request) + " " +
             (event.insert ? "+" : "-") + event.relation +
             TupleToString(event.tuple) + ".\n";
    }
  }
  out += "\n[queries]\n";
  for (const std::string& query : spec.queries) {
    out += query + "\n---\n";
  }
  return out;
}

namespace {

// Strict unsigned/double parsers in the spirit of the tools' flag
// checking: the whole token must parse, no trailing junk.
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end == token.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end == token.c_str() || *end != '\0' ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

// Splits "key value..." on whitespace into at most three fields.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(field);
  return fields;
}

}  // namespace

std::optional<WorkloadSpec> ParseWorkload(const std::string& text,
                                          std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<WorkloadSpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  WorkloadSpec spec;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("# ucqn-workload v", 0) != 0) {
    return fail("missing '# ucqn-workload v1' magic line");
  }
  std::uint64_t version = 0;
  if (!ParseU64(line.substr(std::strlen("# ucqn-workload v")), &version) ||
      (version != 1 && version != 2)) {
    return fail("unsupported workload version (this build reads v1/v2)");
  }
  spec.version = static_cast<int>(version);

  std::string section;  // "" = preamble
  std::string schema_text;
  std::string facts_text;
  std::string current_query;
  std::size_t line_number = 1;
  auto flush_query = [&]() {
    if (!current_query.empty() && current_query.back() == '\n') {
      current_query.pop_back();
    }
    if (!current_query.empty()) spec.queries.push_back(current_query);
    current_query.clear();
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.front() == '[' && line.back() == ']') {
      if (section == "queries") flush_query();
      section = line.substr(1, line.size() - 2);
      if (section != "schema" && section != "facts" && section != "faults" &&
          section != "replay" && section != "deltas" && section != "queries") {
        return fail("unknown section [" + section + "] at line " +
                    std::to_string(line_number));
      }
      continue;
    }
    if (section != "queries" &&
        (line.empty() || line.front() == '#')) {
      continue;  // blank and comment lines are structural noise
    }
    if (section.empty()) {
      const std::vector<std::string> fields = SplitFields(line);
      if (fields.size() == 2 && fields[0] == "seed" &&
          ParseU64(fields[1], &spec.seed)) {
        continue;
      }
      return fail("unexpected preamble line " + std::to_string(line_number));
    }
    if (section == "schema") {
      schema_text += line + "\n";
    } else if (section == "facts") {
      facts_text += line + "\n";
    } else if (section == "queries") {
      if (line == "---") {
        flush_query();
      } else {
        current_query += line + "\n";
      }
    } else if (section == "deltas") {
      // `@IDX +R(1, 2).` or `@IDX -R(1, 2).` — the fact reuses the
      // [facts] grammar, signed and pinned to a request index.
      auto bad = [&]() {
        return fail("malformed [deltas] line " + std::to_string(line_number) +
                    ": " + line);
      };
      if (line.front() != '@') return bad();
      const std::size_t space = line.find(' ');
      if (space == std::string::npos || space < 2) return bad();
      WorkloadDeltaEvent event;
      if (!ParseU64(line.substr(1, space - 1), &event.at_request)) return bad();
      std::string rest = line.substr(space + 1);
      while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      if (rest.empty() || (rest.front() != '+' && rest.front() != '-')) {
        return bad();
      }
      event.insert = rest.front() == '+';
      std::string fact_error;
      std::optional<Database> fact =
          Database::ParseFacts(rest.substr(1), &fact_error);
      if (!fact || fact->TotalTuples() != 1) {
        return fail("malformed [deltas] fact at line " +
                    std::to_string(line_number) +
                    (fact ? " (want exactly one fact)" : ": " + fact_error));
      }
      event.relation = fact->RelationNames().front();
      event.tuple = *fact->Find(event.relation)->begin();
      spec.deltas.push_back(std::move(event));
    } else {
      const std::vector<std::string> fields = SplitFields(line);
      auto bad = [&]() {
        return fail("malformed [" + section + "] line " +
                    std::to_string(line_number) + ": " + line);
      };
      if (fields.size() < 2) return bad();
      const std::string& key = fields[0];
      if (section == "faults") {
        FaultPlan& f = spec.faults;
        bool ok = false;
        if (fields.size() == 2) {
          if (key == "failure_probability") {
            ok = ParseDouble(fields[1], &f.failure_probability);
          } else if (key == "seed") {
            ok = ParseU64(fields[1], &f.seed);
          } else if (key == "fail_first_calls") {
            ok = ParseU64(fields[1], &f.fail_first_calls);
          } else if (key == "fail_first_per_key") {
            ok = ParseU64(fields[1], &f.fail_first_per_key);
          } else if (key == "latency_micros") {
            ok = ParseU64(fields[1], &f.latency_micros);
          } else if (key == "latency_jitter_micros") {
            ok = ParseU64(fields[1], &f.latency_jitter_micros);
          } else if (key == "spike_period_micros") {
            ok = ParseU64(fields[1], &f.spike_period_micros);
          } else if (key == "spike_duration_micros") {
            ok = ParseU64(fields[1], &f.spike_duration_micros);
          } else if (key == "spike_extra_micros") {
            ok = ParseU64(fields[1], &f.spike_extra_micros);
          }
        } else if (fields.size() == 3) {
          if (key == "relation_latency_micros") {
            std::uint64_t micros = 0;
            ok = ParseU64(fields[2], &micros);
            if (ok) f.relation_latency_micros[fields[1]] = micros;
          } else if (key == "relation_failure_probability") {
            double prob = 0.0;
            ok = ParseDouble(fields[2], &prob);
            if (ok) f.relation_failure_probability[fields[1]] = prob;
          }
        }
        if (!ok) return bad();
      } else {  // replay
        ReplayPlan& r = spec.replay;
        bool ok = false;
        if (fields.size() == 2) {
          if (key == "requests") {
            ok = ParseU64(fields[1], &r.requests);
          } else if (key == "zipf_s") {
            ok = ParseDouble(fields[1], &r.zipf_s);
          } else if (key == "seed") {
            ok = ParseU64(fields[1], &r.seed);
          } else if (key == "tenants") {
            std::uint64_t tenants = 0;
            ok = ParseU64(fields[1], &tenants) && tenants >= 1;
            if (ok) r.tenants = static_cast<int>(tenants);
          }
        }
        if (!ok) return bad();
      }
    }
  }
  if (section == "queries") flush_query();

  std::string sub_error;
  std::optional<Catalog> catalog = Catalog::Parse(schema_text, &sub_error);
  if (!catalog) return fail("schema section: " + sub_error);
  spec.catalog = std::move(*catalog);
  std::optional<Database> database =
      Database::ParseFacts(facts_text, &sub_error);
  if (!database) return fail("facts section: " + sub_error);
  spec.database = std::move(*database);
  if (spec.queries.empty()) return fail("workload declares no queries");
  return spec;
}

std::vector<ReplayRequest> BuildRequestSequence(const WorkloadSpec& spec,
                                                std::uint64_t max_requests) {
  std::uint64_t n = spec.replay.requests;
  if (max_requests > 0) n = max_requests;
  std::vector<ReplayRequest> sequence;
  sequence.reserve(n);
  std::mt19937_64 rng(spec.replay.seed);
  ZipfSampler zipf(spec.queries.size(), spec.replay.zipf_s);
  const int tenants = std::max(spec.replay.tenants, 1);
  for (std::uint64_t r = 0; r < n; ++r) {
    ReplayRequest request;
    request.query_index = zipf.Sample(&rng);
    request.tenant = static_cast<int>(r % static_cast<std::uint64_t>(tenants));
    sequence.push_back(request);
  }
  return sequence;
}

}  // namespace ucqn
