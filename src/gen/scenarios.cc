#include "gen/scenarios.h"

#include "ast/parser.h"

namespace ucqn {

Scenario Example1Books() {
  Scenario s;
  s.name = "example1_books";
  s.description =
      "Books available through store B, in catalog C, not in library L. "
      "Not executable left-to-right (no ISBN or author to call B with), "
      "but calling C first binds both, so the query is orderable.";
  s.catalog = Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");
  s.query = MustParseUnionQuery(
      "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");
  s.database = Database::MustParseFacts(R"(
    B(1, "Knuth", "TAOCP").
    B(2, "Date", "Database Systems").
    B(3, "Knuth", "Concrete Math").
    C(1, "Knuth").
    C(2, "Date").
    L(2).
  )");
  s.executable = false;
  s.orderable = true;
  s.feasible = true;
  return s;
}

Scenario Example3FeasibleNotOrderable() {
  Scenario s;
  s.name = "example3_feasible_not_orderable";
  s.description =
      "i2 and a2 can never be bound, so neither disjunct is orderable; but "
      "the union of the positive and negated B(i2,a2,t) cases is equivalent "
      "to the executable Q(a) :- L(i), B(i,a,t).";
  s.catalog = Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation L/1: o
  )");
  s.query = MustParseUnionQuery(R"(
    Q(a) :- B(i, a, t), L(i), B(i2, a2, t).
    Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).
  )");
  s.database = Database::MustParseFacts(R"(
    B(1, "Knuth", "TAOCP").
    B(2, "Date", "Database Systems").
    L(1).
  )");
  s.executable = false;
  s.orderable = false;
  s.feasible = true;
  return s;
}

namespace {

// The shared schema and query of Examples 4-8: Q1's B(x,y) is unanswerable
// because B only supports the all-input pattern.
Scenario RunningExampleBase() {
  Scenario s;
  s.catalog = Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
  s.query = MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
  s.executable = false;
  s.orderable = false;
  s.feasible = false;
  return s;
}

}  // namespace

Scenario Example4UnderOver() {
  Scenario s = RunningExampleBase();
  s.name = "example4_under_over";
  s.description =
      "PLAN* dismisses Q1 from the underestimate (B(x,y) unanswerable) and "
      "null-pads it in the overestimate: Q1o(x, null) :- R(x,z), not S(z). "
      "On this instance the answerable part R(x,z), not S(z) is empty, so "
      "ANSWER* certifies the answer complete although Q is infeasible.";
  s.database = Database::MustParseFacts(R"(
    R("a", "b").
    S("b").
    T("t1", "t2").
    T("t3", "t4").
    B("a", "y1").
  )");
  return s;
}

Scenario Example6ForeignKey() {
  Scenario s = RunningExampleBase();
  s.name = "example6_foreign_key";
  s.description =
      "R.z is a foreign key into S.z, so {z | R(x,z)} is always a subset of "
      "{z | S(z)} and the first overestimate disjunct is empty on every "
      "legal instance; the runtime handling reports a complete answer even "
      "though no compile-time check could.";
  s.database = Database::MustParseFacts(R"(
    R("r1", "k1").
    R("r2", "k2").
    R("r3", "k1").
    S("k1").
    S("k2").
    S("k3").
    T("t1", "t2").
    B("r1", "x9").
  )");
  return s;
}

Scenario Example7Nulls() {
  Scenario s = RunningExampleBase();
  s.name = "example7_nulls";
  s.description =
      "R(a,b) holds with no S(b), so the overestimate produces the partial "
      "tuple (a, null): there may be one or more y with B(a, y), but the "
      "all-input pattern on B makes {y | B(a,y)} unknowable.";
  s.database = Database::MustParseFacts(R"(
    R("a", "b").
    T("t1", "t2").
    B("a", "y1").
  )");
  return s;
}

Scenario Example8DomainEnum() {
  Scenario s = RunningExampleBase();
  s.name = "example8_domain_enum";
  s.description =
      "Domain enumeration builds dom(y) from the output slots of R and T "
      "and probes B(x,y) with enumerated y values, recovering the genuine "
      "answer (a, t2) that the plain underestimate misses.";
  s.database = Database::MustParseFacts(R"(
    R("a", "b").
    T("t1", "t2").
    B("a", "t2").
  )");
  return s;
}

Scenario Example9CqProcessing() {
  Scenario s;
  s.name = "example9_cq";
  s.description =
      "CQ feasibility: B(y) is unanswerable (B^i needs y bound), so the "
      "query is not orderable; ans(Q) = F(x), B(x), F(z) is contained in Q "
      "(map y to x), so the query is feasible. CQstable reaches the same "
      "verdict through the minimal form F(x), B(x).";
  s.catalog = Catalog::MustParse(R"(
    relation F/1: o
    relation B/1: i
  )");
  s.query = MustParseUnionQuery("Q(x) :- F(x), B(x), B(y), F(z).");
  s.database = Database::MustParseFacts(R"(
    F("f1").
    F("f2").
    B("f1").
  )");
  s.executable = false;
  s.orderable = false;
  s.feasible = true;
  return s;
}

Scenario Example10UcqProcessing() {
  Scenario s;
  s.name = "example10_ucq";
  s.description =
      "UCQ feasibility: the middle disjunct's B(y) is unanswerable, but the "
      "third disjunct F(x) absorbs both others, so the union is feasible. "
      "UCQstable minimizes to F(x); UCQstable* unions the feasible "
      "disjuncts; FEASIBLE checks ans(Q) ⊑ Q.";
  s.catalog = Catalog::MustParse(R"(
    relation F/1: o
    relation G/1: o
    relation H/1: o
    relation B/1: i
  )");
  s.query = MustParseUnionQuery(R"(
    Q(x) :- F(x), G(x).
    Q(x) :- F(x), H(x), B(y).
    Q(x) :- F(x).
  )");
  s.database = Database::MustParseFacts(R"(
    F("f1").
    F("f2").
    G("f1").
    H("f2").
    B("f2").
  )");
  s.executable = false;
  s.orderable = false;
  s.feasible = true;
  return s;
}

std::vector<Scenario> AllScenarios() {
  return {Example1Books(),
          Example3FeasibleNotOrderable(),
          Example4UnderOver(),
          Example6ForeignKey(),
          Example7Nulls(),
          Example8DomainEnum(),
          Example9CqProcessing(),
          Example10UcqProcessing()};
}

}  // namespace ucqn
