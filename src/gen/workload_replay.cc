#include "gen/workload_replay.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "runtime/fault_injection.h"
#include "server/daemon.h"
#include "util/logging.h"

namespace ucqn {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t hash, const std::string& bytes) {
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// Digest of one ok response, XOR-combined into the replay digest so the
// total is independent of completion order (concurrent replays finish in
// whatever order the scheduler picks, but answer the same).
std::uint64_t ResponseHash(std::uint64_t request_index,
                           const ServiceResponse& response) {
  std::uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, std::to_string(request_index));
  for (const Tuple& tuple : response.under) {
    hash = FnvMix(hash, "u" + TupleToString(tuple));
  }
  for (const Tuple& tuple : response.over) {
    hash = FnvMix(hash, "o" + TupleToString(tuple));
  }
  return hash;
}

// Per-thread accumulation, merged once the thread joins — no shared
// mutable state on the submit path beyond the daemon itself.
struct Partial {
  std::uint64_t ok = 0;
  std::uint64_t error = 0;
  std::uint64_t shed = 0;
  std::uint64_t quota = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t delta_errors = 0;
  std::uint64_t physical_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t answers_hash = 0;
  std::vector<ReplayWindow> windows;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string WorkloadReplayReport::ToJson() const {
  std::string out = "{";
  out += "\"ok\": " + std::string(ok ? "true" : "false");
  if (!error.empty()) out += ", \"error\": \"" + error + "\"";
  out += ", \"requests\": " + std::to_string(requests);
  out += ", \"ok_count\": " + std::to_string(ok_count);
  out += ", \"error_count\": " + std::to_string(error_count);
  out += ", \"shed_count\": " + std::to_string(shed_count);
  out += ", \"quota_count\": " + std::to_string(quota_count);
  out += ", \"deltas_applied\": " + std::to_string(deltas_applied);
  out += ", \"delta_errors\": " + std::to_string(delta_error_count);
  out += ", \"sim_wall_us\": " + std::to_string(sim_wall_micros);
  out += ", \"real_seconds\": " + FormatDouble(real_seconds);
  out += ", \"throughput_per_sec\": " + FormatDouble(throughput_per_second);
  out += ", \"physical_calls\": " + std::to_string(physical_calls);
  out += ", \"cache_hits\": " + std::to_string(cache_hits);
  out += ", \"cache_misses\": " + std::to_string(cache_misses);
  out += ", \"p50_us\": " + std::to_string(p50_micros);
  out += ", \"p95_us\": " + std::to_string(p95_micros);
  out += ", \"p99_us\": " + std::to_string(p99_micros);
  out += ", \"answers_hash\": " + std::to_string(answers_hash);
  out += ", \"hit_curve\": [";
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (w > 0) out += ", ";
    out += "{\"requests\": " + std::to_string(windows[w].requests) +
           ", \"cache_hits\": " + std::to_string(windows[w].cache_hits) +
           ", \"cache_misses\": " + std::to_string(windows[w].cache_misses) +
           ", \"physical_calls\": " + std::to_string(windows[w].physical_calls) +
           ", \"hit_rate\": " + FormatDouble(windows[w].hit_rate) + "}";
  }
  out += "]}";
  return out;
}

WorkloadReplayReport ReplayWorkload(const WorkloadSpec& spec,
                                    const WorkloadReplayOptions& options) {
  WorkloadReplayReport report;
  if (options.cost_model != "static" && options.cost_model != "adaptive") {
    report.error = "cost_model must be static or adaptive";
    return report;
  }
  if (spec.queries.empty()) {
    report.error = "workload declares no queries";
    return report;
  }

  SimulatedClock clock;
  // Private copy: the delta stream mutates the instance as the replay
  // advances, and the caller's spec must stay the request-0 snapshot.
  Database database = spec.database;
  DatabaseSource backend(&database, &spec.catalog);
  FaultInjectingSource faulty(&backend, spec.faults, &clock);
  Source* transport = options.inject_faults
                          ? static_cast<Source*>(&faulty)
                          : static_cast<Source*>(&backend);

  QueryDaemon::Options daemon_options;
  daemon_options.runtime.clock = &clock;
  daemon_options.runtime.retry = options.retry_attempts > 1;
  daemon_options.runtime.retry_policy.max_attempts = options.retry_attempts;
  daemon_options.runtime.parallelism = std::max<std::size_t>(options.parallelism, 1);
  daemon_options.runtime.pipeline_depth =
      std::max<std::size_t>(options.pipeline_depth, 1);
  daemon_options.disjunct_concurrency =
      std::max<std::size_t>(options.disjunct_concurrency, 1);
  daemon_options.cache.default_ttl_micros = options.cache_ttl_micros;
  daemon_options.cache.budget_bytes = options.cache_budget_bytes;
  daemon_options.cache.clock = &clock;
  daemon_options.admission.max_in_flight = options.max_in_flight;
  daemon_options.admission.max_queued = options.max_queued;
  daemon_options.default_quota.max_concurrent = options.tenant_max_concurrent;
  daemon_options.adaptive_cost_model = options.cost_model == "adaptive";
  daemon_options.fanout_feedback = options.fanout_feedback;
  daemon_options.database = &database;
  QueryDaemon daemon(&spec.catalog, transport, daemon_options);

  // One `delta` op per (request index, relation) group, applied by the
  // thread that owns the request just before it submits it. Deletes land
  // before inserts inside a batch — the daemon's own convention.
  std::map<std::uint64_t, std::vector<ServiceRequest>> delta_batches;
  for (const WorkloadDeltaEvent& event : spec.deltas) {
    std::vector<ServiceRequest>& batch = delta_batches[event.at_request];
    ServiceRequest* request = nullptr;
    for (ServiceRequest& candidate : batch) {
      if (candidate.relation == event.relation) {
        request = &candidate;
        break;
      }
    }
    if (request == nullptr) {
      batch.emplace_back();
      request = &batch.back();
      request->op = ServiceRequest::Op::kDelta;
      request->relation = event.relation;
      request->id = "delta@" + std::to_string(event.at_request);
    }
    (event.insert ? request->insert_tuples : request->delete_tuples)
        .push_back(event.tuple);
  }

  const std::vector<ReplayRequest> sequence =
      BuildRequestSequence(spec, options.max_requests);
  const std::uint64_t n = sequence.size();
  report.requests = n;
  const int window_count =
      static_cast<int>(std::min<std::uint64_t>(
          std::max(options.windows, 1), std::max<std::uint64_t>(n, 1)));

  const int threads = std::max(options.threads, 1);
  std::vector<Partial> partials(static_cast<std::size_t>(threads));
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(threads));

  const auto real_start = std::chrono::steady_clock::now();
  auto run_slice = [&](int thread_index) {
    Partial& partial = partials[static_cast<std::size_t>(thread_index)];
    partial.windows.assign(static_cast<std::size_t>(window_count),
                           ReplayWindow{});
    std::vector<std::uint64_t>& lat =
        latencies[static_cast<std::size_t>(thread_index)];
    for (std::uint64_t r = static_cast<std::uint64_t>(thread_index); r < n;
         r += static_cast<std::uint64_t>(threads)) {
      const ReplayRequest& replay_request = sequence[r];
      const auto batch_it = delta_batches.find(r);
      if (batch_it != delta_batches.end()) {
        for (const ServiceRequest& delta_request : batch_it->second) {
          const ServiceResponse delta_response = daemon.Submit(delta_request);
          if (delta_response.status == ServiceResponse::Status::kOk) {
            ++partial.deltas_applied;
          } else {
            ++partial.delta_errors;
          }
        }
      }
      ServiceRequest request;
      request.op = ServiceRequest::Op::kQuery;
      request.id = std::to_string(r);
      request.tenant = "t" + std::to_string(replay_request.tenant);
      request.query = spec.queries[replay_request.query_index];
      request.include_answers = true;
      const std::uint64_t before = clock.NowMicros();
      const ServiceResponse response = daemon.Submit(request);
      const std::uint64_t after = clock.NowMicros();
      if (threads == 1) lat.push_back(after - before);
      ReplayWindow& window =
          partial.windows[static_cast<std::size_t>(
              r * static_cast<std::uint64_t>(window_count) / n)];
      ++window.requests;
      switch (response.status) {
        case ServiceResponse::Status::kOk:
          ++partial.ok;
          partial.answers_hash ^= ResponseHash(r, response);
          partial.physical_calls += response.physical_calls;
          partial.cache_hits += response.cache_hits;
          partial.cache_misses += response.cache_misses;
          window.cache_hits += response.cache_hits;
          window.cache_misses += response.cache_misses;
          window.physical_calls += response.physical_calls;
          break;
        case ServiceResponse::Status::kShed:
          ++partial.shed;
          break;
        case ServiceResponse::Status::kQuotaRefused:
          ++partial.quota;
          break;
        case ServiceResponse::Status::kError:
        case ServiceResponse::Status::kDraining:
          ++partial.error;
          break;
      }
    }
  };

  if (threads == 1) {
    run_slice(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(run_slice, t);
    for (std::thread& t : pool) t.join();
  }
  const auto real_end = std::chrono::steady_clock::now();

  report.windows.assign(static_cast<std::size_t>(window_count), ReplayWindow{});
  for (const Partial& partial : partials) {
    report.ok_count += partial.ok;
    report.error_count += partial.error;
    report.shed_count += partial.shed;
    report.quota_count += partial.quota;
    report.deltas_applied += partial.deltas_applied;
    report.delta_error_count += partial.delta_errors;
    report.physical_calls += partial.physical_calls;
    report.cache_hits += partial.cache_hits;
    report.cache_misses += partial.cache_misses;
    report.answers_hash ^= partial.answers_hash;
    for (std::size_t w = 0; w < partial.windows.size(); ++w) {
      report.windows[w].requests += partial.windows[w].requests;
      report.windows[w].cache_hits += partial.windows[w].cache_hits;
      report.windows[w].cache_misses += partial.windows[w].cache_misses;
      report.windows[w].physical_calls += partial.windows[w].physical_calls;
    }
  }
  for (ReplayWindow& window : report.windows) {
    const std::uint64_t traffic = window.cache_hits + window.cache_misses;
    window.hit_rate = traffic == 0 ? 0.0
                                   : static_cast<double>(window.cache_hits) /
                                         static_cast<double>(traffic);
  }

  if (threads == 1 && !latencies[0].empty()) {
    std::vector<std::uint64_t>& lat = latencies[0];
    std::sort(lat.begin(), lat.end());
    auto percentile = [&](double p) {
      const std::size_t index = std::min(
          lat.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(lat.size())));
      return lat[index];
    };
    report.p50_micros = percentile(0.50);
    report.p95_micros = percentile(0.95);
    report.p99_micros = percentile(0.99);
  }

  report.sim_wall_micros = clock.NowMicros();
  report.real_seconds =
      std::chrono::duration<double>(real_end - real_start).count();
  report.throughput_per_second =
      report.real_seconds > 0.0
          ? static_cast<double>(n) / report.real_seconds
          : 0.0;
  report.ok = true;
  return report;
}

}  // namespace ucqn
