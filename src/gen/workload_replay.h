#ifndef UCQN_GEN_WORKLOAD_REPLAY_H_
#define UCQN_GEN_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/workload.h"

namespace ucqn {

// In-process replay: constructs a QueryDaemon over the workload's schema
// and a private copy of its instance (behind a FaultInjectingSource on a
// shared SimulatedClock), streams the replay plan's request sequence
// through Submit — applying the workload's [deltas] stream as `delta` ops
// just before the request indices they are pinned to — and reports
// throughput, simulated-latency percentiles, windowed cache-hit curves,
// and shed/quota counts. tools/ucqn_workload.cc and bench/bench_workload.cc
// both drive this; the daemon-stdio path goes through the tool's
// --via-daemon mode instead.
struct WorkloadReplayOptions {
  // "static" or "adaptive" — which cost model the daemon plans with.
  std::string cost_model = "adaptive";
  // Let observed fanouts replace the fallback cardinality (adaptive only).
  bool fanout_feedback = true;
  // Client threads submitting concurrently (static round-robin split).
  // 1 = serial, the only mode that reports per-request sim percentiles.
  int threads = 1;
  // Windows the request stream is cut into for the cache-hit curve.
  int windows = 10;
  // Overrides spec.replay.requests when non-zero.
  std::uint64_t max_requests = 0;
  // Run the backend behind the workload's fault plan (latency, flakiness,
  // spikes). Off = raw in-memory backend, zero simulated latency.
  bool inject_faults = true;
  // Retry attempts per call (RetryPolicy::max_attempts); 1 disables.
  int retry_attempts = 3;
  // Parallel-fetch workers per session wave; 1 = sequential dispatch.
  std::size_t parallelism = 1;
  std::size_t pipeline_depth = 1;
  std::size_t disjunct_concurrency = 1;
  // Shared-cache TTL (0 = entries never age out) and byte budget.
  std::uint64_t cache_ttl_micros = 0;
  std::size_t cache_budget_bytes = 0;
  // Admission bounds (0/0 = unbounded, nothing sheds).
  std::size_t max_in_flight = 0;
  std::size_t max_queued = 0;
  // Per-tenant cap on concurrent requests (0 = uncapped) — the quota
  // counter's source of "quota" responses under threads > 1.
  std::size_t tenant_max_concurrent = 0;
};

// One slice of the request stream (by request index, replay order).
struct ReplayWindow {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t physical_calls = 0;
  // hits / (hits + misses); 0 when the window saw no cache traffic.
  double hit_rate = 0.0;
};

struct WorkloadReplayReport {
  bool ok = false;
  std::string error;

  std::uint64_t requests = 0;
  std::uint64_t ok_count = 0;
  std::uint64_t error_count = 0;
  std::uint64_t shed_count = 0;
  std::uint64_t quota_count = 0;

  // Delta batches (one per (request index, relation) group of the
  // workload's delta stream) submitted ahead of their request, and how
  // many of them the daemon refused or failed.
  std::uint64_t deltas_applied = 0;
  std::uint64_t delta_error_count = 0;

  // Simulated time the whole replay charged to the shared clock.
  std::uint64_t sim_wall_micros = 0;
  // Wall-clock seconds the replay actually took (all threads).
  double real_seconds = 0.0;
  // requests / real_seconds.
  double throughput_per_second = 0.0;

  std::uint64_t physical_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Per-request simulated latency percentiles; only meaningful when the
  // replay ran with threads == 1 (concurrent submits interleave on the
  // shared clock, so a per-request delta has no owner).
  std::uint64_t p50_micros = 0;
  std::uint64_t p95_micros = 0;
  std::uint64_t p99_micros = 0;

  std::vector<ReplayWindow> windows;

  // Order-independent digest of every ok response's answer sets (XOR of
  // per-request FNV hashes over (request index, under, over)): two
  // replays answered byte-identically iff their digests match.
  std::uint64_t answers_hash = 0;

  // {"requests": N, "ok": N, ..., "windows": [{...}, ...]}
  std::string ToJson() const;
};

WorkloadReplayReport ReplayWorkload(const WorkloadSpec& spec,
                                    const WorkloadReplayOptions& options);

}  // namespace ucqn

#endif  // UCQN_GEN_WORKLOAD_REPLAY_H_
