#ifndef UCQN_GEN_WORKLOAD_H_
#define UCQN_GEN_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "eval/database.h"
#include "runtime/fault_injection.h"
#include "schema/catalog.h"

namespace ucqn {

// ---------------------------------------------------------------------------
// Workload files: one self-contained, versioned text artifact holding
// everything a replay needs — schema, instance, fault plan, replay plan,
// and the distinct query templates. The format (docs/WORKLOADS.md) reuses
// the catalog/facts/query syntaxes the rest of the system already parses,
// wrapped in `[section]` headers behind a `# ucqn-workload v1` magic line
// (v2 when the spec carries a delta stream — v2 is v1 plus a [deltas]
// section). Serialization is canonical: the same spec always serializes
// to the same bytes, so "same seed, same file" is a plain string
// comparison.

// How the replay driver expands the distinct templates into a request
// stream. The stream itself is never stored: requests = (Zipf-ranked
// template, round-robin tenant) pairs derived deterministically from the
// seed, so a million-request workload is a few lines of file.
struct ReplayPlan {
  // Requests to issue (the driver can cap or extend this at replay time).
  std::uint64_t requests = 1000;
  // Zipf exponent for template popularity: request r draws template rank
  // k with probability ∝ 1/k^s. 0 = uniform; >1 = a hot head and a long
  // cold tail, the shape that exercises the shared cache.
  double zipf_s = 1.0;
  std::uint64_t seed = 7;
  // Tenant names t0..t{n-1}, assigned round-robin — exercises per-tenant
  // quota accounting in the daemon.
  int tenants = 1;
};

// One timed update in a workload's delta stream (v2 files): before
// request `at_request` is issued, insert or delete `tuple` in `relation`.
// Events sharing an index form one batch per relation; deletes apply
// before inserts within a batch (the daemon's delta-op convention).
struct WorkloadDeltaEvent {
  std::uint64_t at_request = 0;
  std::string relation;
  bool insert = true;
  Tuple tuple;
};

struct WorkloadSpec {
  int version = 1;
  // The generator seed, for provenance (replays don't consume it).
  std::uint64_t seed = 0;
  Catalog catalog;
  Database database;
  FaultPlan faults;
  ReplayPlan replay;
  // Timed updates, sorted by at_request (v2; empty in v1 files). The
  // [facts] section is the instance at request 0; replays apply these as
  // they pass the matching request index.
  std::vector<WorkloadDeltaEvent> deltas;
  // Distinct UCQ¬ templates, parser syntax (possibly multi-line unions).
  std::vector<std::string> queries;
};

// Knobs for GenerateWorkload. The generated schema is adversarial by
// construction:
//   - a chain C0..C{k-1} of binary relations where C0 is scannable but
//     every odd-indexed link is reachable ONLY through its bound first
//     slot — values must flow in from the previous link's output or from
//     a constant (the access-restriction chains of Benedikt et al.);
//     even-indexed links also declare a full scan, giving the cost model
//     a real probe-vs-scan choice at every second hop;
//   - unary enumerable-domain relations E0.. (all-output pattern) that
//     negated literals range over;
//   - decoy relations D0.. with random, often input-heavy patterns that
//     queries never touch — schema noise for planners and admin ops.
// Queries walk random chain windows, entering via a scan at C0 or a
// Zipf-skewed constant probe anywhere, optionally guarded by a negated
// enumerable literal, optionally unioned with a second walk.
struct WorkloadGenOptions {
  std::uint64_t seed = 42;

  // --- schema ---
  int chain_length = 6;
  int enumerable_relations = 2;
  int decoy_relations = 4;
  // Constants are 0..domain_size-1; chain columns draw from the full
  // domain, so a probe's expected fanout is tuples_per_relation /
  // domain_size.
  int domain_size = 24;
  int tuples_per_relation = 48;

  // --- queries ---
  int num_queries = 200;
  // Longest chain walk per disjunct (≥ 1).
  int max_literals = 4;
  // Probability that a disjunct gains a `not E(x)` guard on its last
  // variable.
  double negation_prob = 0.25;
  // Probability that a walk starting at C0 enters via a constant probe
  // instead of a scan (walks starting deeper must probe — that is the
  // adversarial point).
  double constant_prob = 0.5;
  // Zipf exponent for the constants drawn into probes: hot keys repeat
  // across templates, which is what makes the shared cache earn its keep.
  double zipf_s = 1.1;
  // Probability that a template is a 2-disjunct union.
  double union_prob = 0.2;

  // --- fault plan ---
  std::uint64_t latency_micros = 200;
  std::uint64_t latency_jitter_micros = 0;
  double failure_probability = 0.0;
  // The last `slow_relations` chain links get 10x the base latency (the
  // adaptive model's reason to exist).
  int slow_relations = 1;
  // The first `flaky_relations` enumerable relations fail each call with
  // `flaky_failure_probability`.
  int flaky_relations = 0;
  double flaky_failure_probability = 0.05;
  // Correlated latency spikes (FaultPlan::spike_*); 0 period = off.
  std::uint64_t spike_period_micros = 0;
  std::uint64_t spike_duration_micros = 0;
  std::uint64_t spike_extra_micros = 0;

  // --- delta stream ---
  // Probability that a replay request index carries an update batch
  // (0 = none, a v1 file). Most batches churn one chain link (delete a
  // live edge, insert a fresh random one); some toggle an enumerable
  // value, flipping the anti-join guards. Drawn from a separately seeded
  // stream, so update_rate = 0 reproduces v1 files byte-for-byte.
  double update_rate = 0.0;

  // --- replay plan (copied into the spec verbatim) ---
  ReplayPlan replay;
};

// Deterministic: the same options always produce the same spec (and
// therefore, via SerializeWorkload, the same bytes).
WorkloadSpec GenerateWorkload(const WorkloadGenOptions& options);

// Canonical text form; see docs/WORKLOADS.md for the grammar.
std::string SerializeWorkload(const WorkloadSpec& spec);

// Parses SerializeWorkload's format. Returns nullopt and sets `*error`
// on malformed input or an unsupported version.
std::optional<WorkloadSpec> ParseWorkload(const std::string& text,
                                          std::string* error = nullptr);

// One replay request: which template to send, as which tenant.
struct ReplayRequest {
  std::size_t query_index = 0;
  int tenant = 0;
};

// Expands the replay plan into its request stream (capped at
// `max_requests` when non-zero). Deterministic in spec.replay.seed.
std::vector<ReplayRequest> BuildRequestSequence(const WorkloadSpec& spec,
                                                std::uint64_t max_requests = 0);

// Draws ranks 0..n-1 with probability ∝ 1/(rank+1)^s — precomputed
// inverse-CDF, so sampling is a binary search. s = 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  std::size_t Sample(std::mt19937_64* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ucqn

#endif  // UCQN_GEN_WORKLOAD_H_
