#ifndef UCQN_GEN_HARD_INSTANCES_H_
#define UCQN_GEN_HARD_INSTANCES_H_

#include "ast/query.h"
#include "schema/catalog.h"

namespace ucqn {

// Families of instances that drive the Theorem 12/13 recursion into its
// worst case, used by bench_containment / bench_feasible to exhibit the
// Π₂ᴾ behaviour (Corollary 19).

// A containment question P ⊑? Q with tunable difficulty.
struct ContainmentInstance {
  ConjunctiveQuery P;
  UnionQuery Q;
  bool expected;  // the ground-truth answer
};

// The "independent negations" family:
//
//   P(x)  :- R(x).
//   Qᵢ(x) :- R(x), not Nᵢ(x).      (i = 1..k)
//
// P ⊑ Q is FALSE (an instance with R(a) and all Nᵢ(a) defeats every
// disjunct), and with memoization the recursion still must visit every
// subset of {N₁(x), ..., Nₖ(x)} — 2^k nodes — before concluding. When
// `contained` is true, an extra disjunct Q₀(x) :- R(x), N₁(x) is added,
// which makes the answer TRUE and lets the search succeed after adjoining
// a single atom: the contrast between the two is the bench's story.
ContainmentInstance SubsetExplosionInstance(int k, bool contained);

// The "chain of negations" family:
//
//   P(x)   :- R(x).
//   Qᵢ(x)  :- R(x), N₁(x), ..., Nᵢ₋₁(x), not Nᵢ(x).   (i = 1..k)
//   Q⁺(x)  :- R(x), N₁(x), ..., Nₖ(x).                 (iff `contained`)
//
// P ⊑ Q is TRUE with the closing disjunct (classic case-split on the first
// failing Nᵢ) and FALSE without it; the recursion depth grows linearly
// with k, with only one viable witness per level.
ContainmentInstance ChainInstance(int k, bool contained);

// A feasibility instance whose FEASIBLE run must take the containment path
// with the SubsetExplosion workload embedded: neither the plans-equal nor
// the null shortcut applies. Built via the Theorem 18 reduction.
struct HardFeasibilityInstance {
  UnionQuery query;
  Catalog catalog;
  bool feasible;
};

HardFeasibilityInstance HardFeasibility(int k, bool feasible);

}  // namespace ucqn

#endif  // UCQN_GEN_HARD_INSTANCES_H_
