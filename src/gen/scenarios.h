#ifndef UCQN_GEN_SCENARIOS_H_
#define UCQN_GEN_SCENARIOS_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "eval/database.h"
#include "schema/catalog.h"

namespace ucqn {

// A worked example from the paper, packaged with the schema, query, a
// database instance (where the example discusses runtime behaviour), and
// the expected compile-time verdicts. Shared by tests (which assert the
// expectations), the `paper_examples` binary (which narrates them), and
// the benches.
struct Scenario {
  std::string name;
  std::string description;
  Catalog catalog;
  UnionQuery query;
  Database database;
  // Expected compile-time verdicts.
  bool executable = false;
  bool orderable = false;
  bool feasible = false;
};

// Example 1: the book/catalog/library query — not executable as written,
// but orderable (call C first), hence feasible.
Scenario Example1Books();

// Example 3: feasible but NOT orderable — the second disjunct's negated
// B(i',a',t) can never be ordered, yet the union is equivalent to the
// executable Q'(a) :- L(i), B(i,a,t).
Scenario Example3FeasibleNotOrderable();

// Example 4/5: the running PLAN* example. Q1's B(x,y) is unanswerable
// (B only supports the all-input pattern), so Q is infeasible; the bundled
// instance satisfies ¬∃ answerable-part rows, so ANSWER* reports a
// *complete* answer at runtime regardless.
Scenario Example4UnderOver();

// Example 6: same query, but the instance satisfies the foreign key
// R.z ⊆ S.z, which forces the overestimate disjunct empty — ANSWER*
// recognizes completeness that compile-time analysis cannot.
Scenario Example6ForeignKey();

// Example 7: same query on an instance where R(a,b), ¬S(b) holds — the
// overestimate contains the partial tuple (a, null).
Scenario Example7Nulls();

// Example 8: same query on an instance where domain enumeration recovers a
// genuine answer that the plain underestimate misses.
Scenario Example8DomainEnum();

// Example 9: CQ processing — Q(x) :- F(x), B(x), B(y), F(z) with F^o, B^i:
// not orderable, but feasible (minimal form F(x), B(x)).
Scenario Example9CqProcessing();

// Example 10: UCQ processing — three disjuncts, minimal form F(x).
Scenario Example10UcqProcessing();

// All of the above, in paper order.
std::vector<Scenario> AllScenarios();

}  // namespace ucqn

#endif  // UCQN_GEN_SCENARIOS_H_
