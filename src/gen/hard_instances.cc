#include "gen/hard_instances.h"

#include "feasibility/reduction.h"

namespace ucqn {

namespace {

Term X() { return Term::Variable("x"); }

ConjunctiveQuery BaseP() {
  return ConjunctiveQuery("Q", {X()},
                          {Literal::Positive(Atom("R", {X()}))});
}

std::string N(int i) { return "N" + std::to_string(i); }

}  // namespace

ContainmentInstance SubsetExplosionInstance(int k, bool contained) {
  ContainmentInstance instance;
  instance.P = BaseP();
  if (contained) {
    // Q₀(x) :- R(x), N₁(x): true as soon as N₁ has been adjoined.
    instance.Q.AddDisjunct(ConjunctiveQuery(
        "Q", {X()},
        {Literal::Positive(Atom("R", {X()})),
         Literal::Positive(Atom(N(1), {X()}))}));
  }
  for (int i = 1; i <= k; ++i) {
    instance.Q.AddDisjunct(ConjunctiveQuery(
        "Q", {X()},
        {Literal::Positive(Atom("R", {X()})),
         Literal::Negative(Atom(N(i), {X()}))}));
  }
  instance.expected = contained;
  return instance;
}

ContainmentInstance ChainInstance(int k, bool contained) {
  ContainmentInstance instance;
  instance.P = BaseP();
  for (int i = 1; i <= k; ++i) {
    std::vector<Literal> body = {Literal::Positive(Atom("R", {X()}))};
    for (int j = 1; j < i; ++j) {
      body.push_back(Literal::Positive(Atom(N(j), {X()})));
    }
    body.push_back(Literal::Negative(Atom(N(i), {X()})));
    instance.Q.AddDisjunct(ConjunctiveQuery("Q", {X()}, std::move(body)));
  }
  if (contained) {
    std::vector<Literal> body = {Literal::Positive(Atom("R", {X()}))};
    for (int j = 1; j <= k; ++j) {
      body.push_back(Literal::Positive(Atom(N(j), {X()})));
    }
    instance.Q.AddDisjunct(ConjunctiveQuery("Q", {X()}, std::move(body)));
  }
  instance.expected = contained;
  return instance;
}

HardFeasibilityInstance HardFeasibility(int k, bool feasible) {
  ContainmentInstance cont = SubsetExplosionInstance(k, feasible);
  FeasibilityInstance reduced =
      ReduceContainmentToFeasibility(UnionQuery(cont.P), cont.Q);
  return {std::move(reduced.query), std::move(reduced.catalog),
          cont.expected};
}

}  // namespace ucqn
