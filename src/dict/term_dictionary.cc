#include "dict/term_dictionary.h"

#include <mutex>
#include <stdexcept>

namespace ucqn {

TermDictionary::TermDictionary() {
  // Reserve id 0 for Δ-null. The slot holds a spelling no quoted
  // constant can collide with only by convention — what actually keeps
  // it unreachable is that it is never entered into `ids_`, so Intern
  // can never hand it out for a constant (including one spelled
  // "null", which gets its own ordinary id).
  Chunk* chunk = new Chunk();
  chunk->entries[0] = "null";
  chunks_[0].store(chunk, std::memory_order_release);
  size_.store(1, std::memory_order_release);
}

TermDictionary& TermDictionary::Global() {
  static TermDictionary* dictionary = new TermDictionary();
  return *dictionary;
}

std::uint32_t TermDictionary::Intern(std::string_view name) {
  {
    // Fast path: already interned. Shared lock — re-interning a known
    // constant (the overwhelmingly common case once a query warms up)
    // never serializes against other readers.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned it between the locks.
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  const std::size_t id = size_.load(std::memory_order_relaxed);
  const std::size_t chunk_index = id >> kChunkBits;
  const std::size_t slot = id & (kChunkSize - 1);
  if (chunk_index >= kMaxChunks) {
    throw std::length_error("TermDictionary: id space exhausted");
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk->entries[slot] = std::string(name);
  ids_.emplace(std::string_view(chunk->entries[slot]),
               static_cast<std::uint32_t>(id));
  // Publish after the entry is fully constructed: decoders that
  // acquire a size > id are guaranteed to see the string.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<std::uint32_t>(id);
}

std::uint32_t TermDictionary::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kAbsentId : it->second;
}

std::uint32_t TermDictionary::EncodeGround(const Term& t) {
  if (t.IsNull()) return kNullId;
  return Intern(t.name());
}

const std::string& TermDictionary::Decode(std::uint32_t id) const {
  // No bounds check beyond the debug-friendly chunk walk: the contract
  // is "ids minted by this dictionary", and every caller got the id
  // from Intern/EncodeGround. The acquire load pairs with Intern's
  // release store.
  const Chunk* chunk =
      chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  return chunk->entries[id & (kChunkSize - 1)];
}

Term TermDictionary::DecodeTerm(std::uint32_t id) const {
  if (id == kNullId) return Term::Null();
  return Term::Constant(Decode(id));
}

}  // namespace ucqn
