#ifndef UCQN_DICT_TERM_DICTIONARY_H_
#define UCQN_DICT_TERM_DICTIONARY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/term.h"

namespace ucqn {

// Dense ids for the ground terms flowing through the executor's inner
// loops. The paper's semantics only ever need *equality* over a finite
// active domain — never string order or content — so every constant is
// interned once into a uint32 and joins, wave dedup, cache keys, and
// negated-literal membership probes all run over flat id vectors
// (rdf3x's id-encoded triples, DictionarySegment, are the exemplar).
// Strings are decoded back only at result materialization and at
// JSON/protocol boundaries.
//
// Id space:
//   - kNullId (0) is reserved for the paper's distinguished Δ-null
//     (Ex. 7). No constant ever maps to it — the constant spelled
//     "null" gets an ordinary id, preserving the kind distinction.
//   - Constants get consecutive ids starting at 1, in first-intern
//     order. Ids are stable for the process lifetime and never reused;
//     the dictionary only grows (the active domain of a query session
//     is finite, and entries are a few dozen bytes each).
//   - kAbsentId never names a term. It marks "no value here" in packed
//     call signatures (an output slot, or an input slot the binding
//     does not ground) and in columnar frontiers.
//
// Concurrency: Intern takes the exclusive lock only when the term is
// genuinely new; the common re-intern of a known constant runs under a
// shared lock, and Decode is lock-free. Storage is an append-only
// array of fixed-size chunks — a published id's string never moves, so
// decoders need only an acquire load of the size to see fully
// constructed entries.
class TermDictionary {
 public:
  static constexpr std::uint32_t kNullId = 0;
  static constexpr std::uint32_t kAbsentId = 0xFFFFFFFFu;

  TermDictionary();
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;

  // The process-wide dictionary every execution shares. Executions on
  // different threads intern into the same id space, which is what lets
  // the shared cache key physical calls by id across queries.
  static TermDictionary& Global();

  // Returns the id of constant `name`, interning it on first sight.
  // Thread-safe; a given spelling yields the same id forever.
  std::uint32_t Intern(std::string_view name);

  // Like Intern, but never inserts: kAbsentId when `name` was never
  // interned. Lock-free on the miss path is not needed (callers are
  // cold paths); uses the same table under the insert mutex.
  std::uint32_t Find(std::string_view name) const;

  // Encodes a ground term: null → kNullId, constant → Intern(name).
  // Precondition: t.IsGround() (variables never appear in tuples).
  std::uint32_t EncodeGround(const Term& t);

  // Decodes an id minted by this dictionary. Lock-free. id must be
  // kNullId or a previously returned Intern id.
  const std::string& Decode(std::uint32_t id) const;

  // Decode to a Term, restoring the kind: kNullId → Term::Null(),
  // everything else → Term::Constant(Decode(id)).
  Term DecodeTerm(std::uint32_t id) const;

  // Ids minted so far, including the reserved null slot.
  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  // 4096 strings per chunk, 4096 chunks: 16M distinct constants before
  // the dictionary refuses to grow — far beyond any active domain here,
  // and the bound is what keeps Decode a two-load array walk.
  static constexpr std::size_t kChunkBits = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 4096;

  struct Chunk {
    std::array<std::string, kChunkSize> entries;
  };

  // Readers index `chunks_` after an acquire load of `size_`; writers
  // fully construct the entry before the release store that publishes
  // it. Chunks are never freed or moved.
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};

  // Table lock: shared for lookups of known constants, exclusive for
  // the rare first-sight insert. Padded away from the hot atomic above
  // so lock traffic doesn't invalidate the decoders' cache line.
  alignas(64) mutable std::shared_mutex mu_;
  // Keys are views into chunk storage (stable: chunks never move and a
  // stored std::string's buffer is never touched again).
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

// A tuple or call signature as flat ids. Hash/equality are pure integer
// loops — the representation the executor's dedup maps, anti-join
// probes, and frontier columns are built on.
using EncodedTuple = std::vector<std::uint32_t>;

struct EncodedTupleHash {
  std::size_t operator()(const EncodedTuple& t) const {
    std::size_t seed = t.size();
    for (std::uint32_t id : t) HashCombine(&seed, id);
    return seed;
  }
};

}  // namespace ucqn

#endif  // UCQN_DICT_TERM_DICTIONARY_H_
