#ifndef UCQN_RUNTIME_CLOCK_H_
#define UCQN_RUNTIME_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace ucqn {

// Time source for the runtime layer (retry backoff, deadlines, latency
// metrics). Everything is expressed in integer microseconds so simulated
// and real time share one arithmetic.
//
// The decorators in src/runtime/ never touch std::chrono directly; they
// go through a Clock*. Passing a SimulatedClock makes retry/backoff and
// latency-injection tests fully deterministic and lets the benches report
// "network time saved" without actually sleeping.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic now, in microseconds since an arbitrary epoch.
  virtual std::uint64_t NowMicros() = 0;

  // Blocks (or pretends to) for `micros` microseconds.
  virtual void SleepMicros(std::uint64_t micros) = 0;

  // Brackets a parallel fetch wave (runtime/parallel_source.h): between
  // BeginWave and EndWave, up to `workers` threads sleep on this clock
  // concurrently, and those sleeps overlap in wall-clock terms. Real
  // clocks overlap naturally and ignore the bracket; a SimulatedClock uses
  // it to charge the wave max-over-workers instead of sum-over-calls.
  // Waves do not nest.
  virtual void BeginWave(std::size_t workers) { (void)workers; }
  virtual void EndWave() {}

  // Brackets a group of *different literals'* waves resolved back-to-back
  // by the pipelined executor (eval/executor.cc, pipeline_depth > 1).
  // Each wave's resolution runs inside its own BeginLane/EndLane pair;
  // EndOverlap charges the group max-over-lanes, the wall-clock model of
  // futures genuinely in flight together. Inside a lane, sleeps (and any
  // nested parallel-wave bracket) accrue to that lane's private timeline.
  // Real clocks ignore the brackets; overlaps do not nest, and lanes only
  // appear inside an overlap, one at a time.
  virtual void BeginOverlap() {}
  virtual void BeginLane() {}
  virtual void EndLane() {}
  virtual void EndOverlap() {}
};

// Real wall-clock time: steady_clock + this_thread::sleep_for. Concurrent
// sleeps genuinely overlap, so the wave bracket is a no-op.
class SteadyClock : public Clock {
 public:
  std::uint64_t NowMicros() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepMicros(std::uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

// Virtual time: starts at zero, advances only via SleepMicros/Advance.
// Shared between FaultInjectingSource (which injects latency by sleeping)
// and MeteredSource (which timestamps calls), this yields exact,
// repeatable latency histograms.
//
// Safe for concurrent use. Outside a wave, concurrent sleeps serialize:
// each call advances the shared clock by its full duration (sum
// semantics, matching sequential execution). Inside a wave each sleeping
// thread accrues a private offset — its own virtual timeline — and
// EndWave advances the shared clock by the *maximum* offset: the wave
// costs what its slowest worker cost, exactly the wall-clock model of
// truly overlapped remote calls. Because ParallelSource assigns requests
// to workers statically, each worker's offset is a fixed sum of its own
// requests' latencies, so the advance is deterministic under any thread
// interleaving.
// Overlap brackets extend the same idea one level up: between
// BeginOverlap and EndOverlap, each BeginLane/EndLane pair accrues its
// sleeps (and any nested parallel wave's max-over-workers charge) into a
// private lane timeline, and EndOverlap advances the shared clock by the
// *maximum* lane total — several literals' waves in flight together cost
// what the slowest one cost. NowMicros inside a lane sees the lane's
// private progress, so deadline checks (runtime/retrying_source.h) stay
// consistent with what a truly-async transport's worker would observe.
class SimulatedClock : public Clock {
 public:
  std::uint64_t NowMicros() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t now = now_micros_;
    if (in_lane_) now += lane_offset_;
    if (in_wave_) {
      auto it = wave_offsets_.find(std::this_thread::get_id());
      if (it != wave_offsets_.end()) now += it->second;
    }
    return now;
  }
  void SleepMicros(std::uint64_t micros) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_wave_) {
      wave_offsets_[std::this_thread::get_id()] += micros;
    } else if (in_lane_) {
      lane_offset_ += micros;
    } else {
      now_micros_ += micros;
    }
  }
  void Advance(std::uint64_t micros) { SleepMicros(micros); }

  void BeginWave(std::size_t workers) override {
    (void)workers;
    std::lock_guard<std::mutex> lock(mu_);
    in_wave_ = true;
    wave_offsets_.clear();
  }
  void EndWave() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t longest = 0;
    for (const auto& [tid, offset] : wave_offsets_) {
      if (offset > longest) longest = offset;
    }
    // A wave nested inside a lane is part of that lane's timeline: its
    // cost competes with the other lanes' totals instead of advancing the
    // shared clock immediately.
    if (in_lane_) {
      lane_offset_ += longest;
    } else {
      now_micros_ += longest;
    }
    wave_offsets_.clear();
    in_wave_ = false;
  }

  void BeginOverlap() override {
    std::lock_guard<std::mutex> lock(mu_);
    in_overlap_ = true;
    overlap_longest_ = 0;
  }
  void BeginLane() override {
    std::lock_guard<std::mutex> lock(mu_);
    in_lane_ = true;
    lane_offset_ = 0;
  }
  void EndLane() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (lane_offset_ > overlap_longest_) overlap_longest_ = lane_offset_;
    lane_offset_ = 0;
    in_lane_ = false;
  }
  void EndOverlap() override {
    std::lock_guard<std::mutex> lock(mu_);
    now_micros_ += overlap_longest_;
    overlap_longest_ = 0;
    in_overlap_ = false;
  }

 private:
  std::mutex mu_;
  std::uint64_t now_micros_ = 0;
  bool in_wave_ = false;
  std::map<std::thread::id, std::uint64_t> wave_offsets_;
  bool in_overlap_ = false;
  bool in_lane_ = false;
  std::uint64_t lane_offset_ = 0;
  std::uint64_t overlap_longest_ = 0;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_CLOCK_H_
