#ifndef UCQN_RUNTIME_CLOCK_H_
#define UCQN_RUNTIME_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace ucqn {

// Time source for the runtime layer (retry backoff, deadlines, latency
// metrics). Everything is expressed in integer microseconds so simulated
// and real time share one arithmetic.
//
// The decorators in src/runtime/ never touch std::chrono directly; they
// go through a Clock*. Passing a SimulatedClock makes retry/backoff and
// latency-injection tests fully deterministic and lets the benches report
// "network time saved" without actually sleeping.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic now, in microseconds since an arbitrary epoch.
  virtual std::uint64_t NowMicros() = 0;

  // Blocks (or pretends to) for `micros` microseconds.
  virtual void SleepMicros(std::uint64_t micros) = 0;
};

// Real wall-clock time: steady_clock + this_thread::sleep_for.
class SteadyClock : public Clock {
 public:
  std::uint64_t NowMicros() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepMicros(std::uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

// Virtual time: starts at zero, advances only via SleepMicros/Advance.
// Shared between FaultInjectingSource (which injects latency by sleeping)
// and MeteredSource (which timestamps calls), this yields exact,
// repeatable latency histograms.
class SimulatedClock : public Clock {
 public:
  std::uint64_t NowMicros() override { return now_micros_; }
  void SleepMicros(std::uint64_t micros) override { now_micros_ += micros; }
  void Advance(std::uint64_t micros) { now_micros_ += micros; }

 private:
  std::uint64_t now_micros_ = 0;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_CLOCK_H_
