#ifndef UCQN_RUNTIME_SHARED_CACHE_H_
#define UCQN_RUNTIME_SHARED_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dict/term_dictionary.h"
#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// The footnote-4 call signature: relation, pattern word, and the values at
// the pattern's *input* slots. Output-slot values never participate — the
// source ignores them, so two calls differing only there are the same
// physical call. This textual rendering is kept for diagnostics and
// tests; the store itself is keyed by the packed id form below.
std::string SourceCacheKey(const std::string& relation,
                           const AccessPattern& pattern,
                           const std::vector<std::optional<Term>>& inputs);

// The same signature as a fixed-width id sequence: raw uint32s
// [relation_id, word_id, one id per slot] against the process-wide
// TermDictionary (TermDictionary::kAbsentId for output slots and for
// input slots the binding does not ground). Building one is a handful
// of integer stores — no per-value string rendering — and hashing or
// comparing it is a short memcmp, which is what makes cache probes on
// the executor's hot path cheap. Packed keys are process-local (ids do
// not survive a restart); snapshots therefore persist the *decoded*
// signature and re-encode on restore (see ExportedEntry).
std::string PackedSourceCacheKey(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs);

// Packs an already-decoded signature: one entry per slot, nullopt for
// "no value" (the snapshot-restore and testing entry point).
std::string PackSourceCacheSignature(
    const std::string& relation, const std::string& pattern_word,
    const std::vector<std::optional<Term>>& slots);

// Decodes a packed key back into (pattern word, per-slot values),
// verifying it round-trips against `relation`. Returns false for keys
// not produced by PackedSourceCacheKey (e.g. opaque test keys).
bool UnpackSourceCacheKey(const std::string& key, const std::string& relation,
                          std::string* pattern_word,
                          std::vector<std::optional<Term>>* slots);

// A process-wide cache of source-call results that outlives individual
// executions: repeated user queries over the same services (the
// multi-tenant analogue of ANSWER*'s Qᵘ/Qᵒ overlap) reuse each other's
// calls instead of paying full price every time.
//
// Structure: a sharded LRU keyed by SourceCacheKey. Each shard has its own
// mutex, so concurrently executing queries mostly contend only when they
// touch the same keys. Staleness is handled at the physical-access layer
// (per-relation TTLs plus explicit InvalidateRelation/InvalidateAll
// hooks) — predicting which *relations* a future query will touch is
// undecidable (Martinenghi), but dropping one service's entries when that
// service is known to have changed is always sound.
//
// Single-flight: when two executions miss the same key concurrently, the
// first becomes the *leader* (it performs the physical call and publishes
// the result) and the rest become *followers* (they block until the leader
// publishes, then reuse the result) — one physical call per distinct key
// no matter how many queries race on it. A leader that fails Abandon()s
// the flight and followers fall back to fetching themselves, so a
// transient error is never pinned and never deadlocks a waiter.
//
// The store itself never calls a Source: CachingSource (the thin
// per-execution view) drives the TryAcquire/Publish/Abandon/WaitForFlight
// protocol around its wrapped source. This keeps the store free of any
// per-execution state and lets each view keep per-execution hit/miss
// accounting while the store keeps the process-wide ledger.
class SharedCacheStore {
 public:
  struct Options {
    // Number of independently locked LRU shards. 1 gives exact global LRU
    // order (the per-execution CachingSource default); more shards trade
    // LRU exactness for less lock contention across queries.
    std::size_t shards = 8;
    // Maximum cached entries (0 = unbounded), split evenly across shards.
    std::size_t max_entries = 0;
    // Resident-size budget in *bytes* (0 = unbounded), split evenly
    // across shards. Charged per entry by EntryCost below — exact bytes
    // including key, relation and tuple payloads, so a wide tuple costs
    // what it actually holds and an empty (negative) result still pays
    // its bookkeeping footprint instead of a flat one-tuple charge.
    std::size_t budget_bytes = 0;
    // TTL applied to relations without a SetRelationTtl override; 0 means
    // entries never expire by age.
    std::uint64_t default_ttl_micros = 0;
    // TTL for *negative* (empty) results, overriding the relation/default
    // TTL when non-zero. An empty result is the cache's claim that a call
    // has no answer — the claim hardest to keep fresh (a tuple appearing
    // at the source flips it from true to false), so services commonly
    // expire it faster than positive data. 0 = no split: empty results
    // age exactly like non-empty ones.
    std::uint64_t negative_ttl_micros = 0;
    // Time source for TTL stamps. Not owned; pass a SimulatedClock for
    // deterministic expiry tests. Null = the store owns a SteadyClock.
    Clock* clock = nullptr;
  };

  // Process-wide counters, aggregated over all shards on read.
  struct Stats {
    std::uint64_t hits = 0;          // lookups served from the cache
    std::uint64_t misses = 0;        // lookups that became leaders
    std::uint64_t flight_waits = 0;  // lookups coalesced onto a flight
    std::uint64_t inserts = 0;       // published results
    std::uint64_t evictions = 0;     // entries dropped for capacity/budget
    std::uint64_t stale_drops = 0;   // entries dropped for TTL expiry
    std::uint64_t invalidated = 0;   // entries dropped via Invalidate*
    std::uint64_t entries = 0;       // current occupancy
    std::uint64_t tuples = 0;        // current occupancy, in tuples
    std::uint64_t bytes = 0;         // current occupancy, exact bytes

    double HitRatio() const {
      const std::uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  struct RelationCounters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  SharedCacheStore();
  explicit SharedCacheStore(Options options);

  // Overrides the default TTL for one relation's entries (0 = that
  // relation's entries never expire). Applies to entries inserted after
  // the call.
  void SetRelationTtl(const std::string& relation, std::uint64_t ttl_micros);

  // Overrides Options::negative_ttl_micros (0 = disable the split).
  // Applies to empty results published after the call. A non-zero
  // negative TTL beats every positive override, including SetRelationTtl.
  void SetNegativeTtl(std::uint64_t ttl_micros);

  // --- lookup protocol (driven by CachingSource) --------------------------

  enum class LookupState {
    kHit,       // `tuples` holds the cached result
    kLeader,    // caller owns the flight: fetch, then Publish or Abandon
    kFollower,  // another caller is fetching this key: WaitForFlight
  };
  struct Lookup {
    LookupState state = LookupState::kLeader;
    std::vector<Tuple> tuples;  // meaningful only for kHit
    // True when this lookup dropped a TTL-expired entry on its way to a
    // miss — the per-execution staleness attribution.
    bool stale_drop = false;
  };

  // Non-blocking lookup. On kLeader the caller MUST eventually Publish or
  // Abandon the key (CachingSource does so on every path), or followers
  // would wait for the process lifetime.
  Lookup TryAcquire(const std::string& key, const std::string& relation);

  // Publishes a leader's successful result and wakes the key's followers.
  // Returns the number of entries evicted to make room.
  std::size_t Publish(const std::string& key, const std::string& relation,
                      std::vector<Tuple> tuples);

  // Releases a leader's flight without a result (the physical call
  // failed). Followers wake and fetch for themselves; the failure is not
  // cached.
  void Abandon(const std::string& key);

  // Blocks until the in-flight fetch of `key` publishes or abandons.
  // Returns the published tuples, or nullopt when the flight was
  // abandoned (or the entry already evicted again) — the caller then
  // fetches for itself.
  std::optional<std::vector<Tuple>> WaitForFlight(const std::string& key);

  // --- invalidation (the staleness hooks) ---------------------------------

  // Drops every entry of `relation` — call when one service is known to
  // have changed. In-flight fetches are unaffected (their result reflects
  // the post-change service anyway).
  void InvalidateRelation(const std::string& relation);
  // Drops everything.
  void InvalidateAll();
  // Scoped invalidation for a delta feed: drops only the entries of
  // `relation` whose packed-key signature one of `changed` tuples can
  // match — a changed tuple affects a cached call's result iff it agrees
  // with every valued (bound-input) slot of the key, so keyed lookups
  // bound to other values survive the update. Entries with unparseable
  // keys are dropped conservatively. Returns the number of entries
  // dropped (also counted in stats().invalidated).
  std::size_t InvalidateDelta(const std::string& relation,
                              const std::vector<Tuple>& changed);

  // --- snapshots (cross-process persistence) ------------------------------

  // One cache entry as exported for a snapshot. TTLs are exported as
  // *remaining* lifetime rather than absolute expiry stamps: the store's
  // clock epoch is arbitrary (steady or simulated), so only durations
  // survive a process boundary. 0 = never expires.
  //
  // Keys are exported *decoded*: a packed id key is unpacked into
  // (pattern word, per-slot values) so the snapshot carries strings,
  // not ids — the restoring process re-encodes against its own
  // dictionary, which makes warm restarts survive dictionary
  // renumbering. Entries whose key was not produced by
  // PackedSourceCacheKey (tests publishing opaque keys) carry the raw
  // key verbatim in `key` instead, with `pattern_word`/`inputs` empty.
  struct ExportedEntry {
    std::string key;  // verbatim opaque key; empty for decoded entries
    std::string relation;
    std::string pattern_word;                 // decoded signature...
    std::vector<std::optional<Term>> inputs;  // ...nullopt = no value
    std::vector<Tuple> tuples;
    std::uint64_t ttl_remaining_micros = 0;
  };

  // Copies every live entry out, LRU order per shard (most recent first),
  // skipping entries already expired at export time. In-flight fetches
  // are not exported (they have no result yet).
  std::vector<ExportedEntry> ExportEntries() const;

  // Re-inserts a snapshot entry: expiry restarts at now +
  // ttl_remaining_micros (0 = never). Decoded entries are re-encoded
  // into a packed key against the current process dictionary; opaque
  // entries keep their verbatim key. Counted as an insert; the capacity
  // and byte budgets apply exactly as in Publish, so restoring into a
  // smaller store evicts from the cold end. Never touches flights — call
  // before serving, or concurrently with traffic (both are safe; a racing
  // Publish of the same key simply wins or is replaced by LRU age).
  void RestoreEntry(const ExportedEntry& entry);

  // The exact resident cost Publish charges for one entry: struct
  // bookkeeping plus the key, relation, and every tuple's terms. Public
  // so budget tests and capacity planning can compute thresholds rather
  // than hard-coding platform-dependent sizes.
  static std::size_t EntryCost(const std::string& key,
                               const std::string& relation,
                               const std::vector<Tuple>& tuples);

  // --- observability ------------------------------------------------------

  Stats stats() const;
  // Observed per-relation lookup counters (hits/misses including
  // coalesced flights as hits).
  std::map<std::string, RelationCounters> relation_counters() const;
  // hits / (hits + misses) for one relation; 0 when never looked up. The
  // cache-aware cost model prices a hot relation's expected calls with
  // this (see AdaptiveCostOptions::shared_cache).
  double RelationHitRate(const std::string& relation) const;

  // Human-readable summary: a totals line plus one line per relation,
  // MeteredSource-style.
  std::string ToText() const;
  // {"totals": {...}, "relations": {"R": {"hits": h, "misses": m}, ...}}
  std::string ToJson() const;

  std::size_t size() const;    // current entries
  std::size_t tuples() const;  // current tuples held
  std::size_t bytes() const;   // current resident bytes held

 private:
  struct Entry {
    std::string key;
    std::string relation;
    std::vector<Tuple> tuples;
    std::size_t tuple_cost = 1;       // max(1, tuples.size())
    std::size_t byte_cost = 0;        // EntryCost at publish time
    std::uint64_t expire_at_micros = 0;  // 0 = never
  };

  // Cache-line aligned: shards are allocated independently, but the
  // alignment guarantees two shards' mutexes and counters never share a
  // line even if an allocator packs them — concurrent executions on
  // different shards must not false-share (the CacheScope
  // FalseSharingAnalysis counter layout is the exemplar here).
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    // Front = most recently used; `index` points into `lru`.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    // Keys currently owned by a leader.
    std::unordered_set<std::string> flights;
    std::size_t tuples_held = 0;
    std::size_t bytes_held = 0;
    Stats stats;  // entries/tuples/bytes fields unused; filled on aggregate
    std::map<std::string, RelationCounters> per_relation;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  // The TTL for a result of `relation` that is empty (`negative` true) or
  // not: negative results take the negative TTL when one is configured,
  // everything else the relation/default TTL.
  std::uint64_t TtlFor(const std::string& relation, bool negative) const;
  // The one staleness rule, used by every path that reads an entry: an
  // entry is stale from the instant now == expire_at_micros (a TTL of T
  // serves reads at now+0 .. now+T-1). 0 = never expires.
  static bool IsExpired(const Entry& entry, std::uint64_t now) {
    return entry.expire_at_micros != 0 && now >= entry.expire_at_micros;
  }
  // now + ttl, saturating at the top of the range instead of wrapping —
  // a huge TTL must mean "practically never", and a wrapped sum could
  // otherwise collide with the 0 = "never expires" sentinel or land in
  // the past.
  static std::uint64_t ExpiryFor(std::uint64_t now, std::uint64_t ttl);
  // Drops `it` from `shard` (lock held). Does not touch counters.
  void Erase(Shard& shard, std::list<Entry>::iterator it);
  // Evicts from the cold end while the shard exceeds its entry/byte
  // limits, never dropping the just-inserted front entry (lock held).
  // Returns the number of evictions (also counted in the shard ledger).
  std::size_t EvictOverflow(Shard& shard);
  // Inserts at the front of `shard`'s LRU and evicts overflow (lock
  // held) — the shared tail of Publish and RestoreEntry.
  std::size_t InsertFront(Shard& shard, Entry entry);

  Options options_;
  std::unique_ptr<SteadyClock> owned_clock_;
  Clock* clock_;
  std::size_t shard_max_entries_;   // 0 = unbounded
  std::size_t shard_budget_bytes_;  // 0 = unbounded
  mutable std::mutex ttl_mu_;
  std::unordered_map<std::string, std::uint64_t> relation_ttls_;
  std::uint64_t negative_ttl_micros_;  // guarded by ttl_mu_
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_SHARED_CACHE_H_
