#include "runtime/fault_injection.h"

#include "util/hash.h"

namespace ucqn {

namespace {

std::string CallKey(const std::string& relation, const AccessPattern& pattern,
                    const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

}  // namespace

FetchResult FaultInjectingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  const std::string key = CallKey(relation, pattern, inputs);
  std::uint64_t call_number;  // global arrival index (fail_first_calls only)
  std::uint64_t occurrence;   // per-signature repeat count
  {
    std::lock_guard<std::mutex> lock(mu_);
    call_number = ++stats_.calls;
    occurrence = per_key_calls_[key]++;
  }

  // Per-request randomness is derived from the request's content (call
  // signature + occurrence number), not from a shared stream consumed in
  // arrival order: a parallel wave replays identically however its
  // threads interleave.
  std::size_t request_seed = static_cast<std::size_t>(plan_.seed);
  HashCombine(&request_seed, key);
  HashCombine(&request_seed, occurrence);
  std::mt19937_64 rng(request_seed);

  // Latency is injected up front: a failing service still makes you wait.
  std::uint64_t latency = plan_.latency_micros;
  auto relation_latency = plan_.relation_latency_micros.find(relation);
  if (relation_latency != plan_.relation_latency_micros.end()) {
    latency = relation_latency->second;
  }
  if (plan_.latency_jitter_micros > 0) {
    std::uniform_int_distribution<std::uint64_t> dist(
        0, plan_.latency_jitter_micros);
    latency += dist(rng);
  }
  // Correlated spike: every call landing inside the spike window of the
  // shared clock pays extra, whatever relation it targets. The window is
  // read from the clock (not the seeded rng) so concurrent relations
  // spike *together* — the point of a correlated fault.
  if (plan_.spike_period_micros > 0 && clock_ != nullptr &&
      clock_->NowMicros() % plan_.spike_period_micros <
          plan_.spike_duration_micros) {
    latency += plan_.spike_extra_micros;
  }
  if (latency > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.injected_latency_micros += latency;
    }
    if (clock_ != nullptr) clock_->SleepMicros(latency);
  }

  bool fail = call_number <= plan_.fail_first_calls;
  if (!fail && plan_.fail_first_per_key > 0 &&
      occurrence < plan_.fail_first_per_key) {
    fail = true;
  }
  if (!fail) {
    double failure_probability = plan_.failure_probability;
    auto flaky = plan_.relation_failure_probability.find(relation);
    if (flaky != plan_.relation_failure_probability.end()) {
      failure_probability = flaky->second;
    }
    if (failure_probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fail = dist(rng) < failure_probability;
    }
  }
  if (fail) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected_failures;
    return FetchResult::TransientError("injected transient failure on " +
                                       relation + "^" + pattern.word());
  }
  return inner_->Fetch(relation, pattern, inputs);
}

}  // namespace ucqn
