#include "runtime/fault_injection.h"

#include "util/hash.h"

namespace ucqn {

namespace {

std::string CallKey(const std::string& relation, const AccessPattern& pattern,
                    const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

}  // namespace

FetchResult FaultInjectingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  const std::string key = CallKey(relation, pattern, inputs);
  std::uint64_t call_number;  // global arrival index (fail_first_calls only)
  std::uint64_t occurrence;   // per-signature repeat count
  {
    std::lock_guard<std::mutex> lock(mu_);
    call_number = ++stats_.calls;
    occurrence = per_key_calls_[key]++;
  }

  // Per-request randomness is derived from the request's content (call
  // signature + occurrence number), not from a shared stream consumed in
  // arrival order: a parallel wave replays identically however its
  // threads interleave.
  std::size_t request_seed = static_cast<std::size_t>(plan_.seed);
  HashCombine(&request_seed, key);
  HashCombine(&request_seed, occurrence);
  std::mt19937_64 rng(request_seed);

  // Latency is injected up front: a failing service still makes you wait.
  std::uint64_t latency = plan_.latency_micros;
  auto relation_latency = plan_.relation_latency_micros.find(relation);
  if (relation_latency != plan_.relation_latency_micros.end()) {
    latency = relation_latency->second;
  }
  if (plan_.latency_jitter_micros > 0) {
    std::uniform_int_distribution<std::uint64_t> dist(
        0, plan_.latency_jitter_micros);
    latency += dist(rng);
  }
  if (latency > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.injected_latency_micros += latency;
    }
    if (clock_ != nullptr) clock_->SleepMicros(latency);
  }

  bool fail = call_number <= plan_.fail_first_calls;
  if (!fail && plan_.fail_first_per_key > 0 &&
      occurrence < plan_.fail_first_per_key) {
    fail = true;
  }
  if (!fail && plan_.failure_probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    fail = dist(rng) < plan_.failure_probability;
  }
  if (fail) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected_failures;
    return FetchResult::TransientError("injected transient failure on " +
                                       relation + "^" + pattern.word());
  }
  return inner_->Fetch(relation, pattern, inputs);
}

}  // namespace ucqn
