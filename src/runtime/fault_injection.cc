#include "runtime/fault_injection.h"

namespace ucqn {

namespace {

std::string CallKey(const std::string& relation, const AccessPattern& pattern,
                    const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

}  // namespace

FetchResult FaultInjectingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  ++stats_.calls;

  // Latency is injected up front: a failing service still makes you wait.
  std::uint64_t latency = plan_.latency_micros;
  if (plan_.latency_jitter_micros > 0) {
    std::uniform_int_distribution<std::uint64_t> dist(
        0, plan_.latency_jitter_micros);
    latency += dist(rng_);
  }
  if (latency > 0) {
    stats_.injected_latency_micros += latency;
    if (clock_ != nullptr) clock_->SleepMicros(latency);
  }

  bool fail = false;
  if (stats_.calls <= plan_.fail_first_calls) fail = true;
  if (!fail && plan_.fail_first_per_key > 0) {
    std::uint64_t& seen = per_key_failures_[CallKey(relation, pattern, inputs)];
    if (seen < plan_.fail_first_per_key) {
      ++seen;
      fail = true;
    }
  }
  if (!fail && plan_.failure_probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    fail = dist(rng_) < plan_.failure_probability;
  }
  if (fail) {
    ++stats_.injected_failures;
    return FetchResult::TransientError("injected transient failure on " +
                                       relation + "^" + pattern.word());
  }
  return inner_->Fetch(relation, pattern, inputs);
}

}  // namespace ucqn
