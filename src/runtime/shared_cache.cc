#include "runtime/shared_cache.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>

namespace ucqn {

std::string SourceCacheKey(const std::string& relation,
                           const AccessPattern& pattern,
                           const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    // Only input slots participate in the call signature; the source
    // ignores values at output slots, so two calls differing only there
    // are the same call (footnote 4).
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

namespace {

void AppendId(std::string* key, std::uint32_t id) {
  char raw[sizeof(id)];
  std::memcpy(raw, &id, sizeof(id));
  key->append(raw, sizeof(id));
}

std::uint32_t IdAt(const std::string& key, std::size_t index) {
  std::uint32_t id;
  std::memcpy(&id, key.data() + index * sizeof(id), sizeof(id));
  return id;
}

}  // namespace

std::string PackSourceCacheSignature(
    const std::string& relation, const std::string& pattern_word,
    const std::vector<std::optional<Term>>& slots) {
  TermDictionary& dict = TermDictionary::Global();
  std::string key;
  key.reserve((2 + slots.size()) * sizeof(std::uint32_t));
  AppendId(&key, dict.Intern(relation));
  AppendId(&key, dict.Intern(pattern_word));
  for (const std::optional<Term>& slot : slots) {
    AppendId(&key, slot.has_value() ? dict.EncodeGround(*slot)
                                    : TermDictionary::kAbsentId);
  }
  return key;
}

std::string PackedSourceCacheKey(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  TermDictionary& dict = TermDictionary::Global();
  std::string key;
  key.reserve((2 + inputs.size()) * sizeof(std::uint32_t));
  AppendId(&key, dict.Intern(relation));
  AppendId(&key, dict.Intern(pattern.word()));
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    // Footnote 4 again: values at output slots never reach the key.
    const bool keyed = pattern.IsInputSlot(j) && inputs[j].has_value();
    AppendId(&key, keyed ? dict.EncodeGround(*inputs[j])
                         : TermDictionary::kAbsentId);
  }
  return key;
}

bool UnpackSourceCacheKey(const std::string& key, const std::string& relation,
                          std::string* pattern_word,
                          std::vector<std::optional<Term>>* slots) {
  const std::size_t width = sizeof(std::uint32_t);
  if (key.size() < 2 * width || key.size() % width != 0) return false;
  const TermDictionary& dict = TermDictionary::Global();
  const std::size_t minted = dict.size();
  const std::size_t ids = key.size() / width;
  for (std::size_t i = 0; i < ids; ++i) {
    const std::uint32_t id = IdAt(key, i);
    if (i < 2 && id == TermDictionary::kAbsentId) return false;
    if (id != TermDictionary::kAbsentId && id >= minted) return false;
  }
  // An opaque key of the right shape could still alias valid ids; the
  // entry's own relation disambiguates — a genuine packed key always
  // round-trips it.
  if (dict.Decode(IdAt(key, 0)) != relation) return false;
  *pattern_word = dict.Decode(IdAt(key, 1));
  slots->clear();
  slots->reserve(ids - 2);
  for (std::size_t i = 2; i < ids; ++i) {
    const std::uint32_t id = IdAt(key, i);
    if (id == TermDictionary::kAbsentId) {
      slots->emplace_back(std::nullopt);
    } else {
      slots->emplace_back(dict.DecodeTerm(id));
    }
  }
  return true;
}

SharedCacheStore::SharedCacheStore() : SharedCacheStore(Options()) {}

SharedCacheStore::SharedCacheStore(Options options)
    : options_(options), negative_ttl_micros_(options.negative_ttl_micros) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.clock == nullptr) {
    owned_clock_ = std::make_unique<SteadyClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = options_.clock;
  }
  // Split the global limits evenly; a shard always gets at least one
  // entry/tuple of room so a tiny budget still caches something.
  shard_max_entries_ =
      options_.max_entries == 0
          ? 0
          : std::max<std::size_t>(1, options_.max_entries / options_.shards);
  shard_budget_bytes_ =
      options_.budget_bytes == 0
          ? 0
          : std::max<std::size_t>(1, options_.budget_bytes / options_.shards);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SharedCacheStore::Shard& SharedCacheStore::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const SharedCacheStore::Shard& SharedCacheStore::ShardFor(
    const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void SharedCacheStore::SetRelationTtl(const std::string& relation,
                                      std::uint64_t ttl_micros) {
  std::lock_guard<std::mutex> lock(ttl_mu_);
  relation_ttls_[relation] = ttl_micros;
}

void SharedCacheStore::SetNegativeTtl(std::uint64_t ttl_micros) {
  std::lock_guard<std::mutex> lock(ttl_mu_);
  negative_ttl_micros_ = ttl_micros;
}

std::uint64_t SharedCacheStore::TtlFor(const std::string& relation,
                                       bool negative) const {
  std::lock_guard<std::mutex> lock(ttl_mu_);
  if (negative && negative_ttl_micros_ != 0) return negative_ttl_micros_;
  auto it = relation_ttls_.find(relation);
  return it == relation_ttls_.end() ? options_.default_ttl_micros : it->second;
}

std::uint64_t SharedCacheStore::ExpiryFor(std::uint64_t now,
                                          std::uint64_t ttl) {
  const std::uint64_t never = std::numeric_limits<std::uint64_t>::max();
  return ttl >= never - now ? never : now + ttl;
}

std::size_t SharedCacheStore::EntryCost(const std::string& key,
                                        const std::string& relation,
                                        const std::vector<Tuple>& tuples) {
  std::size_t bytes = sizeof(Entry) + key.size() + relation.size();
  for (const Tuple& tuple : tuples) {
    bytes += sizeof(Tuple);
    for (const Term& term : tuple) bytes += sizeof(Term) + term.name().size();
  }
  return bytes;
}

void SharedCacheStore::Erase(Shard& shard, std::list<Entry>::iterator it) {
  shard.tuples_held -= it->tuple_cost;
  shard.bytes_held -= it->byte_cost;
  shard.index.erase(it->key);
  shard.lru.erase(it);
}

SharedCacheStore::Lookup SharedCacheStore::TryAcquire(
    const std::string& key, const std::string& relation) {
  Shard& shard = ShardFor(key);
  Lookup result;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    if (IsExpired(entry, clock_->NowMicros())) {
      // Expired: drop it and fall through to the miss path.
      ++shard.stats.stale_drops;
      result.stale_drop = true;
      Erase(shard, it->second);
    } else {
      ++shard.stats.hits;
      ++shard.per_relation[relation].hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      result.state = LookupState::kHit;
      result.tuples = entry.tuples;
      return result;
    }
  }
  if (shard.flights.count(key) > 0) {
    // Someone else is already fetching this key: coalesce. Counted as a
    // hit — no physical call will be made on our behalf.
    ++shard.stats.hits;
    ++shard.stats.flight_waits;
    ++shard.per_relation[relation].hits;
    result.state = LookupState::kFollower;
    return result;
  }
  ++shard.stats.misses;
  ++shard.per_relation[relation].misses;
  shard.flights.insert(key);
  result.state = LookupState::kLeader;
  return result;
}

std::size_t SharedCacheStore::EvictOverflow(Shard& shard) {
  std::size_t evicted = 0;
  while (!shard.lru.empty() &&
         ((shard_max_entries_ != 0 && shard.lru.size() > shard_max_entries_) ||
          (shard_budget_bytes_ != 0 &&
           shard.bytes_held > shard_budget_bytes_))) {
    // Never evict the entry just inserted at the front — a result larger
    // than the whole budget still serves this execution's repeats.
    if (std::prev(shard.lru.end()) == shard.lru.begin()) break;
    Erase(shard, std::prev(shard.lru.end()));
    ++shard.stats.evictions;
    ++evicted;
  }
  return evicted;
}

std::size_t SharedCacheStore::InsertFront(Shard& shard, Entry entry) {
  // A stale follower of an abandoned flight may publish a key that was
  // republished meanwhile; replace, keeping occupancy consistent.
  auto existing = shard.index.find(entry.key);
  if (existing != shard.index.end()) Erase(shard, existing->second);
  shard.tuples_held += entry.tuple_cost;
  shard.bytes_held += entry.byte_cost;
  const std::string key = entry.key;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.inserts;
  return EvictOverflow(shard);
}

std::size_t SharedCacheStore::Publish(const std::string& key,
                                      const std::string& relation,
                                      std::vector<Tuple> tuples) {
  const std::uint64_t ttl = TtlFor(relation, /*negative=*/tuples.empty());
  Shard& shard = ShardFor(key);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.flights.erase(key);

    Entry entry;
    entry.key = key;
    entry.relation = relation;
    entry.tuple_cost = std::max<std::size_t>(1, tuples.size());
    entry.byte_cost = EntryCost(key, relation, tuples);
    entry.tuples = std::move(tuples);
    // ttl == 0 keeps the "never expires" sentinel; otherwise saturate so
    // an enormous TTL cannot wrap around into the sentinel (or into the
    // past). ttl > 0 and a saturating sum also mean a *computed* expiry
    // can never be 0, so the sentinel is unambiguous.
    entry.expire_at_micros =
        ttl == 0 ? 0 : ExpiryFor(clock_->NowMicros(), ttl);
    evicted = InsertFront(shard, std::move(entry));
  }
  shard.cv.notify_all();
  return evicted;
}

std::vector<SharedCacheStore::ExportedEntry> SharedCacheStore::ExportEntries()
    const {
  std::vector<ExportedEntry> out;
  const std::uint64_t now = clock_->NowMicros();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      if (IsExpired(entry, now)) continue;  // not worth carrying across
      ExportedEntry exported;
      exported.relation = entry.relation;
      // Decode the packed key so the snapshot carries strings: ids are
      // process-local, and the restoring side re-encodes against its
      // own dictionary. Keys the unpacker does not recognize (opaque
      // test keys) travel verbatim instead.
      if (!UnpackSourceCacheKey(entry.key, entry.relation,
                                &exported.pattern_word, &exported.inputs)) {
        exported.key = entry.key;
      }
      exported.tuples = entry.tuples;
      exported.ttl_remaining_micros =
          entry.expire_at_micros == 0 ? 0 : entry.expire_at_micros - now;
      out.push_back(std::move(exported));
    }
  }
  return out;
}

void SharedCacheStore::RestoreEntry(const ExportedEntry& restored) {
  // Decoded entries re-encode against the current process dictionary —
  // this is what makes snapshots survive dictionary renumbering across
  // restarts. Opaque entries keep their verbatim key.
  const std::string key =
      restored.key.empty()
          ? PackSourceCacheSignature(restored.relation, restored.pattern_word,
                                     restored.inputs)
          : restored.key;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);

  Entry entry;
  entry.key = key;
  entry.relation = restored.relation;
  entry.tuple_cost = std::max<std::size_t>(1, restored.tuples.size());
  entry.byte_cost = EntryCost(key, restored.relation, restored.tuples);
  entry.tuples = restored.tuples;
  // The exporter stored remaining lifetime; the clock epoch restarts
  // here. 0 stays the "never expires" sentinel, and ExpiryFor keeps a
  // huge remainder from wrapping into it. Empty results additionally
  // re-arm against the *restoring* store's negative TTL: the exporter's
  // remainder was computed under the old configuration, and a negative
  // entry must never outlive the lifetime this store would give a freshly
  // published miss (a restart that shortens --negative-ttl would otherwise
  // resurrect long-lived negatives). When the current negative policy is
  // "never expires" (TtlFor's 0 sentinel), the exported remainder stands.
  std::uint64_t remaining = restored.ttl_remaining_micros;
  if (restored.tuples.empty()) {
    const std::uint64_t fresh = TtlFor(restored.relation, /*negative=*/true);
    if (fresh != 0) {
      remaining = remaining == 0 ? fresh : std::min(remaining, fresh);
    }
  }
  entry.expire_at_micros =
      remaining == 0 ? 0 : ExpiryFor(clock_->NowMicros(), remaining);
  InsertFront(shard, std::move(entry));
}

void SharedCacheStore::Abandon(const std::string& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.flights.erase(key);
  }
  shard.cv.notify_all();
}

std::optional<std::vector<Tuple>> SharedCacheStore::WaitForFlight(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  shard.cv.wait(lock, [&] { return shard.flights.count(key) == 0; });
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;  // abandoned or evicted
  // Apply the same staleness rule as TryAcquire: a follower that wakes at
  // (or after) the published entry's expiry must not be handed a result
  // that a fresh lookup at the same instant would have stale-dropped.
  // (Reachable with a SimulatedClock or when a relation's TTL is shorter
  // than the wait; counted in the same stale-drop ledger.)
  if (IsExpired(*it->second, clock_->NowMicros())) {
    ++shard.stats.stale_drops;
    Erase(shard, it->second);
    return std::nullopt;  // caller refetches, as after an abandoned flight
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->tuples;
}

void SharedCacheStore::InvalidateRelation(const std::string& relation) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->relation == relation) {
        auto victim = it++;
        Erase(*shard, victim);
        ++shard->stats.invalidated;
      } else {
        ++it;
      }
    }
  }
}

std::size_t SharedCacheStore::InvalidateDelta(
    const std::string& relation, const std::vector<Tuple>& changed) {
  if (changed.empty()) return 0;
  std::size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->relation != relation) {
        ++it;
        continue;
      }
      // A cached call's result can gain or lose a changed tuple only if
      // the tuple agrees with every valued slot of the packed key (valued
      // slots are exactly the bound input positions; footnote 4 keeps
      // output slots absent). Full scans have no valued slots and always
      // drop; keys the unpacker does not recognize (opaque test keys)
      // drop conservatively — we cannot prove the change misses them.
      std::string pattern_word;
      std::vector<std::optional<Term>> slots;
      bool drop = true;
      if (UnpackSourceCacheKey(it->key, relation, &pattern_word, &slots)) {
        drop = false;
        for (const Tuple& tuple : changed) {
          if (tuple.size() != slots.size()) continue;
          bool agrees = true;
          for (std::size_t j = 0; j < slots.size(); ++j) {
            if (slots[j].has_value() && *slots[j] != tuple[j]) {
              agrees = false;
              break;
            }
          }
          if (agrees) {
            drop = true;
            break;
          }
        }
      }
      if (drop) {
        auto victim = it++;
        Erase(*shard, victim);
        ++shard->stats.invalidated;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void SharedCacheStore::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats.invalidated += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
    shard->tuples_held = 0;
    shard->bytes_held = 0;
  }
}

SharedCacheStore::Stats SharedCacheStore::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.flight_waits += shard->stats.flight_waits;
    total.inserts += shard->stats.inserts;
    total.evictions += shard->stats.evictions;
    total.stale_drops += shard->stats.stale_drops;
    total.invalidated += shard->stats.invalidated;
    total.entries += shard->lru.size();
    total.tuples += shard->tuples_held;
    total.bytes += shard->bytes_held;
  }
  return total;
}

std::map<std::string, SharedCacheStore::RelationCounters>
SharedCacheStore::relation_counters() const {
  std::map<std::string, RelationCounters> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [relation, counters] : shard->per_relation) {
      out[relation].hits += counters.hits;
      out[relation].misses += counters.misses;
    }
  }
  return out;
}

double SharedCacheStore::RelationHitRate(const std::string& relation) const {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->per_relation.find(relation);
    if (it != shard->per_relation.end()) {
      hits += it->second.hits;
      misses += it->second.misses;
    }
  }
  const std::uint64_t lookups = hits + misses;
  return lookups == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::size_t SharedCacheStore::size() const { return stats().entries; }

std::size_t SharedCacheStore::tuples() const { return stats().tuples; }

std::size_t SharedCacheStore::bytes() const { return stats().bytes; }

std::string SharedCacheStore::ToText() const {
  const Stats s = stats();
  std::string out =
      "shared-cache: entries=" + std::to_string(s.entries) +
      " tuples=" + std::to_string(s.tuples) +
      " bytes=" + std::to_string(s.bytes) +
      " hits=" + std::to_string(s.hits) +
      " misses=" + std::to_string(s.misses) +
      " flight_waits=" + std::to_string(s.flight_waits) +
      " evictions=" + std::to_string(s.evictions) +
      " stale=" + std::to_string(s.stale_drops) +
      " invalidated=" + std::to_string(s.invalidated);
  for (const auto& [relation, counters] : relation_counters()) {
    out += "\n" + relation + ": hits=" + std::to_string(counters.hits) +
           " misses=" + std::to_string(counters.misses);
  }
  return out;
}

std::string SharedCacheStore::ToJson() const {
  const Stats s = stats();
  std::string out =
      "{\"totals\": {\"entries\": " + std::to_string(s.entries) +
      ", \"tuples\": " + std::to_string(s.tuples) +
      ", \"bytes\": " + std::to_string(s.bytes) +
      ", \"hits\": " + std::to_string(s.hits) +
      ", \"misses\": " + std::to_string(s.misses) +
      ", \"flight_waits\": " + std::to_string(s.flight_waits) +
      ", \"inserts\": " + std::to_string(s.inserts) +
      ", \"evictions\": " + std::to_string(s.evictions) +
      ", \"stale_drops\": " + std::to_string(s.stale_drops) +
      ", \"invalidated\": " + std::to_string(s.invalidated) +
      "}, \"relations\": {";
  bool first = true;
  for (const auto& [relation, counters] : relation_counters()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + relation + "\": {\"hits\": " + std::to_string(counters.hits) +
           ", \"misses\": " + std::to_string(counters.misses) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ucqn
