#ifndef UCQN_RUNTIME_FAULT_INJECTION_H_
#define UCQN_RUNTIME_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// What a FaultInjectingSource does to the calls passing through it. All
// randomness is seeded, so a given plan replays identically — tests and
// benches get deterministic flakiness.
struct FaultPlan {
  // Each call independently fails with this probability (after the
  // deterministic fail_first_* rules below have been satisfied).
  double failure_probability = 0.0;
  std::uint64_t seed = 42;
  // The first N calls overall fail — models a source that is down and
  // comes back. Note this is the only arrival-order rule: under parallel
  // waves the *count* of failures stays exactly N, but which concurrent
  // calls absorb them depends on scheduling. Use fail_first_per_key for
  // interleaving-independent behavior.
  std::uint64_t fail_first_calls = 0;
  // The first N attempts of each distinct call signature fail, then that
  // signature succeeds forever — the canonical retry-path test: a bare
  // source never sees a success for a fresh call, a retrying source does.
  std::uint64_t fail_first_per_key = 0;
  // Injected per-call service latency, slept on the clock (virtual time
  // under SimulatedClock): fixed part + seeded U[0, jitter].
  std::uint64_t latency_micros = 0;
  std::uint64_t latency_jitter_micros = 0;
  // Per-relation override of the fixed latency part (jitter still
  // applies): models a fleet where one service is slower than the rest —
  // the scenario the adaptive cost model exists for.
  std::map<std::string, std::uint64_t> relation_latency_micros;
  // Per-relation override of failure_probability: a fleet where one or
  // two services are flaky while the rest are solid (the workload
  // generator's "flaky services"). Same content-seeded determinism.
  std::map<std::string, double> relation_failure_probability;
  // Correlated latency spikes: while the clock sits inside the first
  // `spike_duration_micros` of each `spike_period_micros` window, every
  // call — whatever its relation — pays `spike_extra_micros` on top. All
  // relations spike together because the window is keyed on the shared
  // clock, modeling a congested upstream network rather than independent
  // per-service noise. Disabled while spike_period_micros == 0, and inert
  // without a clock (there is no time axis to correlate on).
  std::uint64_t spike_period_micros = 0;
  std::uint64_t spike_duration_micros = 0;
  std::uint64_t spike_extra_micros = 0;
};

// Decorator that makes a reliable source flaky and slow on demand — the
// test double for the paper's remote web services. Failures surface as
// FetchStatus::kTransientError; latency is charged to the clock so
// MeteredSource (sharing the same clock) observes it.
//
// Safe for concurrent use: ParallelSource fans batched waves out over
// the transport, so Fetch may run on several pool threads at once. All
// per-call randomness (latency jitter, probabilistic failure) is seeded
// from the plan seed plus the *request's content* — its call signature
// and per-signature occurrence number — never from global arrival order,
// so a wave injects the same faults however its threads interleave.
class FaultInjectingSource : public Source {
 public:
  struct FaultStats {
    std::uint64_t calls = 0;
    std::uint64_t injected_failures = 0;
    std::uint64_t injected_latency_micros = 0;
  };

  // Does not take ownership; `inner` (and `clock`, if given) must outlive
  // the adapter. With a null clock, latency is recorded in the stats but
  // not slept anywhere.
  FaultInjectingSource(Source* inner, FaultPlan plan, Clock* clock = nullptr)
      : inner_(inner), plan_(plan), clock_(clock) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  const FaultStats& fault_stats() const { return stats_; }

 private:
  Source* inner_;
  FaultPlan plan_;
  Clock* clock_;
  std::mutex mu_;
  FaultStats stats_;
  std::unordered_map<std::string, std::uint64_t> per_key_calls_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_FAULT_INJECTION_H_
