#ifndef UCQN_RUNTIME_FAULT_INJECTION_H_
#define UCQN_RUNTIME_FAULT_INJECTION_H_

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// What a FaultInjectingSource does to the calls passing through it. All
// randomness is seeded, so a given plan replays identically — tests and
// benches get deterministic flakiness.
struct FaultPlan {
  // Each call independently fails with this probability (after the
  // deterministic fail_first_* rules below have been satisfied).
  double failure_probability = 0.0;
  std::uint64_t seed = 42;
  // The first N calls overall fail — models a source that is down and
  // comes back.
  std::uint64_t fail_first_calls = 0;
  // The first N attempts of each distinct call signature fail, then that
  // signature succeeds forever — the canonical retry-path test: a bare
  // source never sees a success for a fresh call, a retrying source does.
  std::uint64_t fail_first_per_key = 0;
  // Injected per-call service latency, slept on the clock (virtual time
  // under SimulatedClock): fixed part + seeded U[0, jitter].
  std::uint64_t latency_micros = 0;
  std::uint64_t latency_jitter_micros = 0;
};

// Decorator that makes a reliable source flaky and slow on demand — the
// test double for the paper's remote web services. Failures surface as
// FetchStatus::kTransientError; latency is charged to the clock so
// MeteredSource (sharing the same clock) observes it.
class FaultInjectingSource : public Source {
 public:
  struct FaultStats {
    std::uint64_t calls = 0;
    std::uint64_t injected_failures = 0;
    std::uint64_t injected_latency_micros = 0;
  };

  // Does not take ownership; `inner` (and `clock`, if given) must outlive
  // the adapter. With a null clock, latency is recorded in the stats but
  // not slept anywhere.
  FaultInjectingSource(Source* inner, FaultPlan plan, Clock* clock = nullptr)
      : inner_(inner), plan_(plan), clock_(clock), rng_(plan.seed) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  const FaultStats& fault_stats() const { return stats_; }

 private:
  Source* inner_;
  FaultPlan plan_;
  Clock* clock_;
  std::mt19937_64 rng_;
  FaultStats stats_;
  std::unordered_map<std::string, std::uint64_t> per_key_failures_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_FAULT_INJECTION_H_
