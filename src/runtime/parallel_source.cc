#include "runtime/parallel_source.h"

#include <algorithm>

namespace ucqn {

ParallelSource::ParallelSource(Source* inner, std::size_t workers,
                               Clock* clock)
    : inner_(inner), workers_(std::max<std::size_t>(workers, 1)),
      clock_(clock) {}

ParallelSource::~ParallelSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

FetchResult ParallelSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  return inner_->Fetch(relation, pattern, inputs);
}

void ParallelSource::StartThreadsLocked() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ParallelSource::WorkerLoop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    if (worker >= wave_workers_) continue;  // not part of this wave
    const std::string& relation = *relation_;
    const AccessPattern& pattern = *pattern_;
    const std::vector<std::vector<std::optional<Term>>>& batch = *batch_;
    std::vector<FetchResult>* results = results_;
    const std::size_t stride = wave_workers_;
    lock.unlock();
    for (std::size_t i = worker; i < batch.size(); i += stride) {
      (*results)[i] = inner_->Fetch(relation, pattern, batch[i]);
    }
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_one();
  }
}

std::vector<FetchResult> ParallelSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  ++stats_.batches;
  stats_.requests += inputs.size();
  const std::size_t fanout = std::min(workers_, inputs.size());
  if (fanout <= 1) {
    // Inline on the caller's thread: the historical sequential behavior,
    // with no wave bracketing (sum semantics on a SimulatedClock).
    std::vector<FetchResult> results;
    results.reserve(inputs.size());
    for (const std::vector<std::optional<Term>>& request : inputs) {
      results.push_back(inner_->Fetch(relation, pattern, request));
    }
    return results;
  }

  ++stats_.parallel_batches;
  std::vector<FetchResult> results(inputs.size());
  if (clock_ != nullptr) clock_->BeginWave(fanout);
  {
    std::lock_guard<std::mutex> lock(mu_);
    StartThreadsLocked();
    relation_ = &relation;
    pattern_ = &pattern;
    batch_ = &inputs;
    results_ = &results;
    wave_workers_ = fanout;
    remaining_ = fanout;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
  }
  if (clock_ != nullptr) clock_->EndWave();
  return results;
}

}  // namespace ucqn
