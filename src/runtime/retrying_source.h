#ifndef UCQN_RUNTIME_RETRYING_SOURCE_H_
#define UCQN_RUNTIME_RETRYING_SOURCE_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// How a failed Fetch is retried: capped exponential backoff with
// multiplicative jitter. attempt k (1-based) sleeps
//   min(max_backoff, initial * multiplier^(k-1)) * (1 + U[0, jitter])
// before attempt k+1.
struct RetryPolicy {
  // Total attempts per Fetch, including the first. 1 disables retry.
  int max_attempts = 3;
  std::uint64_t initial_backoff_micros = 100;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_micros = 100 * 1000;
  // Fraction of the backoff randomized on top (0 = deterministic backoff).
  double jitter = 0.5;
  // Seed for the jitter PRNG — same seed, same schedule.
  std::uint64_t jitter_seed = 1;
};

// Per-query spending limits for a source stack. Exhaustion surfaces as
// FetchStatus::kBudgetExhausted, which the executor reports as a failed
// (not aborted) execution and which RetryingSource itself never retries.
struct CallBudget {
  // Maximum attempts against the wrapped source; 0 = unlimited.
  std::uint64_t max_calls = 0;
  // Maximum elapsed clock time since construction/ResetBudget, in
  // microseconds; 0 = no deadline. Backoff sleeps count against it.
  std::uint64_t deadline_micros = 0;
};

// Wraps a flaky source with retry/backoff and enforces a call/deadline
// budget. Transient errors are retried up to the policy's attempt limit;
// budget refusals are terminal for the query.
//
// FetchBatch retries sub-calls independently: a wave's failures are
// collected and re-batched together in the next retry round (so retries
// overlap just like first attempts), with one backoff sleep per round —
// the pending sub-calls back off together instead of serializing their
// individual sleeps. The call/deadline budget is one per-query total,
// debited per sub-call in request order under a lock, so the cap holds
// exactly at any batch size or parallelism.
class RetryingSource : public Source {
 public:
  struct RetryStats {
    std::uint64_t attempts = 0;   // calls forwarded to the wrapped source
    std::uint64_t retries = 0;    // attempts beyond the first, per Fetch
    std::uint64_t successes = 0;
    std::uint64_t giveups = 0;    // Fetches that exhausted max_attempts
    std::uint64_t budget_refusals = 0;
    std::uint64_t backoff_micros_total = 0;
  };

  // Does not take ownership of `inner` or `clock`; both must outlive the
  // adapter. With a null clock the source keeps its own virtual clock —
  // backoff then costs no real time but still counts against the deadline.
  RetryingSource(Source* inner, RetryPolicy policy = RetryPolicy{},
                 CallBudget budget = CallBudget{}, Clock* clock = nullptr);

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

  const RetryStats& retry_stats() const { return stats_; }

  // Restarts the call/deadline accounting (a new query begins).
  void ResetBudget();

 private:
  // All Locked helpers require mu_ to be held.
  bool BudgetExceededLocked(std::string* why);
  // Backoff duration before attempt `attempt` + 1, jitter applied.
  std::uint64_t BackoffMicrosLocked(int attempt);
  // True when sleeping `backoff` would reach or cross the deadline — the
  // retry then cannot be admitted anyway, so the sleep is pure waste and
  // the caller fails the pending requests immediately instead. Always
  // false without a deadline.
  bool BackoffCrossesDeadlineLocked(std::uint64_t backoff);

  Source* inner_;
  RetryPolicy policy_;
  CallBudget budget_;
  SimulatedClock own_clock_;
  Clock* clock_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  RetryStats stats_;
  std::uint64_t calls_used_ = 0;
  std::uint64_t budget_start_micros_ = 0;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_RETRYING_SOURCE_H_
