#include "runtime/source_stack.h"

namespace ucqn {

SourceStack::SourceStack(Source* base, const RuntimeOptions& options,
                         Clock* clock) {
  if (clock == nullptr) clock = options.clock;
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<SimulatedClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
  top_ = base;
  if (options.parallelism > 1) {
    parallel_ = std::make_unique<ParallelSource>(top_, options.parallelism,
                                                 clock_);
    top_ = parallel_.get();
  }
  if (options.metering) {
    meter_ = std::make_unique<MeteredSource>(top_, clock_);
    top_ = meter_.get();
  }
  if (options.retry || options.budget.max_calls != 0 ||
      options.budget.deadline_micros != 0) {
    RetryPolicy policy = options.retry_policy;
    if (!options.retry) policy.max_attempts = 1;  // budget only, no retry
    retry_ = std::make_unique<RetryingSource>(top_, policy, options.budget,
                                              clock_);
    top_ = retry_.get();
  }
  if (options.shared_cache != nullptr) {
    cache_ = std::make_unique<CachingSource>(top_, *options.shared_cache);
    top_ = cache_.get();
  } else if (options.cache) {
    cache_ = std::make_unique<CachingSource>(top_, options.cache_capacity);
    top_ = cache_.get();
  }
}

RuntimeStats SourceStack::stats() const {
  RuntimeStats s;
  if (meter_ != nullptr) {
    s.source_calls = meter_->totals().calls;
    s.tuples_fetched = meter_->totals().tuples;
  } else if (retry_ != nullptr) {
    s.source_calls = retry_->retry_stats().attempts;
  } else if (cache_ != nullptr) {
    s.source_calls = cache_->cache_stats().misses;
  }
  if (cache_ != nullptr) {
    s.cache_hits = cache_->cache_stats().hits;
    s.cache_misses = cache_->cache_stats().misses;
    s.cache_evictions = cache_->cache_stats().evictions;
    s.cache_flight_waits = cache_->cache_stats().flight_waits;
    s.cache_stale_drops = cache_->cache_stats().stale_drops;
  }
  if (retry_ != nullptr) {
    s.retries = retry_->retry_stats().retries;
    s.giveups = retry_->retry_stats().giveups;
    s.budget_refusals = retry_->retry_stats().budget_refusals;
    s.backoff_micros = retry_->retry_stats().backoff_micros_total;
  }
  if (parallel_ != nullptr) {
    s.parallel_waves = parallel_->parallel_stats().parallel_batches;
    s.batched_requests = parallel_->parallel_stats().requests;
  }
  return s;
}

std::string RuntimeStats::ToString() const {
  std::string out = "source_calls=" + std::to_string(source_calls) +
                    " tuples=" + std::to_string(tuples_fetched);
  if (cache_hits + cache_misses != 0) {
    out += " cache_hits=" + std::to_string(cache_hits) +
           " cache_misses=" + std::to_string(cache_misses) +
           " cache_evictions=" + std::to_string(cache_evictions);
    if (cache_flight_waits != 0 || cache_stale_drops != 0) {
      out += " cache_flight_waits=" + std::to_string(cache_flight_waits) +
             " cache_stale_drops=" + std::to_string(cache_stale_drops);
    }
  }
  if (retries + giveups + budget_refusals != 0 || backoff_micros != 0) {
    out += " retries=" + std::to_string(retries) +
           " giveups=" + std::to_string(giveups) +
           " budget_refusals=" + std::to_string(budget_refusals) +
           " backoff_us=" + std::to_string(backoff_micros);
  }
  if (parallel_waves != 0) {
    out += " parallel_waves=" + std::to_string(parallel_waves) +
           " batched_requests=" + std::to_string(batched_requests);
  }
  if (pipeline_rounds != 0) {
    out += " pipeline_rounds=" + std::to_string(pipeline_rounds) +
           " pipeline_overlaps=" + std::to_string(pipeline_overlaps);
  }
  if (disjuncts_executed + morsels + antijoin_build_tuples != 0) {
    out += " disjuncts=" + std::to_string(disjuncts_executed) +
           " morsels=" + std::to_string(morsels) +
           " antijoin_build=" + std::to_string(antijoin_build_tuples);
  }
  return out;
}

}  // namespace ucqn
