#ifndef UCQN_RUNTIME_METERED_SOURCE_H_
#define UCQN_RUNTIME_METERED_SOURCE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// Latency histogram over power-of-two microsecond buckets: bucket b counts
// samples in [2^b, 2^(b+1)) us (bucket 0 also holds 0us samples). 30
// buckets cover up to ~18 minutes per call.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 30;

  void Record(std::uint64_t micros);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_micros() const { return sum_; }
  std::uint64_t min_micros() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max_micros() const { return max_; }
  double mean_micros() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  // Upper bound of the bucket holding the p-th percentile sample
  // (0 < p <= 1); 0 when empty.
  std::uint64_t PercentileUpperBoundMicros(double p) const;

  // e.g. "n=12 mean=34.5us p50<=64us p99<=128us max=97us".
  std::string ToString() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// Per-relation call/tuple/error counters plus latency histograms — the
// access-cost observability the paper's web-service model calls for.
// `latency` holds per-call timings from the single-Fetch path; batched
// waves are timed as a unit instead (individual sub-call latencies overlap
// below the parallel dispatcher and are not observable from above):
// `batch_size` histograms how many sub-calls each wave carried and
// `wave_micros` how long the whole wave took wall-clock.
struct RelationMetrics {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  std::uint64_t tuples = 0;
  std::uint64_t batches = 0;
  LatencyHistogram latency;
  LatencyHistogram batch_size;   // unit: sub-calls per wave, not micros
  LatencyHistogram wave_micros;  // wall-clock per wave
};

// Decorator that meters every call reaching the wrapped source. Sits at
// the bottom of the stack (directly above the transport, or above the
// parallel dispatcher when one is configured) so each retry attempt and
// every cache miss is measured, while cache hits are not.
class MeteredSource : public Source {
 public:
  // Does not take ownership; `inner` (and `clock`, if given) must outlive
  // the adapter. Without a clock, latencies are all recorded as zero but
  // call/tuple/error counting still works.
  explicit MeteredSource(Source* inner, Clock* clock = nullptr)
      : inner_(inner), clock_(clock) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

  const RelationMetrics& totals() const { return totals_; }
  const std::map<std::string, RelationMetrics>& per_relation() const {
    return per_relation_;
  }
  // Relation -> pattern word -> metrics. The same counters as
  // per_relation(), split by the access pattern the call went through —
  // the paper's `B^oio`-style operations of one service can have wildly
  // different latencies, and pooling them would misprice both (see
  // StatsCatalog, which snapshots this split per (relation, pattern)).
  const std::map<std::string, std::map<std::string, RelationMetrics>>&
  per_access() const {
    return per_access_;
  }
  void Reset();

  // Human-readable table, one line per relation plus a totals line.
  std::string ToText() const;
  // Machine-readable export for dashboards/benches:
  // {"totals": {...}, "relations": {"R": {...}, ...}}.
  std::string ToJson() const;

 private:
  Source* inner_;
  Clock* clock_;
  RelationMetrics totals_;
  std::map<std::string, RelationMetrics> per_relation_;
  std::map<std::string, std::map<std::string, RelationMetrics>> per_access_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_METERED_SOURCE_H_
