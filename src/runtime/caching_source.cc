#include "runtime/caching_source.h"

namespace ucqn {

namespace {

std::string CacheKey(const std::string& relation, const AccessPattern& pattern,
                     const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    // Only input slots participate in the call signature; the source
    // ignores values at output slots, so two calls differing only there
    // are the same call.
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

}  // namespace

FetchResult CachingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  std::string key = CacheKey(relation, pattern, inputs);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    // Move to the front of the LRU order.
    entries_.splice(entries_.begin(), entries_, it->second);
    return FetchResult::Ok(it->second->tuples);
  }
  ++stats_.misses;
  FetchResult result = inner_->Fetch(relation, pattern, inputs);
  if (!result.ok()) return result;  // failures are not cached
  entries_.push_front(Entry{key, relation, result.tuples});
  index_.emplace(std::move(key), entries_.begin());
  if (capacity_ != 0 && entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  return result;
}

void CachingSource::Invalidate() {
  entries_.clear();
  index_.clear();
}

void CachingSource::InvalidateRelation(const std::string& relation) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->relation == relation) {
      index_.erase(it->key);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ucqn
