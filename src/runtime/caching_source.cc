#include "runtime/caching_source.h"

#include <unordered_map>

namespace ucqn {

CachingSource::CachingSource(Source* inner, std::size_t capacity)
    : inner_(inner), capacity_(capacity) {
  // One shard reproduces the original exact global LRU order; the store
  // lives and dies with this view, so entries never expire by age.
  SharedCacheStore::Options options;
  options.shards = 1;
  options.max_entries = capacity;
  owned_store_ = std::make_unique<SharedCacheStore>(options);
  store_ = owned_store_.get();
}

CachingSource::CachingSource(Source* inner, SharedCacheStore& store)
    : inner_(inner), capacity_(0), store_(&store) {}

FetchResult CachingSource::FetchShared(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs, const std::string& key) {
  while (true) {
    SharedCacheStore::Lookup lookup = store_->TryAcquire(key, relation);
    if (lookup.stale_drop) ++stats_.stale_drops;
    switch (lookup.state) {
      case SharedCacheStore::LookupState::kHit:
        ++stats_.hits;
        return FetchResult::Ok(std::move(lookup.tuples));
      case SharedCacheStore::LookupState::kFollower: {
        // Another execution is fetching this key; reuse its result. An
        // abandoned flight (the leader's call failed) falls through to a
        // fresh lookup so this execution can try the call itself.
        auto tuples = store_->WaitForFlight(key);
        if (tuples.has_value()) {
          ++stats_.hits;
          ++stats_.flight_waits;
          return FetchResult::Ok(std::move(*tuples));
        }
        continue;
      }
      case SharedCacheStore::LookupState::kLeader: {
        ++stats_.misses;
        FetchResult result = inner_->Fetch(relation, pattern, inputs);
        if (result.ok()) {
          stats_.evictions += store_->Publish(key, relation, result.tuples);
        } else {
          store_->Abandon(key);  // failures are not cached
        }
        return result;
      }
    }
  }
}

FetchResult CachingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  // Packed id keys: same footnote-4 signature as the textual
  // SourceCacheKey, but built from dictionary ids (a few integer
  // stores) instead of rendering every input value to a string.
  return FetchShared(relation, pattern, inputs,
                     PackedSourceCacheKey(relation, pattern, inputs));
}

std::vector<FetchResult> CachingSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  const std::size_t n = inputs.size();
  std::vector<FetchResult> out(n);
  std::vector<std::string> keys(n);
  // Group the wave by cache key *before* touching the store: each
  // distinct key gets exactly one TryAcquire, so a wave can never become
  // a follower of its own flight. The first requester of a key is its
  // group leader; later requesters piggyback and count as hits.
  std::unordered_map<std::string, std::size_t> group_of;  // key -> group
  std::vector<std::size_t> group_leader;   // group -> request index
  std::vector<std::vector<std::size_t>> group_members;
  std::vector<std::size_t> request_group(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = PackedSourceCacheKey(relation, pattern, inputs[i]);
    auto [it, fresh] = group_of.try_emplace(keys[i], group_leader.size());
    if (fresh) {
      group_leader.push_back(i);
      group_members.emplace_back();
    }
    request_group[i] = it->second;
    group_members[it->second].push_back(i);
  }

  // Lookup phase: one store lookup per distinct key. Hits answer their
  // whole group; leader groups are collected for one batched fetch;
  // follower groups (in flight in another execution) are parked until
  // after this wave's own leaders publish — waiting first could deadlock
  // two waves leading/following each other's keys.
  enum class Role { kHit, kLeader, kFollower };
  std::vector<Role> role(group_leader.size(), Role::kHit);
  std::vector<std::size_t> leader_groups;
  std::vector<std::size_t> follower_groups;
  for (std::size_t g = 0; g < group_leader.size(); ++g) {
    const std::size_t i = group_leader[g];
    SharedCacheStore::Lookup lookup = store_->TryAcquire(keys[i], relation);
    if (lookup.stale_drop) ++stats_.stale_drops;
    switch (lookup.state) {
      case SharedCacheStore::LookupState::kHit: {
        stats_.hits += group_members[g].size();
        for (std::size_t member : group_members[g]) {
          out[member] = FetchResult::Ok(lookup.tuples);
        }
        break;
      }
      case SharedCacheStore::LookupState::kLeader:
        role[g] = Role::kLeader;
        leader_groups.push_back(g);
        ++stats_.misses;
        stats_.hits += group_members[g].size() - 1;  // piggybacked dupes
        break;
      case SharedCacheStore::LookupState::kFollower:
        role[g] = Role::kFollower;
        follower_groups.push_back(g);
        stats_.hits += group_members[g].size();
        stats_.flight_waits += 1;
        break;
    }
  }

  // Fetch phase: one request per distinct missed key, batched so the
  // layers below can overlap them; then publish successes (waking any
  // cross-execution followers) and abandon failures so nothing stays
  // pinned in flight.
  if (!leader_groups.empty()) {
    std::vector<std::vector<std::optional<Term>>> missed;
    missed.reserve(leader_groups.size());
    for (std::size_t g : leader_groups) {
      missed.push_back(inputs[group_leader[g]]);
    }
    std::vector<FetchResult> fetched =
        inner_->FetchBatch(relation, pattern, missed);
    for (std::size_t f = 0; f < leader_groups.size(); ++f) {
      const std::size_t g = leader_groups[f];
      const std::string& key = keys[group_leader[g]];
      if (fetched[f].ok()) {
        stats_.evictions += store_->Publish(key, relation, fetched[f].tuples);
      } else {
        store_->Abandon(key);
      }
      for (std::size_t member : group_members[g]) out[member] = fetched[f];
    }
  }

  // Wait phase: collect the other executions' flights. Abandoned flights
  // fall back to the sequential acquire loop (rare: the other execution's
  // call failed), which re-counts that lookup on whatever path it takes.
  for (std::size_t g : follower_groups) {
    const std::size_t i = group_leader[g];
    FetchResult result;
    auto tuples = store_->WaitForFlight(keys[i]);
    if (tuples.has_value()) {
      result = FetchResult::Ok(std::move(*tuples));
    } else {
      stats_.hits -= group_members[g].size();  // undo the optimistic count
      stats_.flight_waits -= 1;
      result = FetchShared(relation, pattern, inputs[i], keys[i]);
      if (result.ok()) stats_.hits += group_members[g].size() - 1;
    }
    for (std::size_t member : group_members[g]) out[member] = result;
  }
  return out;
}

void CachingSource::Invalidate() { store_->InvalidateAll(); }

void CachingSource::InvalidateRelation(const std::string& relation) {
  store_->InvalidateRelation(relation);
}

}  // namespace ucqn
