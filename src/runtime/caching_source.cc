#include "runtime/caching_source.h"

#include <unordered_map>

namespace ucqn {

namespace {

std::string CacheKey(const std::string& relation, const AccessPattern& pattern,
                     const std::vector<std::optional<Term>>& inputs) {
  std::string key = relation + "^" + pattern.word();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    key += "|";
    // Only input slots participate in the call signature; the source
    // ignores values at output slots, so two calls differing only there
    // are the same call.
    if (pattern.IsInputSlot(j) && inputs[j].has_value()) {
      key += inputs[j]->ToString();
    }
  }
  return key;
}

}  // namespace

void CachingSource::Insert(std::string key, const std::string& relation,
                           std::vector<Tuple> tuples) {
  entries_.push_front(Entry{key, relation, std::move(tuples)});
  index_.emplace(std::move(key), entries_.begin());
  if (capacity_ != 0 && entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
}

FetchResult CachingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  std::string key = CacheKey(relation, pattern, inputs);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    // Move to the front of the LRU order.
    entries_.splice(entries_.begin(), entries_, it->second);
    return FetchResult::Ok(it->second->tuples);
  }
  ++stats_.misses;
  FetchResult result = inner_->Fetch(relation, pattern, inputs);
  if (!result.ok()) return result;  // failures are not cached
  Insert(std::move(key), relation, result.tuples);
  return result;
}

std::vector<FetchResult> CachingSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  const std::size_t n = inputs.size();
  constexpr std::size_t kHit = static_cast<std::size_t>(-1);
  std::vector<FetchResult> out(n);
  std::vector<std::string> keys(n);
  // Lookup phase: answer hits, group misses by key. The first requester of
  // a missed key becomes its "leader"; later requesters of the same key
  // piggyback on the single flight and count as hits.
  std::unordered_map<std::string, std::size_t> flight;  // key -> flight slot
  std::vector<std::size_t> leaders;      // flight slot -> request index
  std::vector<std::size_t> flight_of(n, kHit);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = CacheKey(relation, pattern, inputs[i]);
    auto it = index_.find(keys[i]);
    if (it != index_.end()) {
      ++stats_.hits;
      entries_.splice(entries_.begin(), entries_, it->second);
      out[i] = FetchResult::Ok(it->second->tuples);
      continue;
    }
    auto [fit, fresh] = flight.try_emplace(keys[i], leaders.size());
    if (fresh) {
      ++stats_.misses;
      leaders.push_back(i);
    } else {
      ++stats_.hits;
    }
    flight_of[i] = fit->second;
  }
  if (leaders.empty()) return out;

  // Fetch phase: one request per distinct missed key, batched so the
  // layers below can overlap them.
  std::vector<std::vector<std::optional<Term>>> missed;
  missed.reserve(leaders.size());
  for (std::size_t request : leaders) missed.push_back(inputs[request]);
  std::vector<FetchResult> fetched =
      inner_->FetchBatch(relation, pattern, missed);

  // Insert phase: cache each distinct successful result once, then fan
  // every result (including failures, which stay uncached) back out to
  // all requesters of its key.
  for (std::size_t f = 0; f < leaders.size(); ++f) {
    if (fetched[f].ok()) {
      Insert(keys[leaders[f]], relation, fetched[f].tuples);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (flight_of[i] != kHit) out[i] = fetched[flight_of[i]];
  }
  return out;
}

void CachingSource::Invalidate() {
  entries_.clear();
  index_.clear();
}

void CachingSource::InvalidateRelation(const std::string& relation) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->relation == relation) {
      index_.erase(it->key);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ucqn
