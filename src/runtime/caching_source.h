#ifndef UCQN_RUNTIME_CACHING_SOURCE_H_
#define UCQN_RUNTIME_CACHING_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/source.h"
#include "runtime/shared_cache.h"

namespace ucqn {

// Memoizes identical source calls. Web-service operations are pure
// lookups for the duration of a query, and both ANSWER* (two plans over
// the same sources) and the executor itself (one Fetch per live binding)
// re-issue many identical calls; a cache in front of the transport turns
// those into no-ops.
//
// The cache key is (relation, pattern word, input-slot values) — output
// slots do not participate, per the paper's footnote 4: the source ignores
// values supplied there, so two calls differing only at output slots are
// the same call. Only successful results are cached; a failed call stays
// uncached so a later retry can succeed.
//
// CachingSource is a *view*: all storage lives in a SharedCacheStore. The
// legacy constructor owns a private single-shard store (exact global LRU,
// per-execution lifetime — the original semantics, bit-identical ledger).
// Handing in an external store instead makes the cache process-wide:
// every execution viewing the same store reuses every other execution's
// calls, with the store single-flighting concurrent misses so each
// distinct call hits the transport once however many queries race on it.
class CachingSource : public Source {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    // Misses coalesced onto another execution's in-flight fetch (counted
    // in `hits` too; zero for a private store).
    std::uint64_t flight_waits = 0;
    // TTL-expired entries this view dropped on its way to a miss.
    std::uint64_t stale_drops = 0;
  };

  // Per-execution private cache (legacy semantics). Does not take
  // ownership of `inner`; `capacity` bounds the number of cached call
  // results (LRU eviction), 0 means unbounded.
  explicit CachingSource(Source* inner, std::size_t capacity = 0);

  // View over a process-wide store. Owns neither; `store` must outlive
  // every view (and every execution) using it.
  CachingSource(Source* inner, SharedCacheStore& store);

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  // Batch lookups with single-flight semantics: hits are answered from the
  // cache, misses are grouped by cache key so each distinct call is
  // forwarded exactly once however many requests in the wave share it, and
  // each successful result is inserted once. Duplicates of an in-flight
  // miss count as hits — they never reach the wrapped source, mirroring
  // what the sequential path would have done one call later. Hit/miss
  // accounting is therefore identical at every parallelism level. Keys
  // in flight in *another* execution are waited on after this wave's own
  // leaders publish, so cross-execution coalescing can never deadlock.
  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

  // This view's ledger only; shared()->stats() has the process totals.
  const CacheStats& cache_stats() const { return stats_; }
  std::size_t size() const { return store_->size(); }
  std::size_t capacity() const { return capacity_; }

  // The backing store: the owned private one, or the external shared one.
  SharedCacheStore* shared() { return store_; }

  // Invalidation hooks: drop everything (e.g. when the underlying data may
  // have changed between queries), or just one relation's entries (e.g. a
  // single updated service). These hit the backing store, so with a shared
  // store they invalidate for every execution.
  void Invalidate();
  void InvalidateRelation(const std::string& relation);

 private:
  // The single-call acquire loop: hit → return cached; leader → forward
  // to `inner_` then Publish/Abandon; follower → WaitForFlight, retrying
  // the lookup when the flight was abandoned.
  FetchResult FetchShared(const std::string& relation,
                          const AccessPattern& pattern,
                          const std::vector<std::optional<Term>>& inputs,
                          const std::string& key);

  Source* inner_;
  std::size_t capacity_;
  std::unique_ptr<SharedCacheStore> owned_store_;
  SharedCacheStore* store_;
  CacheStats stats_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_CACHING_SOURCE_H_
