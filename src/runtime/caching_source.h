#ifndef UCQN_RUNTIME_CACHING_SOURCE_H_
#define UCQN_RUNTIME_CACHING_SOURCE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/source.h"

namespace ucqn {

// Memoizes identical source calls with LRU eviction. Web-service
// operations are pure lookups for the duration of a query, and both
// ANSWER* (two plans over the same sources) and the executor itself (one
// Fetch per live binding) re-issue many identical calls; a cache in front
// of the transport turns those into no-ops.
//
// The cache key is (relation, pattern word, input-slot values) — output
// slots do not participate, per the paper's footnote 4: the source ignores
// values supplied there, so two calls differing only at output slots are
// the same call. Only successful results are cached; a failed call stays
// uncached so a later retry can succeed.
class CachingSource : public Source {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  // Does not take ownership; `inner` must outlive the adapter.
  // `capacity` bounds the number of cached call results (LRU eviction);
  // 0 means unbounded.
  explicit CachingSource(Source* inner, std::size_t capacity = 0)
      : inner_(inner), capacity_(capacity) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  // Batch lookups with single-flight semantics: hits are answered from the
  // cache, misses are grouped by cache key so each distinct call is
  // forwarded exactly once however many requests in the wave share it, and
  // each successful result is inserted once. Duplicates of an in-flight
  // miss count as hits — they never reach the wrapped source, mirroring
  // what the sequential path would have done one call later. Hit/miss
  // accounting is therefore identical at every parallelism level.
  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

  const CacheStats& cache_stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Invalidation hooks: drop everything (e.g. when the underlying data may
  // have changed between queries), or just one relation's entries (e.g. a
  // single updated service).
  void Invalidate();
  void InvalidateRelation(const std::string& relation);

 private:
  struct Entry {
    std::string key;
    std::string relation;
    std::vector<Tuple> tuples;
  };

  // Caches a successful result under `key`, evicting LRU past capacity.
  void Insert(std::string key, const std::string& relation,
              std::vector<Tuple> tuples);

  Source* inner_;
  std::size_t capacity_;
  // Front = most recently used. `index_` points into `entries_`.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_CACHING_SOURCE_H_
