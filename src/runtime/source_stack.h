#ifndef UCQN_RUNTIME_SOURCE_STACK_H_
#define UCQN_RUNTIME_SOURCE_STACK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "eval/source.h"
#include "runtime/caching_source.h"
#include "runtime/clock.h"
#include "runtime/metered_source.h"
#include "runtime/parallel_source.h"
#include "runtime/retrying_source.h"

namespace ucqn {

// Configuration of the per-query source-access runtime, carried inside
// ExecutionOptions. Default-constructed options disable every layer, so
// plain Execute calls pay nothing.
struct RuntimeOptions {
  // Deduplicate identical calls (LRU keyed on relation/pattern/input
  // values; capacity 0 = unbounded).
  bool cache = false;
  std::size_t cache_capacity = 0;
  // Process-wide cache store (runtime/shared_cache.h). Not owned; when
  // set, the stack's CachingSource becomes a view over this store instead
  // of a private per-execution cache, so executions sharing the store
  // reuse (and single-flight) each other's calls. Implies `cache`.
  SharedCacheStore* shared_cache = nullptr;
  // Retry transient failures with backoff (see RetryPolicy).
  bool retry = false;
  RetryPolicy retry_policy;
  // Per-query call/deadline budget, enforced even when retry is off.
  CallBudget budget;
  // Per-relation call/tuple/latency metrics (see MeteredSource).
  bool metering = false;
  // Worker threads for overlapping the sub-calls of one batched wave
  // (see ParallelSource). 1 = sequential dispatch, no threads.
  std::size_t parallelism = 1;
  // How many *different literals'* waves the executor may keep in flight
  // at once (inter-literal pipelining, eval/executor.cc): bindings that
  // cleared literal i advance to literal i+1 and issue its probes while
  // literal i's remaining wave is still resolving, up to this many
  // pipeline stages deep. 1 (and 0) = today's one-wave-at-a-time
  // execution, bit-identical answers and scheduling. Values > 1 change
  // only transport scheduling, never the answer set.
  std::size_t pipeline_depth = 1;
  // Time source shared with whatever sits *under* the stack (e.g. a
  // latency-injecting test source). Not owned; may be null, in which case
  // the stack owns a SimulatedClock. A SourceStack constructor clock
  // argument, when non-null, takes precedence.
  Clock* clock = nullptr;

  bool Enabled() const {
    return cache || shared_cache != nullptr || retry || metering ||
           parallelism > 1 || pipeline_depth > 1 || budget.max_calls != 0 ||
           budget.deadline_micros != 0;
  }
};

// Snapshot of what a source stack did during one execution, reported via
// ExecutionResult/AnswerStarReport.
struct RuntimeStats {
  // Calls that reached the wrapped (transport) source, and the tuples they
  // returned. Unknown layers report 0.
  std::uint64_t source_calls = 0;
  std::uint64_t tuples_fetched = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  // Shared-store extras: misses served by another execution's in-flight
  // fetch, and TTL-expired entries dropped on the way to a miss.
  std::uint64_t cache_flight_waits = 0;
  std::uint64_t cache_stale_drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
  std::uint64_t budget_refusals = 0;
  std::uint64_t backoff_micros = 0;
  // Waves the parallel dispatcher actually fanned out (>= 2 sub-calls),
  // and the total sub-calls it carried across all waves.
  std::uint64_t parallel_waves = 0;
  std::uint64_t batched_requests = 0;
  // Inter-literal pipelining (executor-side, filled in by the executor
  // when pipeline_depth > 1): rounds the pipelined loop ran, and how many
  // of them had >= 2 literals' waves genuinely in flight together.
  std::uint64_t pipeline_rounds = 0;
  std::uint64_t pipeline_overlaps = 0;
  // Operator-DAG executor counters (executor-side, filled in when the
  // default DAG path runs — eval/dag_executor.h): disjunct chains driven
  // to completion or failure, morsels staged through fetch operators,
  // and tuples inserted into anti-join build-side hash sets.
  std::uint64_t disjuncts_executed = 0;
  std::uint64_t morsels = 0;
  std::uint64_t antijoin_build_tuples = 0;

  double CacheHitRatio() const {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  std::string ToString() const;
};

// Composes the configured decorators over a base source, bottom-up:
//
//   base -> ParallelSource -> MeteredSource -> RetryingSource
//        -> CachingSource (top)
//
// so the meter times every physical attempt (including retries), the
// retrier only sees cache misses, and cache hits cost nothing. The
// parallel dispatcher sits at the very bottom, directly above the
// transport: everything above it stays single-threaded (only the base
// source's Fetch runs on pool threads), and a batched wave keeps its
// cache/retry/metering semantics bit-identical to sequential dispatch.
// Layers whose options are off are simply not constructed; source() is
// then the base itself.
class SourceStack {
 public:
  // Does not take ownership of `base` or `clock`. With a null clock the
  // stack owns a SimulatedClock — deterministic virtual time, no real
  // sleeping.
  SourceStack(Source* base, const RuntimeOptions& options,
              Clock* clock = nullptr);

  // The top of the stack; issue all Fetches through this.
  Source* source() { return top_; }
  Clock* clock() { return clock_; }

  // Individual layers, nullptr when disabled.
  CachingSource* cache() { return cache_.get(); }
  RetryingSource* retrier() { return retry_.get(); }
  MeteredSource* meter() { return meter_.get(); }
  ParallelSource* parallel() { return parallel_.get(); }

  RuntimeStats stats() const;

 private:
  std::unique_ptr<SimulatedClock> owned_clock_;
  Clock* clock_;
  std::unique_ptr<ParallelSource> parallel_;
  std::unique_ptr<MeteredSource> meter_;
  std::unique_ptr<RetryingSource> retry_;
  std::unique_ptr<CachingSource> cache_;
  Source* top_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_SOURCE_STACK_H_
