#ifndef UCQN_RUNTIME_PARALLEL_SOURCE_H_
#define UCQN_RUNTIME_PARALLEL_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/source.h"
#include "runtime/clock.h"

namespace ucqn {

// Fans a FetchBatch wave out over a fixed-size worker pool, issuing one
// Fetch against the wrapped (transport) source per request. Sits at the
// very bottom of a SourceStack, directly above the transport, so every
// decorator above it stays single-threaded: only the pool threads ever run
// concurrently, and only inside the transport — which must therefore be
// thread-safe (DatabaseSource, IndexedDatabaseSource and
// FaultInjectingSource are).
//
// Request i of a wave of size n is statically assigned to worker
// i mod min(workers, n); each worker processes its share sequentially.
// The static assignment (rather than a work-stealing queue) is what makes
// virtual time deterministic: under a SimulatedClock each worker's wave
// cost is the sum of its own requests' injected latencies, and the wave
// advances the clock by the maximum over workers (Clock::BeginWave /
// EndWave) — ceil(n / workers) x per-call latency for a uniform wave —
// independent of how the OS schedules the threads.
//
// With workers <= 1, or a single-request wave, everything runs inline on
// the caller's thread: bit-for-bit the historical sequential behavior,
// with no threads created and no wave bracketing.
class ParallelSource : public Source {
 public:
  struct ParallelStats {
    std::uint64_t batches = 0;           // FetchBatch waves seen
    std::uint64_t parallel_batches = 0;  // waves actually fanned out
    std::uint64_t requests = 0;          // total requests across waves
  };

  // Does not take ownership; `inner` (and `clock`, if given) must outlive
  // the source. `clock` should be the clock the transport sleeps on — it
  // is used only for wave bracketing, so that a SimulatedClock charges a
  // parallel wave max-over-workers instead of sum-over-calls.
  ParallelSource(Source* inner, std::size_t workers, Clock* clock = nullptr);
  ~ParallelSource() override;

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override;

  std::vector<FetchResult> FetchBatch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::vector<std::optional<Term>>>& inputs) override;

  std::size_t workers() const { return workers_; }
  const ParallelStats& parallel_stats() const { return stats_; }

 private:
  void StartThreadsLocked();
  void WorkerLoop(std::size_t worker);

  Source* inner_;
  std::size_t workers_;
  Clock* clock_;
  ParallelStats stats_;  // mutated by the (single) dispatching thread only

  // Pool protocol: the dispatcher publishes a wave under mu_ and bumps
  // generation_; workers wake, claim their static share, and the last one
  // to finish signals done_cv_. The dispatcher never overlaps waves, so
  // the wave fields are stable while any worker reads them.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  std::size_t wave_workers_ = 0;
  std::size_t remaining_ = 0;
  const std::string* relation_ = nullptr;
  const AccessPattern* pattern_ = nullptr;
  const std::vector<std::vector<std::optional<Term>>>* batch_ = nullptr;
  std::vector<FetchResult>* results_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace ucqn

#endif  // UCQN_RUNTIME_PARALLEL_SOURCE_H_
