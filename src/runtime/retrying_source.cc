#include "runtime/retrying_source.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ucqn {

RetryingSource::RetryingSource(Source* inner, RetryPolicy policy,
                               CallBudget budget, Clock* clock)
    : inner_(inner),
      policy_(policy),
      budget_(budget),
      clock_(clock != nullptr ? clock : &own_clock_),
      rng_(policy.jitter_seed) {
  UCQN_CHECK_MSG(policy_.max_attempts >= 1, "retry needs at least 1 attempt");
  budget_start_micros_ = clock_->NowMicros();
}

void RetryingSource::ResetBudget() {
  calls_used_ = 0;
  budget_start_micros_ = clock_->NowMicros();
}

bool RetryingSource::BudgetExceeded(std::string* why) const {
  if (budget_.max_calls != 0 && calls_used_ >= budget_.max_calls) {
    *why = "call budget of " + std::to_string(budget_.max_calls) +
           " source calls exhausted";
    return true;
  }
  if (budget_.deadline_micros != 0) {
    // NowMicros is monotone, so elapsed never underflows.
    const std::uint64_t elapsed =
        const_cast<Clock*>(clock_)->NowMicros() - budget_start_micros_;
    if (elapsed >= budget_.deadline_micros) {
      *why = "deadline of " + std::to_string(budget_.deadline_micros) +
             "us exceeded (" + std::to_string(elapsed) + "us elapsed)";
      return true;
    }
  }
  return false;
}

FetchResult RetryingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  std::string last_error;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    std::string why;
    if (BudgetExceeded(&why)) {
      ++stats_.budget_refusals;
      if (!last_error.empty()) why += "; last error: " + last_error;
      return FetchResult::BudgetExhausted(std::move(why));
    }
    ++calls_used_;
    ++stats_.attempts;
    if (attempt > 1) ++stats_.retries;
    FetchResult result = inner_->Fetch(relation, pattern, inputs);
    if (result.ok()) {
      ++stats_.successes;
      return result;
    }
    // A budget refusal from a nested layer is terminal — retrying within
    // the same query can only burn more of an already-empty budget.
    if (result.status == FetchStatus::kBudgetExhausted) return result;
    last_error = std::move(result.error);
    if (attempt < policy_.max_attempts) {
      double backoff = static_cast<double>(policy_.initial_backoff_micros) *
                       std::pow(policy_.backoff_multiplier, attempt - 1);
      backoff = std::min(backoff,
                         static_cast<double>(policy_.max_backoff_micros));
      if (policy_.jitter > 0.0) {
        std::uniform_real_distribution<double> dist(0.0, policy_.jitter);
        backoff *= 1.0 + dist(rng_);
      }
      const auto micros = static_cast<std::uint64_t>(backoff);
      stats_.backoff_micros_total += micros;
      clock_->SleepMicros(micros);
    }
  }
  ++stats_.giveups;
  return FetchResult::TransientError(
      "giving up on " + relation + " after " +
      std::to_string(policy_.max_attempts) + " attempt(s): " + last_error);
}

}  // namespace ucqn
