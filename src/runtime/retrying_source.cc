#include "runtime/retrying_source.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ucqn {

RetryingSource::RetryingSource(Source* inner, RetryPolicy policy,
                               CallBudget budget, Clock* clock)
    : inner_(inner),
      policy_(policy),
      budget_(budget),
      clock_(clock != nullptr ? clock : &own_clock_),
      rng_(policy.jitter_seed) {
  UCQN_CHECK_MSG(policy_.max_attempts >= 1, "retry needs at least 1 attempt");
  budget_start_micros_ = clock_->NowMicros();
}

void RetryingSource::ResetBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  calls_used_ = 0;
  budget_start_micros_ = clock_->NowMicros();
}

bool RetryingSource::BudgetExceededLocked(std::string* why) {
  if (budget_.max_calls != 0 && calls_used_ >= budget_.max_calls) {
    *why = "call budget of " + std::to_string(budget_.max_calls) +
           " source calls exhausted";
    return true;
  }
  if (budget_.deadline_micros != 0) {
    // NowMicros is monotone, so elapsed never underflows.
    const std::uint64_t elapsed = clock_->NowMicros() - budget_start_micros_;
    if (elapsed >= budget_.deadline_micros) {
      *why = "deadline of " + std::to_string(budget_.deadline_micros) +
             "us exceeded (" + std::to_string(elapsed) + "us elapsed)";
      return true;
    }
  }
  return false;
}

std::uint64_t RetryingSource::BackoffMicrosLocked(int attempt) {
  double backoff = static_cast<double>(policy_.initial_backoff_micros) *
                   std::pow(policy_.backoff_multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_micros));
  if (policy_.jitter > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, policy_.jitter);
    backoff *= 1.0 + dist(rng_);
  }
  return static_cast<std::uint64_t>(backoff);
}

bool RetryingSource::BackoffCrossesDeadlineLocked(std::uint64_t backoff) {
  if (budget_.deadline_micros == 0) return false;
  const std::uint64_t elapsed = clock_->NowMicros() - budget_start_micros_;
  if (elapsed >= budget_.deadline_micros) return true;
  return backoff >= budget_.deadline_micros - elapsed;
}

FetchResult RetryingSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  std::string last_error;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::string why;
      if (BudgetExceededLocked(&why)) {
        ++stats_.budget_refusals;
        if (!last_error.empty()) why += "; last error: " + last_error;
        return FetchResult::BudgetExhausted(std::move(why));
      }
      ++calls_used_;
      ++stats_.attempts;
      if (attempt > 1) ++stats_.retries;
    }
    FetchResult result = inner_->Fetch(relation, pattern, inputs);
    if (result.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.successes;
      return result;
    }
    // A budget refusal from a nested layer is terminal — retrying within
    // the same query can only burn more of an already-empty budget.
    if (result.status == FetchStatus::kBudgetExhausted) return result;
    last_error = std::move(result.error);
    if (attempt < policy_.max_attempts) {
      std::uint64_t micros;
      bool crosses;
      {
        std::lock_guard<std::mutex> lock(mu_);
        micros = BackoffMicrosLocked(attempt);
        crosses = BackoffCrossesDeadlineLocked(micros);
        if (crosses) {
          // The retry this sleep would set up could never be admitted, so
          // sleeping is pure waste: fail now, without the sleep and
          // without debiting the call budget for an attempt never made.
          ++stats_.budget_refusals;
        } else {
          stats_.backoff_micros_total += micros;
        }
      }
      if (crosses) {
        return FetchResult::BudgetExhausted(
            "deadline of " + std::to_string(budget_.deadline_micros) +
            "us would be crossed by a " + std::to_string(micros) +
            "us backoff; last error: " + last_error);
      }
      clock_->SleepMicros(micros);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.giveups;
  }
  return FetchResult::TransientError(
      "giving up on " + relation + " after " +
      std::to_string(policy_.max_attempts) + " attempt(s): " + last_error);
}

std::vector<FetchResult> RetryingSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  const std::size_t n = inputs.size();
  std::vector<FetchResult> out(n);
  std::vector<std::string> last_error(n);
  std::vector<std::size_t> pending(n);
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  for (int attempt = 1;
       attempt <= policy_.max_attempts && !pending.empty(); ++attempt) {
    // Budget gate, per sub-call in request order: refused requests are
    // terminal, the rest each consume one attempt from the shared total.
    std::vector<std::size_t> admitted;
    admitted.reserve(pending.size());
    for (std::size_t request : pending) {
      std::string why;
      bool refused;
      {
        std::lock_guard<std::mutex> lock(mu_);
        refused = BudgetExceededLocked(&why);
        if (refused) {
          ++stats_.budget_refusals;
        } else {
          ++calls_used_;
          ++stats_.attempts;
          if (attempt > 1) ++stats_.retries;
        }
      }
      if (refused) {
        if (!last_error[request].empty()) {
          why += "; last error: " + last_error[request];
        }
        out[request] = FetchResult::BudgetExhausted(std::move(why));
      } else {
        admitted.push_back(request);
      }
    }
    if (admitted.empty()) return out;

    // Forward the round as one batch so the layers below can overlap the
    // sub-calls; retries of round k fly together in round k+1.
    std::vector<std::vector<std::optional<Term>>> round;
    round.reserve(admitted.size());
    for (std::size_t request : admitted) round.push_back(inputs[request]);
    std::vector<FetchResult> results =
        inner_->FetchBatch(relation, pattern, round);

    std::vector<std::size_t> still_failing;
    for (std::size_t j = 0; j < admitted.size(); ++j) {
      const std::size_t request = admitted[j];
      FetchResult& result = results[j];
      if (result.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.successes;
        out[request] = std::move(result);
      } else if (result.status == FetchStatus::kBudgetExhausted) {
        out[request] = std::move(result);  // terminal, never retried
      } else {
        last_error[request] = std::move(result.error);
        still_failing.push_back(request);
      }
    }
    pending = std::move(still_failing);

    if (!pending.empty() && attempt < policy_.max_attempts) {
      // One backoff per retry round: the pending sub-calls back off
      // together rather than serializing their individual sleeps.
      std::uint64_t micros;
      bool crosses;
      {
        std::lock_guard<std::mutex> lock(mu_);
        micros = BackoffMicrosLocked(attempt);
        crosses = BackoffCrossesDeadlineLocked(micros);
        if (crosses) {
          // No request of the next round could be admitted after this
          // sleep, so skip it and fail the round's survivors here: each
          // is counted as a refusal (as the admission gate would have),
          // and no call-budget attempt is debited for calls never made.
          stats_.budget_refusals += pending.size();
        } else {
          stats_.backoff_micros_total += micros;
        }
      }
      if (crosses) {
        for (std::size_t request : pending) {
          out[request] = FetchResult::BudgetExhausted(
              "deadline of " + std::to_string(budget_.deadline_micros) +
              "us would be crossed by a " + std::to_string(micros) +
              "us backoff; last error: " + last_error[request]);
        }
        return out;
      }
      clock_->SleepMicros(micros);
    }
  }

  for (std::size_t request : pending) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.giveups;
    }
    out[request] = FetchResult::TransientError(
        "giving up on " + relation + " after " +
        std::to_string(policy_.max_attempts) +
        " attempt(s): " + last_error[request]);
  }
  return out;
}

}  // namespace ucqn
